"""The bi-weekly asymmetric prefix-split announcement schedule (Fig. 2).

T1 starts as a single /32. After a 12-week baseline, every two weeks the
controller (i) withdraws everything for one day, then (ii) announces a new
set formed by splitting one previously announced prefix into its two
more-specifics and keeping all other prefixes. The covering prefix of the
split pair is dropped, so the announced count grows by one per cycle until
17 prefixes are reachable and the most-specific is a /48.

Split rule (paper §3.1): among the most-specific announced prefixes, split
the one that does *not* contain the low-byte address of the covering /32
("if possible"), preferring the highest network so new low-byte addresses
never byte-wise match previously announced ones. Starting from a /32 this
yields the asymmetric ladder /33, /34, ..., /47, 2×/48.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro import obs
from repro.bgp.speaker import BGPSpeaker
from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY, WEEK
from repro.sim.events import Simulator


@dataclass(frozen=True, slots=True)
class AnnouncementCycle:
    """One announcement period of the experiment.

    Attributes:
        index: 0 = the initial baseline announcement, 1.. = split cycles.
        announce_time: when the set is announced.
        withdraw_time: when the whole set is withdrawn (one silent day
            precedes the next cycle's announcement).
        prefixes: the announced set, sorted.
        new_prefixes: the pair (or single, for cycle 0) first announced in
            this cycle.
    """

    index: int
    announce_time: float
    withdraw_time: float
    prefixes: tuple[Prefix, ...]
    new_prefixes: tuple[Prefix, ...]

    def most_specific(self) -> Prefix:
        return max(self.prefixes, key=lambda p: (p.length, p.network))


def choose_split_target(prefixes: set[Prefix], low_byte_addr: int) -> Prefix:
    """Pick the prefix to split next per the paper's rule.

    Most-specific first; among equals prefer prefixes *not* containing the
    covering prefix's low-byte address, then the highest network (fresh
    low-byte addresses).
    """
    if not prefixes:
        raise ExperimentError("cannot split an empty announcement set")
    max_len = max(p.length for p in prefixes)
    candidates = [p for p in prefixes if p.length == max_len]
    avoiding = [p for p in candidates
                if not p.contains_address(low_byte_addr)]
    pool = avoiding or candidates
    return max(pool, key=lambda p: p.network)


def build_split_schedule(origin_prefix: Prefix,
                         baseline_weeks: int = 12,
                         cycle_weeks: int = 2,
                         num_cycles: int = 16,
                         gap_days: int = 1,
                         start_time: float = 0.0) -> list[AnnouncementCycle]:
    """Compute the full announcement plan.

    With the defaults this reproduces the paper's schedule: 12 baseline
    weeks with the /32, then 16 bi-weekly split cycles ending with 17
    announced prefixes, the most-specific a /48.
    """
    if num_cycles < 0 or baseline_weeks <= 0 or cycle_weeks <= 0:
        raise ExperimentError("invalid schedule parameters")
    if gap_days * DAY >= cycle_weeks * WEEK:
        raise ExperimentError("withdrawal gap longer than the cycle itself")
    low_byte = origin_prefix.low_byte_address
    cycles: list[AnnouncementCycle] = []
    current: set[Prefix] = {origin_prefix}
    announce_at = start_time
    period = baseline_weeks * WEEK
    for index in range(num_cycles + 1):
        withdraw_at = announce_at + period - gap_days * DAY
        if index == 0:
            new: tuple[Prefix, ...] = (origin_prefix,)
        else:
            target = choose_split_target(current, low_byte)
            low, high = target.split()
            current.discard(target)
            current.add(low)
            current.add(high)
            new = (low, high)
        cycles.append(AnnouncementCycle(
            index=index,
            announce_time=announce_at,
            withdraw_time=withdraw_at,
            prefixes=tuple(sorted(current)),
            new_prefixes=new,
        ))
        announce_at += period
        period = cycle_weeks * WEEK
    return cycles


@dataclass
class SplitController:
    """Drives a speaker through a precomputed announcement schedule.

    The controller schedules announce/withdraw events on the simulator and
    records which cycle is active at any time; analyses use
    :meth:`cycle_at` to bucket packets into announcement periods.
    """

    speaker: BGPSpeaker
    simulator: Simulator
    schedule: list[AnnouncementCycle]
    on_announce: Callable[[AnnouncementCycle], None] | None = None
    _active_cycle: AnnouncementCycle | None = field(default=None, init=False)

    def start(self) -> None:
        """Arm all announce/withdraw events of the schedule."""
        if not self.schedule:
            raise ExperimentError("empty announcement schedule")
        for cycle in self.schedule:
            self.simulator.schedule_at(
                cycle.announce_time,
                partial(self._announce, cycle),
                label=f"split:announce:{cycle.index}",
            )
            self.simulator.schedule_at(
                cycle.withdraw_time,
                partial(self._withdraw, cycle),
                label=f"split:withdraw:{cycle.index}",
            )

    def _announce(self, cycle: AnnouncementCycle) -> None:
        self._active_cycle = cycle
        for prefix in cycle.prefixes:
            self.speaker.originate(prefix)
        obs.add("bgp.announcements_total", len(cycle.prefixes))
        obs.add("bgp.announce_cycles_total")
        if self.on_announce is not None:
            self.on_announce(cycle)

    def _withdraw(self, cycle: AnnouncementCycle) -> None:
        for prefix in cycle.prefixes:
            self.speaker.withdraw_origin(prefix)
        obs.add("bgp.withdrawals_total", len(cycle.prefixes))
        if self._active_cycle is cycle:
            self._active_cycle = None

    @property
    def active_cycle(self) -> AnnouncementCycle | None:
        return self._active_cycle

    def cycle_at(self, time: float) -> AnnouncementCycle | None:
        """The cycle whose announcement window contains ``time``.

        Returns ``None`` during the one-day withdrawal gaps and outside the
        experiment.
        """
        for cycle in self.schedule:
            if cycle.announce_time <= time < cycle.withdraw_time:
                return cycle
        return None

    def announced_prefixes_at(self, time: float) -> tuple[Prefix, ...]:
        cycle = self.cycle_at(time)
        return cycle.prefixes if cycle is not None else ()
