"""BGP control-plane substrate.

The paper ran its own autonomous system with FRR, an IXP and upstream
providers, and steered scanner-visible BGP signals by announcing and
withdrawing IPv6 prefixes. This subpackage simulates that control plane:

- :mod:`repro.bgp.topology` — a multi-tier AS-level topology.
- :mod:`repro.bgp.speaker` — path-vector BGP speakers with Gao-Rexford
  export policies and per-hop propagation delay.
- :mod:`repro.bgp.rib` — routes and routing information bases.
- :mod:`repro.bgp.policy` — IRR route6 objects and optional upstream
  filtering.
- :mod:`repro.bgp.collector` — a RIS-like route collector feed that
  BGP-reactive scanners subscribe to.
- :mod:`repro.bgp.controller` — the bi-weekly asymmetric prefix-split
  announcement schedule of the paper's T1 experiment (Fig. 2).
- :mod:`repro.bgp.lookingglass` — visibility checks akin to the authors'
  looking-glass/RIPEstat confirmation step.
"""

from repro.bgp.collector import CollectorEntry, RouteCollector
from repro.bgp.controller import AnnouncementCycle, SplitController, build_split_schedule
from repro.bgp.lookingglass import LookingGlass
from repro.bgp.messages import Announcement, UpdateKind, Withdrawal
from repro.bgp.policy import IrrDatabase, Route6Object
from repro.bgp.rib import LocRib, Route
from repro.bgp.speaker import BGPNetwork, BGPSpeaker
from repro.bgp.topology import ASRelationship, ASTopology, build_topology

__all__ = [
    "Announcement",
    "Withdrawal",
    "UpdateKind",
    "Route",
    "LocRib",
    "BGPSpeaker",
    "BGPNetwork",
    "ASTopology",
    "ASRelationship",
    "build_topology",
    "IrrDatabase",
    "Route6Object",
    "RouteCollector",
    "CollectorEntry",
    "LookingGlass",
    "SplitController",
    "AnnouncementCycle",
    "build_split_schedule",
]
