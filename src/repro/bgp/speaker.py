"""Path-vector BGP speakers and the network fabric connecting them.

Each AS runs one :class:`BGPSpeaker`. Updates travel between speakers as
simulator events with per-link propagation delays, so announcement
visibility converges over (simulated) seconds-to-minutes — the signal that
BGP-reactive scanners in the paper latch onto.

Export policy is Gao-Rexford:

- routes learned from a *customer* are exported to everyone;
- routes learned from a *peer* or *provider* are exported to customers only;
- locally originated routes are exported to everyone.

Import policy optionally validates routes against the IRR database
(:mod:`repro.bgp.policy`), mirroring the route6-object experiment in §3.2.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.rib import LOCAL_PREF, AdjRibIn, LocRib, Route
from repro.bgp.topology import ASRelationship, ASTopology
from repro.errors import RoutingError
from repro.net.prefix import Prefix
from repro.sim.events import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.bgp.policy import IrrDatabase

#: Listener signature: (time, asn, update) for every accepted update.
UpdateListener = Callable[[float, int, Announcement | Withdrawal], None]


class BGPSpeaker:
    """The BGP router of a single AS."""

    def __init__(self, asn: int, network: "BGPNetwork") -> None:
        self.asn = asn
        self._network = network
        self.adj_rib_in: dict[int, AdjRibIn] = {}
        self.loc_rib = LocRib()
        self._originated: set[Prefix] = set()
        #: per-prefix set of neighbors currently holding our announcement
        #: (Adj-RIB-Out); needed to send withdraws when the export set
        #: shrinks after a best-path change.
        self._announced_to: dict[Prefix, set[int]] = {}
        #: when True, routes from peers lacking an IRR route6 object are
        #: rejected on import (the upstream-validation behavior of §3.2).
        self.validate_irr = False
        #: caches over the (static-after-wiring) neighbor set and
        #: topology; rebuilt lazily and invalidated by
        #: :meth:`add_neighbor`.
        self._neighbors: list[int] | None = None
        self._customers: list[int] | None = None
        self._rel: dict[int, ASRelationship] = {}
        #: per first-hop neighbor (0 = locally originated): the export
        #: target set and its sorted order — pure functions of the
        #: static topology, recomputed per export otherwise.
        self._export_cache: dict[int, tuple[set[int], list[int]]] = {}
        #: interned Route per (prefix, as_path, neighbor) — announcement
        #: cycles re-deliver value-identical routes every flap.
        self._route_cache: dict[
            tuple[Prefix, tuple[int, ...], int], Route] = {}

    # -- wiring ------------------------------------------------------------

    def add_neighbor(self, asn: int) -> None:
        self.adj_rib_in.setdefault(asn, AdjRibIn())
        self._neighbors = None
        self._customers = None
        self._rel = {}
        self._export_cache = {}
        self._route_cache = {}

    def _relationship(self, neighbor: int) -> ASRelationship:
        rel = self._rel.get(neighbor)
        if rel is None:
            rel = self._network.topology.relationship(self.asn, neighbor)
            self._rel[neighbor] = rel
        return rel

    @property
    def neighbors(self) -> list[int]:
        if self._neighbors is None:
            self._neighbors = sorted(self.adj_rib_in)
        return self._neighbors

    # -- origination --------------------------------------------------------

    def originate(self, prefix: Prefix) -> None:
        """Announce ``prefix`` as locally originated."""
        if prefix in self._originated:
            return
        self._originated.add(prefix)
        route = Route(prefix=prefix, as_path=(self.asn,), neighbor=0,
                      local_pref=max(LOCAL_PREF.values()) + 100)
        self.loc_rib.install(route)
        self._export(route)

    def withdraw_origin(self, prefix: Prefix) -> None:
        """Withdraw a locally originated prefix."""
        if prefix not in self._originated:
            return
        self._originated.discard(prefix)
        self.loc_rib.uninstall(prefix)
        replacement = self._select_best(prefix)
        if replacement is not None:
            self.loc_rib.install(replacement)
            self._export(replacement)
        else:
            self._export_withdraw(prefix)

    @property
    def originated(self) -> set[Prefix]:
        return set(self._originated)

    # -- update processing ----------------------------------------------------

    def receive(self, neighbor: int, update: Announcement | Withdrawal) -> None:
        """Process one update from ``neighbor`` (called by the fabric)."""
        rib_in = self.adj_rib_in.get(neighbor)
        if rib_in is None:
            raise RoutingError(f"AS{self.asn}: update from unknown AS{neighbor}")
        if isinstance(update, Announcement):
            if update.contains_loop(self.asn):
                return
            if self.validate_irr and not self._import_accepts(neighbor,
                                                              update):
                return
            # routes are value-identical across announcement cycles (same
            # prefix, path, and neighbor every flap), so the interned
            # Route is reused instead of rebuilt 64 times per campaign
            key = (update.prefix, update.as_path, neighbor)
            route = self._route_cache.get(key)
            if route is None:
                rel = self._relationship(neighbor)
                route = Route(prefix=update.prefix, as_path=update.as_path,
                              neighbor=neighbor,
                              local_pref=LOCAL_PREF[rel.value])
                self._route_cache[key] = route
            rib_in.put(route)
            # incremental decision: against a best route from a *different*
            # neighbor, the new candidate either loses outright (best
            # unchanged, nothing to export) or wins outright (no need to
            # scan the other Adj-RIBs-In) — both outcomes are exactly what
            # the full reselect would compute, minus the scan. With no
            # current best the new route is the *sole* candidate (every
            # reselect installs the best candidate whenever one exists,
            # so an empty Loc-RIB entry means empty Adj-RIBs-In too) and
            # installs directly. A replacement from the best route's own
            # neighbor that is at least as preferred also still wins:
            # preference keys embed the neighbor ASN so keys never tie
            # across neighbors, and every other candidate already lost
            # to the old key. Only a same-neighbor *downgrade* needs the
            # full pass.
            if update.prefix not in self._originated:
                old = self.loc_rib.best(update.prefix)
                if old is None:
                    self.loc_rib.install(route)
                    self._export(route)
                    return
                if neighbor != old.neighbor:
                    if route.pref_key >= old.pref_key:
                        return
                    self.loc_rib.install(route)
                    self._export(route)
                    return
                if route.pref_key <= old.pref_key:
                    if route is old or route == old:
                        return  # duplicate announcement, nothing changed
                    self.loc_rib.install(route)
                    self._export(route)
                    return
            self._reselect(update.prefix)
        else:
            removed = rib_in.remove(update.prefix)
            if removed is not None:
                if update.prefix not in self._originated:
                    old = self.loc_rib.best(update.prefix)
                    if old is not None and removed.neighbor != old.neighbor:
                        return  # a route that was never selected vanished
                self._reselect(update.prefix)

    def _import_accepts(self, neighbor: int,
                        update: Announcement) -> bool:
        if not self.validate_irr:
            return True
        irr = self._network.irr
        if irr is None:
            return True
        rel = self._relationship(neighbor)
        if rel is not ASRelationship.PEER:
            return True
        return irr.is_valid(update.prefix, update.origin) is not False

    def _reselect(self, prefix: Prefix) -> None:
        if prefix in self._originated:
            return  # own origination always wins
        old = self.loc_rib.best(prefix)
        new = self._select_best(prefix)
        if old is new or old == new:
            return
        if new is None:
            self.loc_rib.uninstall(prefix)
            self._export_withdraw(prefix)
        else:
            self.loc_rib.install(new)
            self._export(new)

    def _select_best(self, prefix: Prefix) -> Route | None:
        best: Route | None = None
        for rib_in in self.adj_rib_in.values():
            route = rib_in.get(prefix)
            if route is not None and (
                    best is None or route.pref_key < best.pref_key):
                best = route
        return best

    # -- export -----------------------------------------------------------------

    def _export_targets(self, route: Route) -> list[int]:
        if route.neighbor == 0:
            return self.neighbors
        if self._relationship(route.neighbor) is ASRelationship.CUSTOMER:
            return [n for n in self.neighbors if n != route.neighbor]
        if self._customers is None:
            self._customers = [
                n for n in self.neighbors
                if self._relationship(n) is ASRelationship.CUSTOMER]
        return self._customers

    def _export(self, route: Route) -> None:
        if route.neighbor == 0:
            as_path: tuple[int, ...] = (self.asn,)
        else:
            as_path = (self.asn, *route.as_path)
        update = Announcement(prefix=route.prefix, as_path=as_path)
        cached = self._export_cache.get(route.neighbor)
        if cached is None:
            ordered = sorted(self._export_targets(route))
            cached = (set(ordered), ordered)
            self._export_cache[route.neighbor] = cached
        targets, ordered = cached
        previously = self._announced_to.get(route.prefix)
        # the cached target set is shared across prefixes and exports and
        # never mutated, so an identity hit means "same audience as last
        # time" without a set comparison
        if previously is not None and previously is not targets:
            withdraw = Withdrawal(prefix=route.prefix)
            for neighbor in sorted(previously - targets):
                self._network.deliver(self.asn, neighbor, withdraw)
        self._announced_to[route.prefix] = targets
        for neighbor in ordered:
            self._network.deliver(self.asn, neighbor, update)
        self._network.notify(self.asn, update)

    def _export_withdraw(self, prefix: Prefix) -> None:
        update = Withdrawal(prefix=prefix)
        previously = self._announced_to.pop(prefix, set(self.neighbors))
        for neighbor in sorted(previously):
            self._network.deliver(self.asn, neighbor, update)
        self._network.notify(self.asn, update)

    def has_route(self, addr: int) -> bool:
        """Data-plane reachability check for an address from this AS."""
        return self.loc_rib.resolve(addr) is not None


class BGPNetwork:
    """Owns all speakers and moves updates between them with delay."""

    def __init__(self, topology: ASTopology, simulator: Simulator,
                 rng: np.random.Generator,
                 min_link_delay: float = 1.0,
                 max_link_delay: float = 15.0,
                 irr: "IrrDatabase | None" = None) -> None:
        if min_link_delay <= 0 or max_link_delay < min_link_delay:
            raise RoutingError("invalid link delay range")
        self.topology = topology
        self.simulator = simulator
        self.irr = irr
        self._rng = rng
        self.speakers: dict[int, BGPSpeaker] = {}
        #: per directed link: (delay, event label) — the label is pure
        #: function of the link, not worth an f-string per message
        self._link_delay: dict[tuple[int, int], tuple[float, str]] = {}
        #: last scheduled arrival per directed link; BGP sessions run over
        #: TCP, so updates must never overtake each other on a link.
        self._last_arrival: dict[tuple[int, int], float] = {}
        #: block-buffered jitter draws — ``uniform(size=n)`` consumes the
        #: underlying bit stream exactly like ``n`` scalar draws, so the
        #: jitter sequence is unchanged while the per-message numpy call
        #: overhead is amortized over the block.
        self._jitter_buf = None
        self._jitter_next = 0
        self._listeners: list[UpdateListener] = []
        for asn in topology.ases():
            self.speakers[asn] = BGPSpeaker(asn, self)
        for a, b in topology.graph.edges:
            self.speakers[a].add_neighbor(b)
            self.speakers[b].add_neighbor(a)
            delay = float(rng.uniform(min_link_delay, max_link_delay))
            self._link_delay[(a, b)] = (delay, f"bgp:{a}->{b}")
            self._link_delay[(b, a)] = (delay, f"bgp:{b}->{a}")

    def speaker(self, asn: int) -> BGPSpeaker:
        try:
            return self.speakers[asn]
        except KeyError:
            raise RoutingError(f"no speaker for AS{asn}") from None

    def add_listener(self, listener: UpdateListener) -> None:
        """Register a callback for every exported update (collector tap)."""
        self._listeners.append(listener)

    def notify(self, asn: int, update: Announcement | Withdrawal) -> None:
        now = self.simulator.now
        for listener in self._listeners:
            listener(now, asn, update)

    def deliver(self, sender: int, receiver: int,
                update: Announcement | Withdrawal) -> None:
        """Schedule delivery of ``update`` over the (sender, receiver) link."""
        link = (sender, receiver)
        entry = self._link_delay.get(link)
        if entry is None:
            raise RoutingError(f"no link AS{sender}-AS{receiver}")
        delay, label = entry
        buf, i = self._jitter_buf, self._jitter_next
        if buf is None or i >= len(buf):
            buf = self._jitter_buf = self._rng.uniform(0.0, 1.0, size=512)
            i = 0
        self._jitter_next = i + 1
        arrival = self.simulator.now + delay + float(buf[i])
        previous = self._last_arrival.get(link)
        if previous is not None and arrival <= previous:
            arrival = previous + 1e-6  # FIFO: never overtake on a link
        self._last_arrival[link] = arrival
        # straight to the queue: arrival >= now by construction (positive
        # link delay), so schedule_at's not-in-the-past check is redundant
        # on the fabric's hottest call site
        self.simulator.queue.schedule(
            arrival,
            partial(self._arrive, receiver, sender, update),
            label=label,
        )

    def _arrive(self, receiver: int, sender: int,
                update: Announcement | Withdrawal) -> None:
        """Deliver a propagated update (picklable event callback)."""
        self.speakers[receiver].receive(sender, update)

    def converge(self, settle: float = 600.0) -> None:
        """Run the simulator forward until in-flight updates settle.

        Convenience for tests and setup phases; production runs advance the
        simulator through the normal event loop instead.
        """
        self.simulator.run_until(self.simulator.now + settle)

    def visibility(self, prefix: Prefix) -> float:
        """Fraction of ASes whose Loc-RIB holds an exact route to ``prefix``."""
        if not self.speakers:
            return 0.0
        seen = sum(1 for s in self.speakers.values()
                   if s.loc_rib.best(prefix) is not None
                   or prefix in s.originated)
        return seen / len(self.speakers)
