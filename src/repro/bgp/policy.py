"""IRR database and route6 objects.

§3.2 of the paper: the authors first announced their /32 without a route6
object, later created one for the non-split /33, and observed no effect on
scanners. We model the IRR as a registry that speakers *may* consult when
importing peer routes (``BGPSpeaker.validate_irr``). Prefixes without any
covering object validate as "not found" (``None``) and are not filtered,
matching the RPKI-not-found semantics the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class Route6Object:
    """An IRR route6 object binding a prefix to its origin AS."""

    prefix: Prefix
    origin: int
    maintainer: str = ""

    def __post_init__(self) -> None:
        if self.origin <= 0:
            raise PolicyError(f"invalid origin ASN {self.origin}")


class IrrDatabase:
    """Registry of route6 objects with covering-prefix validation."""

    def __init__(self) -> None:
        self._objects: dict[Prefix, set[int]] = {}
        self._created_at: dict[Prefix, float] = {}

    def __len__(self) -> int:
        return sum(len(origins) for origins in self._objects.values())

    def register(self, obj: Route6Object, time: float = 0.0) -> None:
        """Add a route6 object (idempotent per (prefix, origin))."""
        self._objects.setdefault(obj.prefix, set()).add(obj.origin)
        self._created_at.setdefault(obj.prefix, time)

    def objects_for(self, prefix: Prefix) -> set[int]:
        """Origins registered exactly for ``prefix``."""
        return set(self._objects.get(prefix, ()))

    def is_valid(self, prefix: Prefix, origin: int) -> bool | None:
        """Validate an announcement against the registry.

        Returns:
            ``True`` if a covering object authorizes ``origin``;
            ``False`` if covering objects exist but none matches ``origin``;
            ``None`` ("not found") if no covering object exists at all —
            such routes are *not* filtered, per the paper's observation.
        """
        found_covering = False
        for registered, origins in self._objects.items():
            # only an equal-or-less-specific object covers the
            # announcement; a more-specific object says nothing about it
            if registered.covers(prefix):
                found_covering = True
                if origin in origins:
                    return True
        return False if found_covering else None
