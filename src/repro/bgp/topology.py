"""AS-level topology.

A synthetic but structurally realistic inter-domain graph: a clique of
tier-1 transit providers, a ring+providers layer of tier-2 networks that
also peer at an IXP, and stub ASes (content, hosting, ISP, education, ...)
multi-homed to the upper tiers. The telescope AS attaches exactly like the
paper's: one IXP peering layer plus upstream providers.

Edges carry Gao-Rexford relationships:

- ``provider->customer`` (transit), and
- ``peer<->peer`` (settlement-free, e.g. at the IXP).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import RoutingError


class ASRelationship(enum.Enum):
    """Business relationship on a BGP adjacency, from each side's view."""

    CUSTOMER = "customer"   # the neighbor is my customer
    PROVIDER = "provider"   # the neighbor is my provider
    PEER = "peer"           # settlement-free peer


@dataclass(slots=True)
class ASInfo:
    """Static attributes of one autonomous system."""

    asn: int
    tier: int
    name: str = ""
    country: str = ""


@dataclass
class ASTopology:
    """Inter-domain graph with relationship-labeled adjacencies."""

    graph: nx.Graph = field(default_factory=nx.Graph)
    info: dict[int, ASInfo] = field(default_factory=dict)

    def add_as(self, asn: int, tier: int, name: str = "",
               country: str = "") -> None:
        if asn in self.info:
            raise RoutingError(f"AS{asn} already exists")
        self.info[asn] = ASInfo(asn=asn, tier=tier, name=name, country=country)
        self.graph.add_node(asn)

    def add_link(self, a: int, b: int,
                 rel_a: ASRelationship) -> None:
        """Connect ``a`` and ``b``; ``rel_a`` is what ``b`` is *to* ``a``.

        ``rel_a=CUSTOMER`` means b is a's customer (a provides transit).
        """
        for asn in (a, b):
            if asn not in self.info:
                raise RoutingError(f"unknown AS{asn}")
        if a == b:
            raise RoutingError(f"self-loop on AS{a}")
        if rel_a is ASRelationship.PEER:
            rel_b = ASRelationship.PEER
        elif rel_a is ASRelationship.CUSTOMER:
            rel_b = ASRelationship.PROVIDER
        else:
            rel_b = ASRelationship.CUSTOMER
        self.graph.add_edge(a, b, rel={a: rel_a, b: rel_b})

    def relationship(self, asn: int, neighbor: int) -> ASRelationship:
        """What ``neighbor`` is to ``asn`` on their shared adjacency."""
        data = self.graph.get_edge_data(asn, neighbor)
        if data is None:
            raise RoutingError(f"no adjacency AS{asn}-AS{neighbor}")
        return data["rel"][asn]

    def neighbors(self, asn: int) -> list[int]:
        return sorted(self.graph.neighbors(asn))

    def ases(self) -> list[int]:
        return sorted(self.info)

    def customers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is ASRelationship.CUSTOMER]

    def providers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is ASRelationship.PROVIDER]

    def peers(self, asn: int) -> list[int]:
        return [n for n in self.neighbors(asn)
                if self.relationship(asn, n) is ASRelationship.PEER]


def build_topology(rng: np.random.Generator,
                   num_tier1: int = 4,
                   num_tier2: int = 12,
                   num_stubs: int = 60,
                   first_asn: int = 100) -> ASTopology:
    """Build the synthetic inter-domain topology.

    Structure:
      * tier-1 ASes form a full peering clique;
      * each tier-2 AS buys transit from two tier-1s and peers with two
        other tier-2s (the IXP fabric);
      * each stub AS buys transit from one or two tier-2s.

    ASNs are assigned sequentially from ``first_asn``; stubs come last, so
    callers can attach scanners and telescopes to the stub range.
    """
    if num_tier1 < 2 or num_tier2 < 2 or num_stubs < 1:
        raise RoutingError("topology needs >=2 tier-1, >=2 tier-2, >=1 stub")
    topo = ASTopology()
    asn = first_asn
    tier1 = []
    for i in range(num_tier1):
        topo.add_as(asn, tier=1, name=f"tier1-{i}")
        tier1.append(asn)
        asn += 1
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            topo.add_link(a, b, ASRelationship.PEER)

    tier2 = []
    for i in range(num_tier2):
        topo.add_as(asn, tier=2, name=f"tier2-{i}")
        tier2.append(asn)
        asn += 1
    for i, t2 in enumerate(tier2):
        upstreams = rng.choice(tier1, size=2, replace=False)
        for up in upstreams:
            topo.add_link(int(up), t2, ASRelationship.CUSTOMER)
        # IXP-style peering ring among tier-2s
        ring_peer = tier2[(i + 1) % num_tier2]
        if ring_peer != t2 and not topo.graph.has_edge(t2, ring_peer):
            topo.add_link(t2, ring_peer, ASRelationship.PEER)

    for i in range(num_stubs):
        topo.add_as(asn, tier=3, name=f"stub-{i}")
        degree = 2 if rng.random() < 0.4 else 1
        upstreams = rng.choice(tier2, size=degree, replace=False)
        for up in upstreams:
            topo.add_link(int(up), asn, ASRelationship.CUSTOMER)
        asn += 1
    return topo


def attach_stub(topo: ASTopology, asn: int, rng: np.random.Generator,
                name: str = "", country: str = "",
                num_providers: int = 2) -> None:
    """Attach a new stub AS (e.g. the telescope AS) below random tier-2s."""
    tier2 = [a for a, i in topo.info.items() if i.tier == 2]
    if len(tier2) < num_providers:
        raise RoutingError("not enough tier-2 ASes to attach a stub")
    topo.add_as(asn, tier=3, name=name, country=country)
    upstreams = rng.choice(tier2, size=num_providers, replace=False)
    for up in upstreams:
        topo.add_link(int(up), asn, ASRelationship.CUSTOMER)
