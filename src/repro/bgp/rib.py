"""Routes and routing information bases.

A speaker keeps one Adj-RIB-In per neighbor (the routes that neighbor
advertised) and a Loc-RIB (the selected best route per prefix). Selection
follows the standard Gao-Rexford-compatible decision process:

1. highest local preference (customer > peer > provider routes),
2. shortest AS path,
3. lowest neighbor ASN (deterministic tie-break).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie

#: Local-preference values by the relationship of the advertising neighbor.
LOCAL_PREF = {"customer": 300, "peer": 200, "provider": 100}


@dataclass(frozen=True, slots=True)
class Route:
    """A candidate/selected route in a RIB.

    Attributes:
        prefix: the NLRI.
        as_path: path as received (neighbor first, origin last).
        neighbor: ASN the route was learned from (0 = locally originated).
        local_pref: preference derived from the neighbor relationship.
    """

    prefix: Prefix
    as_path: tuple[int, ...]
    neighbor: int
    local_pref: int
    #: precomputed :meth:`preference_key` — routes are compared a few
    #: times per received update during convergence storms, so the key
    #: tuple is built once at construction instead of per comparison.
    pref_key: tuple[int, int, int] = field(
        default=(), init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pref_key",
            (-self.local_pref, len(self.as_path), self.neighbor))

    @property
    def origin(self) -> int:
        return self.as_path[-1] if self.as_path else self.neighbor

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: better routes have *smaller* keys."""
        return self.pref_key


class AdjRibIn:
    """Routes received from one neighbor, keyed by exact prefix."""

    def __init__(self) -> None:
        self._routes: dict[Prefix, Route] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def put(self, route: Route) -> None:
        self._routes[route.prefix] = route

    def remove(self, prefix: Prefix) -> Route | None:
        return self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> Route | None:
        return self._routes.get(prefix)

    def prefixes(self) -> list[Prefix]:
        return list(self._routes)


class LocRib:
    """Selected best routes, with longest-prefix data-plane lookup.

    Exact-prefix operations (the control-plane hot path: ``best`` after
    every received update) go through a plain dict. The trie only serves
    the data-plane longest-prefix match, and almost no run ever asks for
    it — so it is built lazily from the dict on first use and discarded
    on any change, instead of paying a 128-level descend per install
    during convergence storms.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[Route] | None = None
        self._exact: dict[Prefix, Route] = {}

    def __len__(self) -> int:
        return len(self._exact)

    def install(self, route: Route) -> None:
        self._exact[route.prefix] = route
        self._trie = None

    def uninstall(self, prefix: Prefix) -> Route | None:
        removed = self._exact.pop(prefix, None)
        if removed is not None:
            self._trie = None
        return removed

    def best(self, prefix: Prefix) -> Route | None:
        """Exact-match best route for ``prefix``."""
        return self._exact.get(prefix)

    def _ensure_trie(self) -> PrefixTrie[Route]:
        if self._trie is None:
            trie: PrefixTrie[Route] = PrefixTrie()
            for prefix, route in self._exact.items():
                trie.insert(prefix, route)
            self._trie = trie
        return self._trie

    def resolve(self, addr: int) -> Route | None:
        """Longest-prefix-match data-plane lookup for an address."""
        hit = self._ensure_trie().longest_match(addr)
        return hit[1] if hit else None

    def routes(self) -> list[Route]:
        return [route for _, route in self._ensure_trie().items()]

    def prefixes(self) -> list[Prefix]:
        return [prefix for prefix, _ in self._ensure_trie().items()]
