"""Looking-glass visibility checks.

The authors confirmed announcement visibility via a public looking glass
(Telia) and RIPEstat. Our looking glass queries the Loc-RIBs of a chosen
vantage set, which is exactly what those services do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.speaker import BGPNetwork
from repro.errors import RoutingError
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class VisibilityReport:
    """Result of a looking-glass query for one prefix."""

    prefix: Prefix
    vantages_total: int
    vantages_with_route: int
    as_paths: tuple[tuple[int, ...], ...]

    @property
    def visible(self) -> bool:
        """Visible = a majority of vantages carry the route."""
        if self.vantages_total == 0:
            return False
        return self.vantages_with_route * 2 > self.vantages_total


class LookingGlass:
    """Queries route visibility from a fixed set of vantage ASes."""

    def __init__(self, network: BGPNetwork,
                 vantages: list[int] | None = None) -> None:
        self._network = network
        if vantages is None:
            vantages = [asn for asn, info in network.topology.info.items()
                        if info.tier == 1]
        if not vantages:
            raise RoutingError("looking glass needs at least one vantage AS")
        for asn in vantages:
            network.speaker(asn)  # raises for unknown ASes
        self._vantages = sorted(vantages)

    @property
    def vantages(self) -> list[int]:
        return list(self._vantages)

    def query(self, prefix: Prefix) -> VisibilityReport:
        """Check which vantages hold an exact route to ``prefix``."""
        paths = []
        with_route = 0
        for asn in self._vantages:
            speaker = self._network.speaker(asn)
            route = speaker.loc_rib.best(prefix)
            if route is None and prefix in speaker.originated:
                route_path: tuple[int, ...] | None = (asn,)
            elif route is not None:
                route_path = route.as_path
            else:
                route_path = None
            if route_path is not None:
                with_route += 1
                paths.append(route_path)
        return VisibilityReport(prefix=prefix,
                                vantages_total=len(self._vantages),
                                vantages_with_route=with_route,
                                as_paths=tuple(paths))

    def is_visible(self, prefix: Prefix) -> bool:
        return self.query(prefix).visible
