"""BGP update messages.

Only the attributes the experiment depends on are modeled: NLRI (one prefix
per message), the AS path, and the sending neighbor. MED/communities/etc.
are irrelevant to prefix visibility and omitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.prefix import Prefix


class UpdateKind(enum.Enum):
    """Whether an update announces or withdraws reachability."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True, slots=True)
class Announcement:
    """Reachability announcement for ``prefix`` via ``as_path``.

    ``as_path[0]`` is the sending neighbor, ``as_path[-1]`` the origin AS.
    """

    prefix: Prefix
    as_path: tuple[int, ...]

    @property
    def origin(self) -> int:
        return self.as_path[-1]

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.ANNOUNCE

    def contains_loop(self, asn: int) -> bool:
        """AS-path loop check used by receivers to drop their own routes."""
        return asn in self.as_path


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """Withdrawal of reachability for ``prefix`` by the sending neighbor."""

    prefix: Prefix

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.WITHDRAW
