"""RIS-like route collector.

Real BGP-reactive scanners watch public route-collector feeds (RIPE RIS,
RouteViews). Our collector taps the export stream of the simulated fabric
and keeps a timestamped journal that scanner agents subscribe to, with a
configurable publication delay modeling feed latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

from repro.bgp.messages import Announcement, UpdateKind, Withdrawal
from repro.bgp.speaker import BGPNetwork
from repro.net.prefix import Prefix
from repro.sim.events import Simulator

#: Subscriber signature: (publication time, entry).
FeedSubscriber = Callable[[float, "CollectorEntry"], None]


@dataclass(frozen=True, slots=True)
class CollectorEntry:
    """One journal line of the collector feed."""

    time: float
    kind: UpdateKind
    prefix: Prefix
    origin: int | None
    seen_by: int


@dataclass
class RouteCollector:
    """Collects updates from peered ASes and republishes them to subscribers.

    Attributes:
        peers: ASNs whose exports the collector receives; empty = all ASes
            (a full-feed collector, the default and fastest signal).
        feed_delay: seconds between an export and its publication.
    """

    network: BGPNetwork
    simulator: Simulator
    peers: frozenset[int] = frozenset()
    feed_delay: float = 60.0
    journal: list[CollectorEntry] = field(default_factory=list)
    _subscribers: list[FeedSubscriber] = field(default_factory=list)
    _state: dict[Prefix, UpdateKind] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.network.add_listener(self._on_export)

    def subscribe(self, subscriber: FeedSubscriber) -> None:
        self._subscribers.append(subscriber)

    def _on_export(self, time: float, asn: int,
                   update: Announcement | Withdrawal) -> None:
        if self.peers and asn not in self.peers:
            return
        if self._state.get(update.prefix) is update.kind:
            return  # re-export of an already-journaled prefix state
        self._state[update.prefix] = update.kind
        origin = update.origin if isinstance(update, Announcement) else None
        entry = CollectorEntry(time=time, kind=update.kind,
                               prefix=update.prefix, origin=origin,
                               seen_by=asn)
        self.journal.append(entry)
        publish_at = time + self.feed_delay
        self.simulator.schedule_at(
            max(publish_at, self.simulator.now),
            partial(self._publish, publish_at, entry),
            label=f"collector:{update.kind.value}:{update.prefix}",
        )

    def _publish(self, time: float, entry: CollectorEntry) -> None:
        for subscriber in self._subscribers:
            subscriber(time, entry)

    # -- recorded-timeline replay ----------------------------------------------

    def arm_replay(self, feed: "Sequence[CollectorEntry]") -> None:
        """Schedule a recorded journal for replay instead of a live tap.

        ``feed`` is the journal of a collector that watched the real
        fabric (the coordinator's recording pass in a sharded build,
        DESIGN §8). Subscribers couple to the collector only through
        :meth:`_publish` callbacks, so replaying publications alone —
        one event per entry at ``entry.time + feed_delay``, armed in
        journal order so equal-time publications keep their recorded
        order — is indistinguishable from a live feed. The journal and
        prefix-state queries of a replaying collector are *not*
        maintained during the run; they are post-run surfaces and shard
        workers are discarded after spilling their segments.
        """
        for entry in feed:
            publish_at = entry.time + self.feed_delay
            self.simulator.schedule_at(
                max(publish_at, self.simulator.now),
                partial(self._publish, publish_at, entry),
                label="collector:replay",
            )

    # -- query interface -------------------------------------------------------

    def announcements(self) -> list[CollectorEntry]:
        return [e for e in self.journal if e.kind is UpdateKind.ANNOUNCE]

    def first_seen(self, prefix: Prefix) -> float | None:
        """Time the collector first journaled an announcement of ``prefix``."""
        for entry in self.journal:
            if entry.kind is UpdateKind.ANNOUNCE and entry.prefix == prefix:
                return entry.time
        return None

    def visible_prefixes(self) -> set[Prefix]:
        """Prefixes currently announced according to the journal."""
        return {p for p, kind in self._state.items()
                if kind is UpdateKind.ANNOUNCE}
