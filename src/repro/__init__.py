"""repro — IPv6 scanners and their adaption to BGP signals.

A reproduction of "A Detailed Measurement View on IPv6 Scanners and Their
Adaption to BGP Signals" (CoNEXT 2025): the four-telescope measurement
infrastructure, a calibrated scanner ecosystem, and the paper's complete
analysis methodology.

Typical entry points:

>>> from repro import ExperimentConfig, run_experiment, CorpusAnalysis
>>> result = run_experiment(ExperimentConfig(seed=42, scale=0.1))
>>> analysis = CorpusAnalysis(result.corpus)

See :mod:`repro.analysis.tables` and :mod:`repro.analysis.figures` for
the per-table/per-figure generators, and DESIGN.md for the full system
inventory.
"""

from repro.analysis.context import CorpusAnalysis
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus
from repro.experiment.driver import ExperimentResult, run_experiment
from repro.net.addrtypes import AddressType, classify_address
from repro.net.prefix import Prefix
from repro.telescope.deployment import Deployment, build_deployment

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "run_experiment",
    "ExperimentResult",
    "PacketCorpus",
    "CorpusAnalysis",
    "Prefix",
    "AddressType",
    "classify_address",
    "Deployment",
    "build_deployment",
    "__version__",
]
