"""Deterministic named random-number streams.

Every stochastic component of the simulation draws from its own named child
stream of a single master seed. Adding a new component therefore never
perturbs the draws of existing components, and a corpus is reproducible from
``(master_seed, config)`` alone.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """Factory for named, independent :class:`numpy.random.Generator` streams.

    Child streams are derived by hashing the master seed together with the
    stream name, so stream identity is stable across runs and across
    unrelated code changes.

    Example:
        >>> streams = RngStreams(42)
        >>> rng = streams.get("scanners.population")
        >>> float(rng.random()) == float(RngStreams(42).get("scanners.population").random())
        True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def seed_for(self, name: str) -> int:
        """Derive the 64-bit child seed for stream ``name``."""
        payload = f"{self._master_seed}:{name}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def get(self, name: str) -> np.random.Generator:
        """Return the cached generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so a component that stores the stream and one that re-fetches it
        observe a single shared sequence.
        """
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(self.seed_for(name))
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a new, uncached generator for ``name``.

        Use this when a caller needs an isolated replayable stream (e.g. one
        scanner's target generator) rather than a shared one.
        """
        return np.random.default_rng(self.seed_for(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(master_seed={self._master_seed})"
