"""Simulated time.

All simulation timestamps are floating-point seconds since the start of the
experiment (t=0). Calendar-style helpers (days, weeks) are provided because
the paper reasons in days/weeks/bi-weekly announcement cycles.
"""

from __future__ import annotations

from repro.errors import SimulationError

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


class SimClock:
    """Monotonically advancing simulation clock.

    The clock only moves forward; attempts to rewind raise
    :class:`SimulationError`. Components read the current time via
    :attr:`now` and translate it into calendar units with the helpers.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before t=0 (got {start})")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises:
            SimulationError: if ``t`` lies in the past.
        """
        if t < self._now:
            raise SimulationError(
                f"cannot rewind clock from t={self._now} to t={t}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt={dt}")
        self._now += float(dt)

    # -- calendar helpers -------------------------------------------------

    @property
    def day(self) -> int:
        """Zero-based day index of the current time."""
        return day_of(self._now)

    @property
    def week(self) -> int:
        """Zero-based week index of the current time."""
        return week_of(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now!r}, day={self.day}, week={self.week})"


def day_of(t: float) -> int:
    """Zero-based day index containing timestamp ``t``."""
    return int(t // DAY)


def week_of(t: float) -> int:
    """Zero-based week index containing timestamp ``t``."""
    return int(t // WEEK)


def hour_of(t: float) -> int:
    """Zero-based hour index containing timestamp ``t``."""
    return int(t // HOUR)


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit, e.g. ``'2w 3d'``.

    Useful for log lines and report headers.
    """
    if seconds < 0:
        raise SimulationError(f"negative duration: {seconds}")
    remaining = int(seconds)
    parts: list[str] = []
    for label, unit in (("w", int(WEEK)), ("d", int(DAY)), ("h", int(HOUR)),
                        ("m", int(MINUTE))):
        count, remaining = divmod(remaining, unit)
        if count:
            parts.append(f"{count}{label}")
    if remaining or not parts:
        parts.append(f"{remaining}s")
    return " ".join(parts)
