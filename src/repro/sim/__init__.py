"""Discrete-event simulation engine.

This subpackage provides the minimal machinery that all simulated
substrates (BGP, telescopes, scanners) share:

- :mod:`repro.sim.clock` — simulated time, calendar helpers.
- :mod:`repro.sim.events` — an event queue with stable ordering.
- :mod:`repro.sim.rng` — deterministic, named random-number streams.
"""

from repro.sim.clock import (
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    SimClock,
    format_duration,
)
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.rng import RngStreams

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "SimClock",
    "format_duration",
    "Event",
    "EventQueue",
    "Simulator",
    "RngStreams",
]
