"""Event queue and simulation loop.

Events carry an absolute firing time and a callback. Ties are broken by a
monotonically increasing sequence number, which makes the execution order
fully deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.errors import SimulationError
from repro.sim.clock import SimClock


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events themselves don't implement ordering — the queue keeps them in
    ``(time, seq)``-keyed heap entries so heap sifts compare plain floats
    and ints at C speed instead of calling back into Python.

    Attributes:
        time: absolute simulation time at which the event fires.
        seq: tie-breaker assigned by the queue; earlier-scheduled fires first.
        action: zero-argument callable invoked when the event fires.
        label: free-form tag for tracing and tests.
    """

    time: float
    seq: int
    action: Callable[[], Any]
    label: str = ""
    cancelled: bool = False
    _queue: Any = field(default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1
                self._queue.events_cancelled += 1


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order).

    Tracks a live-event counter so ``len()`` is O(1): schedule increments
    it, cancel and pop-of-live decrement it. ``events_cancelled`` counts
    each cancellation exactly once, at :meth:`Event.cancel` time — the
    lazy heap cleanup in :meth:`_drop_cancelled` never touches either
    counter, so depth and cancellation accounting are independent of when
    dead entries physically leave the heap. ``high_water`` is the maximum
    number of simultaneously live events ever observed.
    """

    def __init__(self) -> None:
        #: heap of ``(time, seq, event)`` — C-speed float/int comparisons
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0
        self.events_cancelled = 0
        self.high_water = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: float, action: Callable[[], Any],
                 label: str = "") -> Event:
        """Insert an event firing at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event before t=0 ({time})")
        event = Event(time=float(time), seq=next(self._counter),
                      action=action, label=label, _queue=self)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._live += 1
        if self._live > self.high_water:
            self.high_water = self._live
        return event

    def peek_time(self) -> float | None:
        """Firing time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        self._live -= 1
        event = heapq.heappop(self._heap)[2]
        event._queue = None  # a late cancel() must not re-decrement
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)


class Simulator:
    """Drives a :class:`SimClock` through an :class:`EventQueue`.

    The simulator is deliberately minimal: components schedule events
    (possibly from within event callbacks) and :meth:`run_until` executes
    them in time order until the horizon.

    A flight recorder (or any observer) may set :attr:`heartbeat` and a
    positive :attr:`heartbeat_interval` (sim seconds): the hook is then
    called with the simulator after each interval of simulated time
    passes during :meth:`run_until`. With no hook installed the loop
    pays one comparison per event.
    """

    def __init__(self, clock: SimClock | None = None,
                 shard: int | None = None) -> None:
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self.events_executed = 0
        self.heartbeat: Callable[["Simulator"], Any] | None = None
        self.heartbeat_interval: float = 0.0
        #: shard index when this simulator drives one worker of a sharded
        #: build (``None`` for a whole-population run); surfaces in the
        #: ``sim.run_until`` span so shard traces stay attributable.
        self.shard = shard

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_at(self, time: float, action: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time`` (not in the past)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.clock.now}"
            )
        return self.queue.schedule(time, action, label)

    def schedule_in(self, delay: float, action: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.schedule(self.clock.now + delay, action, label)

    def run_until(self, horizon: float) -> int:
        """Execute all events with ``time <= horizon``; return count executed.

        The clock finishes exactly at ``horizon`` even if the queue drains
        early, so periodic bookkeeping that reads the clock sees a full run.
        """
        if horizon < self.clock.now:
            raise SimulationError(
                f"horizon t={horizon} is before now={self.clock.now}"
            )
        beat = self.heartbeat
        next_beat = (self.clock.now + self.heartbeat_interval
                     if beat is not None and self.heartbeat_interval > 0
                     else None)
        queue = self.queue
        clock = self.clock
        heap = queue._heap
        heappop = heapq.heappop
        executed = 0  # since the last flush into events_executed
        before = self.events_executed
        attrs = {"horizon": horizon}
        if self.shard is not None:
            attrs["shard"] = self.shard
        with obs.span("sim.run_until", **attrs) as sp:
            # the peek/pop pair is inlined: the loop body runs once per
            # simulated event, and two method calls plus a second
            # cancelled-head scan per event are measurable at corpus scale
            while True:
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                if not heap or heap[0][0] > horizon:
                    break
                queue._live -= 1
                event = heappop(heap)[2]
                event._queue = None  # a late cancel() must not re-decrement
                clock.advance_to(event.time)
                event.action()
                executed += 1
                if next_beat is not None and event.time >= next_beat:
                    # flush so the hook sees an up-to-date total
                    self.events_executed += executed
                    executed = 0
                    beat(self)
                    next_beat = clock.now + self.heartbeat_interval
            clock.advance_to(horizon)
            self.events_executed += executed
            ran = self.events_executed - before
            sp.set(executed=ran)
        return ran
