"""DDoS backscatter simulation (§8: "Are IPv6 telescopes suitable to
monitor DDoS? No.").

IPv4 telescopes observe DDoS attacks through *backscatter*: victims of
randomly spoofed floods answer toward the spoofed sources, and a /8
telescope sees 1/256 of those answers. In IPv6, spoofed sources are drawn
from a 2^125-address unicast space, so even a /29 telescope expects a
~2^-26 fraction — practically nothing.

This module simulates a spoofed-source flood and the victim's backscatter
so the claim becomes a measured (and analytically checked) result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix
from repro.scanners.base import ScannerContext
from repro.telescope.packet import Packet, Protocol

#: The global unicast space spoofed sources are drawn from (RFC 4291).
GLOBAL_UNICAST = Prefix.parse("2000::/3")


@dataclass
class DDoSAttack:
    """A randomly spoofed flood against one victim.

    Attributes:
        victim: attacked address; its replies are the backscatter.
        packets: number of attack packets (= backscatter replies).
        spoof_space: prefix the spoofed sources are drawn from.
        reply_protocol: transport of the victim's replies (SYN/ACKs ->
            TCP, or ICMPv6 errors).
    """

    victim: int
    packets: int
    rng: np.random.Generator
    spoof_space: Prefix = GLOBAL_UNICAST
    reply_protocol: Protocol = Protocol.TCP
    reply_port: int = 443
    start: float = 0.0
    duration: float = 3600.0
    backscatter_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise ExperimentError("an attack needs at least one packet")
        if self.duration <= 0:
            raise ExperimentError("attack duration must be positive")

    def spoofed_source(self) -> int:
        """One uniformly random spoofed source in the spoof space."""
        host_bits = 128 - self.spoof_space.length
        return self.spoof_space.network | random_bits(self.rng, host_bits)

    def run(self, ctx: ScannerContext) -> int:
        """Emit the victim's backscatter; returns telescope captures.

        Each attack packet makes the victim answer toward its spoofed
        source — that reply is what a telescope could capture.
        """
        captured = 0
        step = self.duration / self.packets
        t = self.start
        for _ in range(self.packets):
            dst = self.spoofed_source()
            reply = Packet(time=t, src=self.victim, dst=dst,
                           protocol=self.reply_protocol,
                           dst_port=self.reply_port)
            self.backscatter_sent += 1
            telescope = ctx.route(dst, t)
            if telescope is not None:
                telescope.deliver(reply)
                captured += 1
            t += step
        return captured


def expected_backscatter_captures(telescope_prefixes: list[Prefix],
                                  packets: int,
                                  spoof_space: Prefix = GLOBAL_UNICAST) \
        -> float:
    """Analytic expectation of captured backscatter packets.

    The capture probability is the telescope address space divided by the
    spoof space — the quantity that makes IPv6 background radiation
    useless for DDoS monitoring.
    """
    if packets < 0:
        raise ExperimentError("packet count must be >= 0")
    telescope_space = 0
    for prefix in telescope_prefixes:
        if not spoof_space.covers(prefix):
            continue
        telescope_space += prefix.num_addresses
    return packets * telescope_space / spoof_space.num_addresses


def ipv4_equivalent_captures(telescope_slash: int, packets: int) -> float:
    """What an IPv4 telescope of the given /N would have captured.

    Reference point for the §8 comparison: an IPv4 /8 darknet captures
    packets/256 of the backscatter of a uniformly spoofed flood.
    """
    if not 0 <= telescope_slash <= 32:
        raise ExperimentError(f"invalid IPv4 prefix length "
                              f"{telescope_slash}")
    return packets / (1 << telescope_slash)
