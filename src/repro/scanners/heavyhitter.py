"""Heavy hitters.

§4.2: ten sources each contribute >10% of one telescope's packets; together
they carry 73% of all packets but only 0.04% of sessions. Three of four T1
heavy hitters sit in hosting networks (one a self-styled "bullet-proof"
hoster); two T2 heavy hitters scan repeatedly over the whole period, one
with an RDNS entry pointing to the 6Sense campaign; one source is heavy in
both T2 and T4. A single scanner also originates 85% of all UDP packets as
DNS requests.
"""

from __future__ import annotations

from repro.net.prefix import Prefix
from repro.scanners.base import (ConstPackets, Scanner, TemporalBehavior,
                                 TemporalKind)
from repro.scanners.netselect import (AllAnnouncedPolicy, AnnouncedProvider,
                                      FixedPrefixPolicy)
from repro.scanners.registry import ASRegistry, NetworkType
from repro.scanners.strategies import (LowByteStrategy, PortDistribution,
                                       ProtocolProfile, RandomStrategy,
                                       StructuredSweepStrategy)
from repro.scanners.tools import SIX_SENSE
from repro.sim.clock import DAY, WEEK
from repro.sim.rng import RngStreams

#: UDP profile sending only DNS requests (the single 85%-of-UDP scanner).
DNS_ONLY = ProtocolProfile(
    icmpv6=0.0, udp=1.0, udp_traceroute_share=0.0,
    udp_ports=PortDistribution(ports=(53,), weights=(1.0,)))


def build_heavy_hitters(announced: AnnouncedProvider,
                        t2_prefix: Prefix, t4_prefix: Prefix,
                        registry: ASRegistry, streams: RngStreams,
                        split_start: float, duration: float,
                        burst_packets: int,
                        first_scanner_id: int) -> list[Scanner]:
    """The ten heavy hitters, calibrated to carry most of the packet volume.

    ``burst_packets`` scales the one-shot burst size (the knob the
    population config exposes as its packet-volume lever).
    """
    scanners: list[Scanner] = []
    sid = first_scanner_id

    def _add(scanner: Scanner) -> None:
        nonlocal sid
        sid += 1
        scanners.append(scanner)

    # --- T1 heavy hitters (4) -------------------------------------------------
    bulletproof = registry.allocate(NetworkType.HOSTING,
                                    name="bulletproof-hosting")
    _add(Scanner(
        scanner_id=sid, name="hh-t1-bulletproof", as_record=bulletproof,
        temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF),
        network_policy=AllAnnouncedPolicy(announced),
        addr_strategy=RandomStrategy(),
        protocol_profile=ProtocolProfile(icmpv6=1.0),
        rng=streams.fresh("hh.t1.bulletproof"),
        packets_per_session=ConstPackets(burst_packets),
        mean_packet_gap=0.02,
        active_start=split_start + 6 * WEEK,
        active_end=split_start + 8 * WEEK))

    dns_hoster = registry.allocate(NetworkType.HOSTING)
    _add(Scanner(
        scanner_id=sid, name="hh-t1-udp-dns", as_record=dns_hoster,
        temporal=TemporalBehavior(kind=TemporalKind.INTERMITTENT,
                                  mean_gap=8 * WEEK, first_at=2 * DAY),
        network_policy=AllAnnouncedPolicy(announced),
        addr_strategy=RandomStrategy(structured_subnets=True),
        protocol_profile=DNS_ONLY,
        rng=streams.fresh("hh.t1.udp-dns"),
        packets_per_session=ConstPackets(int(burst_packets * 0.65)),
        mean_packet_gap=0.02,
        active_start=split_start))

    hoster3 = registry.allocate(NetworkType.HOSTING)
    _add(Scanner(
        scanner_id=sid, name="hh-t1-burst", as_record=hoster3,
        temporal=TemporalBehavior(kind=TemporalKind.INTERMITTENT,
                                  mean_gap=10 * WEEK, first_at=3 * DAY),
        network_policy=AllAnnouncedPolicy(announced),
        addr_strategy=RandomStrategy(),
        protocol_profile=ProtocolProfile(icmpv6=0.9, tcp=0.1),
        rng=streams.fresh("hh.t1.burst"),
        packets_per_session=ConstPackets(int(burst_packets * 0.4)),
        mean_packet_gap=0.02,
        active_start=split_start))

    edu = registry.allocate(NetworkType.EDUCATION, name="research-university")
    _add(Scanner(
        scanner_id=sid, name="hh-t1-research", as_record=edu,
        temporal=TemporalBehavior(kind=TemporalKind.INTERMITTENT,
                                  mean_gap=12 * WEEK, first_at=4 * WEEK),
        network_policy=AllAnnouncedPolicy(announced),
        addr_strategy=StructuredSweepStrategy(),
        protocol_profile=ProtocolProfile(icmpv6=1.0),
        rng=streams.fresh("hh.t1.research"),
        packets_per_session=ConstPackets(int(burst_packets * 0.5)),
        mean_packet_gap=0.02,
        rdns_name="ipv6-survey.research-university.edu"))

    # --- T2 heavy hitters (3; one also heavy in T4) ---------------------------
    sixsense_as = registry.allocate(NetworkType.EDUCATION,
                                    name="6sense-campaign")
    _add(Scanner(
        scanner_id=sid, name="hh-t2-6sense", as_record=sixsense_as,
        temporal=TemporalBehavior(kind=TemporalKind.PERIODIC,
                                  period=2 * DAY, jitter=4 * 3600.0,
                                  first_at=1 * DAY),
        network_policy=FixedPrefixPolicy((t2_prefix,)),
        addr_strategy=StructuredSweepStrategy(),
        protocol_profile=ProtocolProfile(icmpv6=0.7, tcp=0.3),
        rng=streams.fresh("hh.t2.6sense"),
        packets_per_session=ConstPackets(max(2, burst_packets // 45)),
        tool=SIX_SENSE, payload_probability=0.8,
        rdns_name=SIX_SENSE.rdns_for(1),
        mean_packet_gap=0.05))

    longterm = registry.allocate(NetworkType.HOSTING)
    _add(Scanner(
        scanner_id=sid, name="hh-t2-longterm", as_record=longterm,
        temporal=TemporalBehavior(kind=TemporalKind.PERIODIC,
                                  period=3 * DAY, jitter=6 * 3600.0,
                                  first_at=2 * DAY),
        network_policy=FixedPrefixPolicy((t2_prefix,)),
        addr_strategy=LowByteStrategy(hosts=(1, 2, 0x443)),
        protocol_profile=ProtocolProfile(icmpv6=0.2, tcp=0.8),
        rng=streams.fresh("hh.t2.longterm"),
        packets_per_session=ConstPackets(max(2, burst_packets // 100)),
        mean_packet_gap=0.05))

    shared = registry.allocate(NetworkType.EDUCATION)
    _add(Scanner(
        scanner_id=sid, name="hh-t2-t4-research", as_record=shared,
        temporal=TemporalBehavior(kind=TemporalKind.INTERMITTENT,
                                  mean_gap=9 * WEEK, first_at=5 * WEEK),
        network_policy=FixedPrefixPolicy((t2_prefix, t4_prefix),
                                         weights=(0.85, 0.15)),
        addr_strategy=RandomStrategy(structured_subnets=True),
        protocol_profile=ProtocolProfile(icmpv6=1.0),
        rng=streams.fresh("hh.t2.t4"),
        packets_per_session=ConstPackets(int(burst_packets * 0.25)),
        mean_packet_gap=0.03,
        rdns_name="periphery-scan.netlab.example.edu"))

    return scanners
