"""Calibrated scanner population.

Assembles the complete ecosystem the four telescopes observe, sized by a
single ``scale`` knob. Component counts and behavior mixes target the
paper's reported marginals (see DESIGN.md §5); tests and benchmarks verify
the resulting *shapes* rather than absolute counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bgp.controller import AnnouncementCycle
from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix
from repro.scanners.atlas import build_atlas_fleet
from repro.scanners.base import (ConstPackets, Scanner, SourceModel,
                                 TemporalBehavior, TemporalKind,
                                 UniformDelay, UniformPackets)
from repro.scanners.heavyhitter import build_heavy_hitters
from repro.scanners.netselect import (AllAnnouncedPolicy, AlternatingPolicy,
                                      AnnouncedProvider, CombinedPolicy,
                                      FixedPrefixPolicy,
                                      SingleAnnouncedPolicy,
                                      SizeDependentPolicy, SwitchingPolicy)
from repro.scanners.registry import ASRegistry, NetworkType
from repro.scanners.strategies import (FixedTargetsStrategy, LowByteStrategy,
                                       MixStrategy, ProtocolProfile,
                                       RandomStrategy,
                                       StructuredSweepStrategy,
                                       TypeMixStrategy)
from repro.scanners.tools import (ALPHA_STRIKE, CAIDA_ARK, HTRACE6, SIX_SCAN,
                                  SIX_SEEKS, TRACEROUTE, YARRP6,
                                  ToolSignature)
from repro.sim.clock import DAY, HOUR, WEEK
from repro.sim.rng import RngStreams


def uniform_packets(low: int, high: int) \
        -> Callable[[np.random.Generator], int]:
    """Session-size sampler: uniform integer in [low, high] (picklable)."""
    if low < 1 or high < low:
        raise ExperimentError(f"invalid session size range [{low}, {high}]")
    return UniformPackets(low, high)


def const_packets(n: int) -> Callable[[np.random.Generator], int]:
    """Session-size sampler: always ``n`` (picklable)."""
    return ConstPackets(n)


@dataclass
class PopulationConfig:
    """Component counts at ``scale=1.0`` plus behavior knobs."""

    scale: float = 1.0
    #: one-off fleets per announcement cycle (T1)
    atlas_per_prefix: int = 18
    atlas_baseline: int = 50
    alpha_strike_per_prefix: int = 6
    misc_oneoff_per_cycle: int = 10
    #: recurring scanner pools (T1-centric)
    periodic_research: int = 300
    intermittent_pool: int = 340
    inconsistent: int = 16
    size_dependent: int = 6
    live_monitors: int = 18
    #: other telescopes
    t2_dns_scanners: int = 1300
    t2_general_scanners: int = 400
    t4_feedback_scanners: int = 36
    t4_campaign_sources: int = 50
    t3_stray_sources: int = 3
    tga_scanners: int = 4
    global_sweepers: int = 9
    #: heavy-hitter burst size (the packet-volume lever)
    heavy_hitter_burst: int = 110_000

    def scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, round(value * self.scale))


@dataclass
class PopulationInputs:
    """Everything the builder needs to know about the deployment."""

    schedule: list[AnnouncementCycle]
    announced: AnnouncedProvider
    t1_prefix: Prefix
    t2_prefix: Prefix
    t3_prefix: Prefix
    t4_prefix: Prefix
    attractor_addr: int
    duration: float
    #: the /29 covering T3/T4 (search space for dynamic TGA scanners);
    #: derived from the T4 prefix when omitted.
    covering_prefix: Prefix | None = None

    def covering(self) -> Prefix:
        if self.covering_prefix is not None:
            return self.covering_prefix
        return Prefix(self.t4_prefix.network, 29)

    @property
    def split_start(self) -> float:
        if len(self.schedule) < 2:
            return self.schedule[0].withdraw_time
        return self.schedule[1].announce_time


@dataclass
class _Builder:
    config: PopulationConfig
    inputs: PopulationInputs
    registry: ASRegistry
    streams: RngStreams
    scanners: list[Scanner] = field(default_factory=list)
    _next_id: int = 0

    @property
    def rng(self) -> np.random.Generator:
        return self.streams.get("population.assign")

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def add(self, scanner: Scanner) -> Scanner:
        scanner.validate()
        self.scanners.append(scanner)
        return scanner

    # -- component factories -----------------------------------------------

    def alpha_strike(self) -> None:
        """Commercial single-prefix research scanning (§7.2).

        One hosting AS, fresh one-off sources per announced prefix and
        cycle, small TCP-heavy structured scans.
        """
        company = self.registry.allocate(NetworkType.HOSTING,
                                         name="alpha-strike-labs")
        per_prefix = self.config.scaled(self.config.alpha_strike_per_prefix)
        index = 0
        for cycle in self.inputs.schedule:
            if cycle.index == 0:
                continue
            for prefix in cycle.prefixes:
                for _ in range(per_prefix):
                    index += 1
                    self.add(Scanner(
                        scanner_id=self.new_id(),
                        name=f"alphastrike-{index}",
                        as_record=company,
                        temporal=TemporalBehavior(
                            kind=TemporalKind.ONE_OFF,
                            first_at=min(
                                float(self.rng.exponential(3 * DAY)),
                                cycle.withdraw_time
                                - cycle.announce_time - 1.0)),
                        network_policy=FixedPrefixPolicy((prefix,)),
                        addr_strategy=LowByteStrategy(
                            hosts=(1, 2, 0x80, 0x443), anycast_share=0.1),
                        protocol_profile=ProtocolProfile(icmpv6=0.2, tcp=0.8),
                        rng=self.streams.fresh(f"scanner.alpha.{index}"),
                        packets_per_session=uniform_packets(3, 10),
                        tool=ALPHA_STRIKE, payload_probability=0.7,
                        rdns_name=ALPHA_STRIKE.rdns_for(index),
                        truth_network_class="single-prefix",
                        source_subnet_index=index,
                        active_start=cycle.announce_time,
                        active_end=cycle.withdraw_time))

    def misc_oneoffs(self) -> None:
        """Unattributed one-off visitors (no payload, no RDNS).

        Their number grows with the announced prefix count, mirroring the
        per-announcement attention growth of §7.1.
        """
        per_cycle = self.config.scaled(self.config.misc_oneoff_per_cycle)
        index = 0
        for cycle in self.inputs.schedule:
            batch = max(per_cycle, per_cycle * len(cycle.prefixes) // 3)
            for _ in range(batch):
                index += 1
                record = self.registry.allocate(
                    NetworkType.HOSTING if self.rng.random() < 0.75
                    else NetworkType.BUSINESS)
                strategy = LowByteStrategy() if self.rng.random() < 0.7 \
                    else TypeMixStrategy()
                self.add(Scanner(
                    scanner_id=self.new_id(),
                    name=f"oneoff-{index}",
                    as_record=record,
                    temporal=TemporalBehavior(
                        kind=TemporalKind.ONE_OFF,
                        first_at=float(self.rng.uniform(
                            0.0, cycle.withdraw_time
                            - cycle.announce_time - 1.0))),
                    network_policy=SingleAnnouncedPolicy(
                        self.inputs.announced),
                    addr_strategy=strategy,
                    protocol_profile=ProtocolProfile(icmpv6=0.5, tcp=0.4,
                                                     udp=0.1),
                    rng=self.streams.fresh(f"scanner.misc.{index}"),
                    packets_per_session=uniform_packets(5, 40),
                    truth_network_class="single-prefix",
                    active_start=cycle.announce_time,
                    active_end=cycle.withdraw_time))

    def research_periodic(self) -> None:
        """The recurring research-scanner pool (Yarrp6, traceroute, ...).

        Tool counts follow Table 7 proportions; the unnamed remainder sends
        random-byte payloads or none at all.
        """
        count = self.config.scaled(self.config.periodic_research)
        tool_quota: list[tuple[ToolSignature | None, int]] = [
            (YARRP6, self.config.scaled(22)),
            (TRACEROUTE, self.config.scaled(19)),
            (HTRACE6, self.config.scaled(9)),
            (SIX_SEEKS, self.config.scaled(5)),
            (SIX_SCAN, self.config.scaled(3)),
            (CAIDA_ARK, self.config.scaled(2)),
        ]
        tools: list[ToolSignature | None] = []
        for tool, quota in tool_quota:
            tools.extend([tool] * quota)
        tools.extend([None] * max(0, count - len(tools)))
        # the pool is never truncated below the per-tool quotas
        for index, tool in enumerate(tools):
            record = self.registry.allocate(
                NetworkType.EDUCATION if self.rng.random() < 0.10
                else NetworkType.HOSTING)
            if self.rng.random() < 0.5:
                policy, truth = (AllAnnouncedPolicy(self.inputs.announced),
                                 "size-independent")
            else:
                policy, truth = (SingleAnnouncedPolicy(self.inputs.announced),
                                 "single-prefix")
            # about half of the recurring research scanners also probe the
            # long-announced T2 /48 in the same campaigns, producing the
            # T1/T2 source and ASN overlap of Fig. 8 and Fig. 16(b)
            if self.rng.random() < 0.45:
                policy = CombinedPolicy((
                    policy,
                    FixedPrefixPolicy((self.inputs.t2_prefix,),
                                      weights=(0.8,))))
            if tool in (YARRP6, CAIDA_ARK, TRACEROUTE):
                profile = ProtocolProfile(icmpv6=0.25, udp=0.75)
                strategy: object = RandomStrategy(
                    structured_subnets=self.rng.random() < 0.5)
                addr_truth = "random"
            else:
                profile = ProtocolProfile(icmpv6=0.8, tcp=0.15, udp=0.05)
                if self.rng.random() < 0.6:
                    strategy = MixStrategy(parts=(
                        (0.7, LowByteStrategy(anycast_share=0.08)),
                        (0.3, StructuredSweepStrategy())))
                    addr_truth = "structured"
                else:
                    strategy = RandomStrategy()
                    addr_truth = "random"
            # periods range from hours to months (§5.1); long-period
            # scanners do not show up in every announcement cycle, which
            # keeps the per-cycle source count dominated by the growing
            # one-off fleets
            if self.rng.random() < 0.5:
                period = float(self.rng.uniform(2 * DAY, 10 * DAY))
            else:
                period = float(self.rng.uniform(2 * WEEK, 8 * WEEK))
            if tool is CAIDA_ARK:
                period = float(self.rng.uniform(6 * HOUR, 12 * HOUR))
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"research-{index}",
                as_record=record,
                temporal=TemporalBehavior(kind=TemporalKind.PERIODIC,
                                          period=period,
                                          jitter=period * 0.04),
                network_policy=policy,
                addr_strategy=strategy,
                protocol_profile=profile,
                rng=self.streams.fresh(f"scanner.research.{index}"),
                packets_per_session=uniform_packets(4, 16),
                tool=tool,
                payload_probability=0.85 if tool else 0.1,
                rdns_name=tool.rdns_for(index) if tool else "",
                truth_network_class=truth,
                truth_address_class=addr_truth,
                spread_prefix_sessions=truth == "size-independent"))

    def intermittent(self) -> None:
        """Recurring scanners without a stable period."""
        count = self.config.scaled(self.config.intermittent_pool)
        for index in range(count):
            record = self.registry.allocate(
                NetworkType.HOSTING if self.rng.random() < 0.55
                else NetworkType.ISP)
            if self.rng.random() < 0.35:
                policy, truth = (AllAnnouncedPolicy(self.inputs.announced),
                                 "size-independent")
            else:
                policy, truth = (SingleAnnouncedPolicy(self.inputs.announced),
                                 "single-prefix")
            strategy = LowByteStrategy() if self.rng.random() < 0.65 \
                else TypeMixStrategy()
            if self.rng.random() < 0.35:
                policy = AlternatingPolicy(
                    policies=(policy,
                              FixedPrefixPolicy((self.inputs.t2_prefix,))),
                    weights=(0.6, 0.4))
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"intermittent-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(2 * WEEK, 6 * WEEK))),
                network_policy=policy,
                addr_strategy=strategy,
                protocol_profile=ProtocolProfile(icmpv6=0.55, tcp=0.35,
                                                 udp=0.10),
                rng=self.streams.fresh(f"scanner.intermittent.{index}"),
                packets_per_session=uniform_packets(4, 20),
                truth_network_class=truth,
                source_subnet_index=index,
                spread_prefix_sessions=truth == "size-independent"))

    def inconsistent_scanners(self) -> None:
        """Few sources, huge session counts, behavior switching mid-way."""
        count = self.config.scaled(self.config.inconsistent)
        switch = self.inputs.split_start \
            + (self.inputs.duration - self.inputs.split_start) * 0.6
        for index in range(count):
            record = self.registry.allocate(NetworkType.HOSTING)
            policy = SwitchingPolicy(
                before=SizeDependentPolicy(self.inputs.announced),
                after=AllAnnouncedPolicy(self.inputs.announced),
                switch_time=switch)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"inconsistent-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.PERIODIC,
                    period=float(self.rng.uniform(8 * HOUR, 20 * HOUR)),
                    jitter=1800.0),
                network_policy=policy,
                addr_strategy=LowByteStrategy(hosts=(1,)),
                protocol_profile=ProtocolProfile(icmpv6=0.65, tcp=0.35),
                rng=self.streams.fresh(f"scanner.inconsistent.{index}"),
                packets_per_session=uniform_packets(3, 8),
                truth_network_class="inconsistent",
                spread_prefix_sessions=True))

    def size_dependent_scanners(self) -> None:
        """Rare scanners probing proportionally to prefix size (§7.1)."""
        count = self.config.scaled(self.config.size_dependent)
        for index in range(count):
            record = self.registry.allocate(NetworkType.EDUCATION)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"sizedep-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.PERIODIC,
                    period=float(self.rng.uniform(1 * DAY, 3 * DAY)),
                    jitter=3600.0),
                network_policy=SizeDependentPolicy(self.inputs.announced),
                addr_strategy=StructuredSweepStrategy(),
                protocol_profile=ProtocolProfile(icmpv6=1.0),
                rng=self.streams.fresh(f"scanner.sizedep.{index}"),
                packets_per_session=uniform_packets(16, 48),
                truth_network_class="size-dependent"))

    def live_bgp_monitors(self) -> None:
        """The 18 sources reacting within 30 minutes of announcements."""
        count = self.config.scaled(self.config.live_monitors, minimum=2)
        for index in range(count):
            record = self.registry.allocate(NetworkType.HOSTING)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"bgpmon-{index}",
                as_record=record,
                temporal=TemporalBehavior(kind=TemporalKind.REACTIVE),
                network_policy=SingleAnnouncedPolicy(self.inputs.announced),
                addr_strategy=LowByteStrategy(hosts=(1, 2), anycast_share=0.15),
                protocol_profile=ProtocolProfile(icmpv6=0.7, tcp=0.3),
                rng=self.streams.fresh(f"scanner.bgpmon.{index}"),
                packets_per_session=uniform_packets(4, 12),
                reaction_delay=UniformDelay(120.0, 1700.0),
                truth_network_class="single-prefix"))

    def t2_dns_attractor(self) -> None:
        """Scanners drawn by the Umbrella-listed name; 50% of T2 scanners.

        Most rotate source addresses inside their /64 (3x as many /128 as
        /64 sources in T2, §6) and probe TCP 80/443 on the one address.
        """
        count = self.config.scaled(self.config.t2_dns_scanners)
        target = FixedTargetsStrategy((self.inputs.attractor_addr,))
        for index in range(count):
            record = self.registry.allocate(
                NetworkType.HOSTING if self.rng.random() < 0.5
                else NetworkType.ISP)
            draw = self.rng.random()
            if draw < 0.35:
                temporal = TemporalBehavior(kind=TemporalKind.ONE_OFF)
            elif draw < 0.75:
                temporal = TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(1 * WEEK, 4 * WEEK)))
            else:
                temporal = TemporalBehavior(
                    kind=TemporalKind.PERIODIC,
                    period=float(self.rng.uniform(2 * DAY, 7 * DAY)),
                    jitter=HOUR)
            rotation_draw = self.rng.random()
            if rotation_draw < 0.30:
                source_model = SourceModel.FIXED
                packets = uniform_packets(2, 6)
            elif rotation_draw < 0.55:
                source_model = SourceModel.PER_SESSION
                packets = uniform_packets(2, 6)
            else:
                # vertical scans rotating the source IID per destination
                # port: one /64 session shatters into several /128
                # sessions, driving the Fig. 4 session divergence
                source_model = SourceModel.PER_PORT
                packets = uniform_packets(5, 14)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"t2dns-{index}",
                as_record=record,
                temporal=temporal,
                network_policy=FixedPrefixPolicy((self.inputs.t2_prefix,)),
                addr_strategy=target,
                protocol_profile=ProtocolProfile(icmpv6=0.35, tcp=0.57,
                                                 udp=0.08),
                rng=self.streams.fresh(f"scanner.t2dns.{index}"),
                packets_per_session=packets,
                source_model=source_model,
                source_subnet_index=index,
                truth_network_class="single-prefix"))

    def t2_general(self) -> None:
        """Scanners exploring T2's /48 beyond the DNS name."""
        count = self.config.scaled(self.config.t2_general_scanners)
        for index in range(count):
            record = self.registry.allocate(
                NetworkType.ISP if self.rng.random() < 0.45
                else NetworkType.HOSTING)
            if self.rng.random() < 0.5:
                temporal = TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(3 * WEEK, 9 * WEEK)))
            else:
                temporal = TemporalBehavior(kind=TemporalKind.ONE_OFF)
            strategy = MixStrategy(parts=(
                (0.6, LowByteStrategy(anycast_share=0.06)),
                (0.25, TypeMixStrategy()),
                (0.15, RandomStrategy())))
            policy: object = FixedPrefixPolicy((self.inputs.t2_prefix,))
            if self.rng.random() < 0.5:
                # occasionally drifts to a newly announced T1 prefix in a
                # separate session -> different-day T1/T2 source overlap
                # (the Fig. 16b decline); few, widely spaced sessions make
                # a same-day coincidence unlikely
                policy = AlternatingPolicy(
                    policies=(FixedPrefixPolicy((self.inputs.t2_prefix,)),
                              SingleAnnouncedPolicy(self.inputs.announced)),
                    weights=(0.55, 0.45))
                temporal = TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(8 * WEEK, 18 * WEEK)))
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"t2gen-{index}",
                as_record=record,
                temporal=temporal,
                network_policy=policy,
                addr_strategy=strategy,
                protocol_profile=ProtocolProfile(icmpv6=0.45, tcp=0.45,
                                                 udp=0.10),
                rng=self.streams.fresh(f"scanner.t2gen.{index}"),
                packets_per_session=uniform_packets(3, 25),
                source_subnet_index=index,
                truth_network_class="single-prefix"))

    def t4_feedback(self) -> None:
        """Scanners returning to the reactive /48 (plus one campaign peak)."""
        count = self.config.scaled(self.config.t4_feedback_scanners)
        for index in range(count):
            record = self.registry.allocate(NetworkType.HOSTING)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"t4fb-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(4 * WEEK, 12 * WEEK))),
                network_policy=FixedPrefixPolicy((self.inputs.t4_prefix,)),
                addr_strategy=LowByteStrategy(),
                protocol_profile=ProtocolProfile(icmpv6=0.97, tcp=0.03),
                rng=self.streams.fresh(f"scanner.t4fb.{index}"),
                packets_per_session=uniform_packets(2, 10),
                truth_network_class="single-prefix"))
        # the single October campaign peak (§6, Fig. 9)
        campaign = self.config.scaled(self.config.t4_campaign_sources)
        campaign_as = self.registry.allocate(NetworkType.HOSTING,
                                             name="t4-campaign-hoster")
        campaign_start = 9 * WEEK
        for index in range(campaign):
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"t4campaign-{index}",
                as_record=campaign_as,
                temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF),
                network_policy=FixedPrefixPolicy((self.inputs.t4_prefix,)),
                addr_strategy=LowByteStrategy(hosts=(1, 2, 3)),
                protocol_profile=ProtocolProfile(icmpv6=1.0),
                rng=self.streams.fresh(f"scanner.t4campaign.{index}"),
                packets_per_session=uniform_packets(5, 15),
                source_subnet_index=index,
                active_start=campaign_start,
                active_end=campaign_start + 3 * DAY,
                truth_network_class="single-prefix"))

    def dynamic_tga(self) -> None:
        """Feedback-driven TGA scanners (6Tree-style, §2).

        Seeded with an address inside the reactive T4 (collected by a
        prior wide campaign — T4 answers every probe), they converge on
        T4 and explain why a reactive subnet attracts orders of
        magnitude more traffic than a silent one (§6).
        """
        from repro.scanners.tga import DynamicTGAScanner
        count = self.config.scaled(self.config.tga_scanners)
        covering = self.inputs.covering()
        tga_rng = self.streams.get("population.tga")
        for index in range(count):
            record = self.registry.allocate(
                NetworkType.EDUCATION if self.rng.random() < 0.5
                else NetworkType.HOSTING)
            seed = self.inputs.t4_prefix.network \
                | random_bits(tga_rng, 64)
            tool = SIX_SCAN if index % 2 == 0 else SIX_SEEKS
            self.add(DynamicTGAScanner(
                scanner_id=self.new_id(),
                name=f"tga-{index}",
                as_record=record,
                rng=self.streams.fresh(f"scanner.tga.{index}"),
                space=covering,
                period=float(self.rng.uniform(2 * DAY, 5 * DAY)),
                seeds=(seed,),
                probes_per_round=24,
                probes_per_node=4,
                tool=tool,
                payload_probability=0.6,
                truth_network_class="size-dependent"))

    def t3_strays(self) -> None:
        """The handful of sources that find the silent /48 at all."""
        count = self.config.scaled(self.config.t3_stray_sources)
        for index in range(count):
            record = self.registry.allocate(NetworkType.HOSTING)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"t3stray-{index}",
                as_record=record,
                temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF),
                network_policy=FixedPrefixPolicy((self.inputs.t3_prefix,)),
                addr_strategy=LowByteStrategy(),
                protocol_profile=ProtocolProfile(icmpv6=1.0),
                rng=self.streams.fresh(f"scanner.t3stray.{index}"),
                packets_per_session=uniform_packets(2, 8),
                truth_network_class="single-prefix"))

    def global_sweepers(self) -> None:
        """Sources observed at every telescope (§7.2, Fig. 16a).

        Each probes all four telescopes with T1/T2 absorbing ~98% of the
        packets. One special source scans all four with a Yarrp6 signature
        in early autumn and returns to T2 in November from the *same
        address* with a different signature.
        """
        count = self.config.scaled(self.config.global_sweepers, minimum=2)
        all_policy = CombinedPolicy((
            AllAnnouncedPolicy(self.inputs.announced),
            FixedPrefixPolicy((self.inputs.t2_prefix,), weights=(14.0,)),
            FixedPrefixPolicy((self.inputs.t3_prefix,), weights=(0.2,)),
            FixedPrefixPolicy((self.inputs.t4_prefix,), weights=(0.3,)),
        ))
        for index in range(count):
            hosted = self.rng.random() < 0.6
            record = self.registry.allocate(
                NetworkType.HOSTING if hosted else NetworkType.EDUCATION)
            self.add(Scanner(
                scanner_id=self.new_id(),
                name=f"sweeper-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(self.rng.uniform(3 * WEEK, 10 * WEEK))),
                network_policy=all_policy,
                addr_strategy=MixStrategy(parts=(
                    (0.6, LowByteStrategy()),
                    (0.4, RandomStrategy(structured_subnets=True)))),
                protocol_profile=ProtocolProfile(icmpv6=0.6, tcp=0.25,
                                                 udp=0.15),
                rng=self.streams.fresh(f"scanner.sweeper.{index}"),
                packets_per_session=uniform_packets(30, 120),
                truth_network_class="size-independent"))
        # the special shared-address pair
        shared_as = self.registry.allocate(NetworkType.HOSTING)
        shared_iid = 0x1DEA2B42C0FFEE01
        self.add(Scanner(
            scanner_id=self.new_id(),
            name="sweeper-yarrp-autumn",
            as_record=shared_as,
            temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF),
            network_policy=all_policy,
            addr_strategy=RandomStrategy(structured_subnets=True),
            protocol_profile=ProtocolProfile(icmpv6=0.3, udp=0.7),
            rng=self.streams.fresh("scanner.sweeper.special.a"),
            packets_per_session=uniform_packets(120, 260),
            tool=YARRP6, payload_probability=0.9,
            fixed_iid=shared_iid,
            active_start=8 * WEEK, active_end=10 * WEEK,
            truth_network_class="size-independent"))
        self.add(Scanner(
            scanner_id=self.new_id(),
            name="sweeper-yarrp-november",
            as_record=shared_as,
            temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF),
            network_policy=FixedPrefixPolicy((self.inputs.t2_prefix,)),
            addr_strategy=LowByteStrategy(),
            protocol_profile=ProtocolProfile(icmpv6=1.0),
            rng=self.streams.fresh("scanner.sweeper.special.b"),
            packets_per_session=uniform_packets(40, 90),
            fixed_iid=shared_iid,
            active_start=14 * WEEK, active_end=15 * WEEK,
            truth_network_class="single-prefix"))


def build_population(config: PopulationConfig, inputs: PopulationInputs,
                     registry: ASRegistry,
                     streams: RngStreams) -> list[Scanner]:
    """Create the complete calibrated scanner population."""
    if config.scale <= 0:
        raise ExperimentError(f"population scale must be > 0: {config.scale}")
    builder = _Builder(config=config, inputs=inputs, registry=registry,
                       streams=streams)
    atlas = build_atlas_fleet(
        schedule=inputs.schedule, registry=registry, streams=streams,
        sources_per_new_prefix=config.scaled(config.atlas_per_prefix),
        baseline_sources=config.scaled(config.atlas_baseline),
        first_scanner_id=1_000_000)
    builder.scanners.extend(atlas)
    builder.alpha_strike()
    builder.misc_oneoffs()
    builder.research_periodic()
    builder.intermittent()
    builder.inconsistent_scanners()
    builder.size_dependent_scanners()
    builder.live_bgp_monitors()
    builder.t2_dns_attractor()
    builder.t2_general()
    builder.t4_feedback()
    builder.dynamic_tga()
    builder.t3_strays()
    builder.global_sweepers()
    heavy = build_heavy_hitters(
        announced=inputs.announced, t2_prefix=inputs.t2_prefix,
        t4_prefix=inputs.t4_prefix, registry=registry, streams=streams,
        split_start=inputs.split_start, duration=inputs.duration,
        burst_packets=config.scaled(config.heavy_hitter_burst, minimum=200),
        first_scanner_id=2_000_000)
    builder.scanners.extend(heavy)
    return builder.scanners
