"""Scan-tool signatures.

§5.4/Table 7: probes carry tool-specific payloads, and sources often have
telling RDNS entries. Each :class:`ToolSignature` knows how to emit a
payload (a stable magic part plus a per-probe variable part) and an RDNS
template. The analysis pipeline re-identifies tools by clustering payload
bytes and matching the magic parts — it never reads these objects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ToolSignature:
    """Fingerprintable identity of a public scan tool."""

    name: str
    magic: bytes
    variable_len: int = 8
    rdns_template: str = ""
    reference: str = ""

    def payload(self, rng: np.random.Generator, seq: int = 0) -> bytes:
        """Emit one probe payload: magic + sequence + random tail."""
        tail = bytes(int(b) for b in rng.integers(0, 256,
                                                  size=self.variable_len))
        return self.magic + struct.pack(">I", seq & 0xFFFFFFFF) + tail

    def payload_batch(self, rng: np.random.Generator, first_seq: int,
                      count: int) -> list[bytes]:
        """``count`` payloads with consecutive sequence numbers.

        One RNG draw covers every tail, so a whole session's payloads cost
        a single ``integers`` call instead of one per probe.
        """
        tails = rng.integers(0, 256, size=(count, self.variable_len),
                             dtype=np.uint8)
        magic = self.magic
        return [magic + struct.pack(">I", (first_seq + i) & 0xFFFFFFFF)
                + tails[i].tobytes() for i in range(count)]

    def matches(self, payload: bytes) -> bool:
        """True if ``payload`` starts with this tool's magic bytes."""
        return payload.startswith(self.magic)

    def rdns_for(self, index: int) -> str:
        """Instantiate the RDNS template for source number ``index``."""
        if not self.rdns_template:
            return ""
        return self.rdns_template.format(index=index)


#: The eight public tools of Table 7 plus the 6Sense campaign (a heavy
#: hitter identified by RDNS, §4.2). Magic bytes are synthetic but stable.
RIPE_ATLAS = ToolSignature(
    name="RIPEAtlasProbe", magic=b"RA6P\x01", variable_len=4,
    rdns_template="probe-{index}.atlas.ripe.net",
    reference="https://atlas.ripe.net/about/")
YARRP6 = ToolSignature(
    name="Yarrp6", magic=b"yrp6\xbe\xef", variable_len=6,
    rdns_template="",
    reference="https://github.com/cmand/yarrp")
TRACEROUTE = ToolSignature(
    name="Traceroute", magic=b"SUPERMAN", variable_len=4,
    rdns_template="",
    reference="classic UDP traceroute probe filler")
HTRACE6 = ToolSignature(
    name="Htrace6", magic=b"htr6\x00\x01", variable_len=6,
    reference="https://github.com/hbn1987/6Scan/tree/master/Htrace6")
SIX_SEEKS = ToolSignature(
    name="6Seeks", magic=b"6SKS", variable_len=8,
    reference="https://github.com/6Seeks/6Seeks")
SIX_SCAN = ToolSignature(
    name="6Scan", magic=b"6SCN\x02", variable_len=8,
    reference="https://github.com/hbn1987/6Scan")
CAIDA_ARK = ToolSignature(
    name="CAIDA Ark", magic=b"ark\x00ip6", variable_len=4,
    rdns_template="ark-{index}.caida.org",
    reference="https://www.caida.org/projects/ark/")
SIX_SENSE = ToolSignature(
    name="6Sense", magic=b"6SNS\x01\x02", variable_len=8,
    rdns_template="scan-{index}.6sense-research.net",
    reference="USENIX Security'24 6Sense")
ALPHA_STRIKE = ToolSignature(
    name="AlphaStrike", magic=b"ASL-scan", variable_len=6,
    rdns_template="research-scanner-{index}.alphastrike.io",
    reference="commercial research scanning")

#: All signatures the fingerprinting stage knows, ordered for deterministic
#: matching (Table 7 order).
TOOL_SIGNATURES: tuple[ToolSignature, ...] = (
    RIPE_ATLAS, YARRP6, TRACEROUTE, HTRACE6, SIX_SEEKS, SIX_SCAN,
    CAIDA_ARK, SIX_SENSE, ALPHA_STRIKE,
)


def identify_payload(payload: bytes) -> ToolSignature | None:
    """Match a payload against all known tool signatures."""
    for signature in TOOL_SIGNATURES:
        if signature.matches(payload):
            return signature
    return None
