"""Registry of scanner-hosting autonomous systems.

Assigns each scanner AS a network type (Table 8 categories), a country, a
source /48, and an RDNS domain. Analyses resolve source addresses back to
these records the way the paper resolves sources via IP-to-AS and RDNS
lookups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.net.prefix import Prefix


class NetworkType(enum.Enum):
    """Network categories of scan sources (Table 8)."""

    HOSTING = "Hosting"
    ISP = "ISP"
    EDUCATION = "Education"
    BUSINESS = "Business"
    GOVERNMENT = "Government"
    UNKNOWN = "Unknown"


#: Countries weighted roughly by scanner-origin popularity; the paper saw
#: sources from 127 countries with a strong head.
_COUNTRIES = ("US", "CN", "DE", "NL", "RU", "GB", "FR", "JP", "BR", "IN",
              "CA", "AU", "SE", "CH", "PL", "IT", "ES", "KR", "SG", "ZA")
_COUNTRY_WEIGHTS = np.array(
    [0.22, 0.14, 0.12, 0.08, 0.06, 0.05, 0.05, 0.04, 0.04, 0.04,
     0.03, 0.02, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01, 0.01])

#: Base of the simulated scanner source-address space: each scanner AS gets
#: a /48 carved out of 2a0e::/16 by ASN.
_SOURCE_SPACE_BASE = 0x2A0E << 112


@dataclass(frozen=True, slots=True)
class ASRecord:
    """Static facts about one scanner-hosting AS."""

    asn: int
    network_type: NetworkType
    country: str
    name: str
    source_prefix: Prefix
    rdns_domain: str = ""


def source_prefix_for_asn(asn: int) -> Prefix:
    """Deterministic /48 source prefix of an AS."""
    if not 0 < asn < (1 << 32):
        raise ExperimentError(f"invalid ASN {asn}")
    return Prefix(_SOURCE_SPACE_BASE | (asn << 80), 48)


class ASRegistry:
    """Allocates and resolves scanner-hosting ASes."""

    #: default mix over network types, matching Table 8's scanner shares.
    DEFAULT_TYPE_MIX = {
        NetworkType.HOSTING: 0.42,
        NetworkType.ISP: 0.40,
        NetworkType.EDUCATION: 0.08,
        NetworkType.BUSINESS: 0.07,
        NetworkType.GOVERNMENT: 0.01,
        NetworkType.UNKNOWN: 0.02,
    }

    def __init__(self, first_asn: int = 200_000) -> None:
        self._records: dict[int, ASRecord] = {}
        self._next_asn = first_asn
        self._by_prefix: list[tuple[Prefix, int]] = []

    def __len__(self) -> int:
        return len(self._records)

    def allocate(self, network_type: NetworkType, country: str = "",
                 name: str = "", rdns_domain: str = "") -> ASRecord:
        """Create one AS of the given type."""
        asn = self._next_asn
        self._next_asn += 1
        prefix = source_prefix_for_asn(asn)
        if not name:
            name = f"{network_type.value.lower()}-as{asn}"
        record = ASRecord(asn=asn, network_type=network_type,
                          country=country or "US", name=name,
                          source_prefix=prefix, rdns_domain=rdns_domain)
        self._records[asn] = record
        self._by_prefix.append((prefix, asn))
        return record

    def allocate_many(self, count: int, rng: np.random.Generator,
                      type_mix: dict[NetworkType, float] | None = None) \
            -> list[ASRecord]:
        """Allocate ``count`` ASes sampled from ``type_mix`` and countries."""
        if count < 0:
            raise ExperimentError(f"negative AS count: {count}")
        mix = type_mix or self.DEFAULT_TYPE_MIX
        types = list(mix)
        weights = np.array([mix[t] for t in types], dtype=float)
        weights = weights / weights.sum()
        countries = rng.choice(len(_COUNTRIES), size=count,
                               p=_COUNTRY_WEIGHTS / _COUNTRY_WEIGHTS.sum())
        chosen = rng.choice(len(types), size=count, p=weights)
        return [self.allocate(types[int(t)], country=_COUNTRIES[int(c)])
                for t, c in zip(chosen, countries)]

    @classmethod
    def restore(cls, records: list[ASRecord]) -> "ASRegistry":
        """Rebuild a registry from previously serialized records."""
        registry = cls()
        for record in records:
            if record.asn in registry._records:
                raise ExperimentError(f"duplicate AS{record.asn}")
            registry._records[record.asn] = record
            registry._by_prefix.append((record.source_prefix, record.asn))
            registry._next_asn = max(registry._next_asn, record.asn + 1)
        return registry

    def get(self, asn: int) -> ASRecord:
        try:
            return self._records[asn]
        except KeyError:
            raise ExperimentError(f"unknown scanner AS{asn}") from None

    def lookup_source(self, addr: int) -> ASRecord | None:
        """Resolve a source address to its AS record (IP-to-AS lookup).

        Source prefixes encode the ASN deterministically, so this is O(1).
        """
        if (addr >> 112) != (_SOURCE_SPACE_BASE >> 112):
            return None
        asn = (addr >> 80) & 0xFFFFFFFF
        return self._records.get(asn)

    def network_type_of(self, addr: int) -> NetworkType:
        record = self.lookup_source(addr)
        return record.network_type if record else NetworkType.UNKNOWN

    def records(self) -> list[ASRecord]:
        return [self._records[asn] for asn in sorted(self._records)]

    def asns(self) -> list[int]:
        return sorted(self._records)

    def countries(self) -> set[str]:
        return {r.country for r in self._records.values()}
