"""Dynamic target-generation-algorithm (TGA) scanner.

§2 of the paper: "dynamic TGAs adjust their training set by evaluating
the activity of generated addresses immediately through active scanning"
(6Tree, 6Hit, 6Scan, DET). This agent implements that feedback loop in
the spirit of 6Tree: it maintains a tree of candidate prefixes over a
search space, probes each candidate, descends into prefixes that answer,
and abandons silent ones.

Against the paper's deployment the dynamic TGA explains *why* the
reactive T4 attracts orders of magnitude more traffic than the silent T3
in the same covering /29: responses breed probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix
from repro.scanners.base import (ScannerContext, SourceModel,
                                 TemporalBehavior, TemporalKind)
from repro.scanners.registry import ASRecord
from repro.scanners.tools import ToolSignature
from repro.telescope.packet import Packet, Protocol


@dataclass
class CandidateNode:
    """One prefix in the TGA's search tree."""

    prefix: Prefix
    score: float = 0.0
    probes: int = 0
    hits: int = 0

    def reward(self) -> None:
        self.hits += 1
        self.score = self.score * 0.5 + 1.0

    def penalize(self) -> None:
        self.score *= 0.5


@dataclass
class DynamicTGAScanner:
    """A 6Tree-style feedback-driven scanner agent.

    Compatible with the driver's agent protocol (``start(ctx)``); probes
    are emitted through the same :class:`ScannerContext` as every other
    scanner and therefore land in whatever telescope owns the target.
    """

    scanner_id: int
    name: str
    as_record: ASRecord
    rng: np.random.Generator
    space: Prefix
    period: float
    #: known-active addresses that bootstrap the search tree — dynamic
    #: TGAs are seeded from hitlists/previous campaigns (§2); without
    #: seeds, blind descent cannot find a /48 inside a /29 (2^-19 per
    #: random probe).
    seeds: tuple[int, ...] = ()
    seed_prefix_len: int = 48
    probes_per_round: int = 64
    probes_per_node: int = 4
    max_prefix_len: int = 64
    exploration: float = 0.25
    tool: ToolSignature | None = None
    payload_probability: float = 0.0
    active_start: float | None = None
    active_end: float | None = None
    rdns_name: str = ""
    source_model: SourceModel = SourceModel.FIXED
    truth_network_class: str = "size-dependent"
    truth_address_class: str = "random"
    #: packets with a gap below the session timeout form one session.
    mean_packet_gap: float = 0.5
    sessions_fired: int = field(default=0, init=False)
    candidates: list[CandidateNode] = field(default_factory=list,
                                            init=False)
    _fixed_iid: int = field(default=0, init=False)
    _seq: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ExperimentError(f"{self.name}: TGA needs a period")
        if self.probes_per_round < 1 or self.probes_per_node < 1:
            raise ExperimentError(f"{self.name}: invalid probe budget")
        if self.max_prefix_len <= self.space.length:
            raise ExperimentError(f"{self.name}: max depth above space")
        self._fixed_iid = random_bits(self.rng, 64) or 1
        # the first split of the search space enters unconditionally
        low, high = self.space.split()
        self.candidates = [CandidateNode(low), CandidateNode(high)]
        # seed addresses add their covering /seed_prefix_len candidates
        # with a small prior score so they are probed (and verified) first
        seen = {node.prefix for node in self.candidates}
        for seed in self.seeds:
            if not self.space.contains_address(seed):
                raise ExperimentError(
                    f"{self.name}: seed outside search space")
            length = max(self.space.length + 1,
                         min(self.seed_prefix_len, self.max_prefix_len))
            mask = ((1 << length) - 1) << (128 - length)
            candidate = Prefix(seed & mask, length)
            if candidate not in seen:
                seen.add(candidate)
                self.candidates.append(
                    CandidateNode(candidate, score=0.5))

    # -- agent protocol ----------------------------------------------------

    @property
    def temporal(self) -> TemporalBehavior:
        """Ground-truth schedule (rounds fire periodically)."""
        return TemporalBehavior(kind=TemporalKind.PERIODIC,
                                period=self.period)

    def source_address(self, port: int = 0, session_nonce: int = 0) -> int:
        return self.as_record.source_prefix.subnet(64, 0).network \
            | self._fixed_iid

    def validate(self) -> None:
        if self.mean_packet_gap >= 3600.0:
            raise ExperimentError(f"{self.name}: gap splits sessions")

    def start(self, ctx: ScannerContext) -> None:
        start = ctx.window_start if self.active_start is None \
            else max(ctx.window_start, self.active_start)
        end = ctx.window_end if self.active_end is None \
            else min(ctx.window_end, self.active_end)
        t = start + float(self.rng.uniform(0.0, self.period))
        while t < end:
            ctx.simulator.schedule_at(
                max(t, ctx.simulator.now),
                partial(self.fire, ctx, t),
                label=f"tga:{self.name}")
            t += self.period

    # -- the feedback loop -----------------------------------------------------

    def _select_nodes(self) -> list[CandidateNode]:
        """Exploitation of scored nodes plus epsilon-greedy exploration."""
        budget = max(1, self.probes_per_round // self.probes_per_node)
        ranked = sorted(self.candidates, key=lambda n: -n.score)
        selected: list[CandidateNode] = []
        for node in ranked:
            if len(selected) >= budget:
                break
            if node.score > 0 or self.rng.random() < self.exploration \
                    or not selected:
                selected.append(node)
        index = 0
        while len(selected) < budget and index < len(ranked):
            if ranked[index] not in selected:
                selected.append(ranked[index])
            index += 1
        return selected

    def _probe_target(self, node: CandidateNode) -> int:
        host_bits = 128 - node.prefix.length
        if self.rng.random() < 0.5:
            # low-byte probe of a random /64 inside the candidate
            span = max(0, min(64, node.prefix.length + 32) -
                       node.prefix.length)
            base = node.prefix.network | (
                random_bits(self.rng, span)
                << (128 - node.prefix.length - span)
                if span else 0)
            return base | int(self.rng.integers(1, 16))
        return node.prefix.network | random_bits(self.rng, host_bits)

    def fire(self, ctx: ScannerContext, when: float) -> int:
        """One probing round: probe candidates, descend into responders."""
        self.sessions_fired += 1
        emitted = 0
        t = when
        for node in self._select_nodes():
            responded = False
            for _ in range(self.probes_per_node):
                dst = self._probe_target(node)
                payload = None
                if self.tool is not None \
                        and self.rng.random() < self.payload_probability:
                    self._seq += 1
                    payload = self.tool.payload(self.rng, self._seq)
                answered = ctx.inject(Packet(
                    time=t, src=self.source_address(), dst=dst,
                    protocol=Protocol.ICMPV6, payload=payload,
                    src_asn=self.as_record.asn,
                    scanner_id=self.scanner_id))
                responded = responded or answered
                emitted += 1
                node.probes += 1
                t += float(self.rng.exponential(self.mean_packet_gap))
            if responded:
                node.reward()
                self._descend(node)
            else:
                node.penalize()
        self._prune()
        return emitted

    def _descend(self, node: CandidateNode) -> None:
        """Split a responsive candidate into its two more-specifics."""
        if node.prefix.length >= self.max_prefix_len:
            return
        existing = {n.prefix for n in self.candidates}
        for child in node.prefix.split():
            if child not in existing:
                self.candidates.append(
                    CandidateNode(child, score=node.score))

    def _prune(self, max_candidates: int = 64) -> None:
        """Drop hopeless candidates, keep the tree bounded."""
        if len(self.candidates) <= max_candidates:
            return
        self.candidates.sort(key=lambda n: (-n.score, n.prefix.length))
        self.candidates = self.candidates[:max_candidates]

    # -- introspection ------------------------------------------------------------

    def focus_prefixes(self, top: int = 3) -> list[Prefix]:
        """The currently highest-scored candidate prefixes."""
        ranked = sorted(self.candidates, key=lambda n: -n.score)
        return [n.prefix for n in ranked[:top]]

    def hit_rate(self) -> float:
        probes = sum(n.probes for n in self.candidates)
        hits = sum(n.hits for n in self.candidates)
        return hits / probes if probes else 0.0
