"""Scanner agent framework.

A :class:`Scanner` is one localizable scan source (paper §3.3): it owns a
/64 inside its AS's source prefix, a temporal behavior (one-off, periodic,
or intermittent — the ground truth for §5.1), a network-selection policy
(§5.2), an address-selection strategy (§5.3), a protocol/port profile, and
optionally a tool signature whose payload its probes carry (§5.4).

Scanners interact with the world only through a :class:`ScannerContext`,
which routes emitted packets into whichever telescope owns the destination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.bgp.collector import CollectorEntry, RouteCollector
from repro.bgp.messages import UpdateKind
from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRecord
from repro.scanners.tools import ToolSignature
from repro.sim.clock import HOUR
from repro.sim.events import Simulator
from repro.telescope.packet import Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.scanners.netselect import NetworkPolicy
    from repro.scanners.strategies import AddressStrategy, ProtocolProfile


class TemporalKind(enum.Enum):
    """Ground-truth temporal behavior (§5.1)."""

    ONE_OFF = "one-off"
    PERIODIC = "periodic"
    INTERMITTENT = "intermittent"
    #: no internal schedule; sessions only fire on BGP feed reactions.
    REACTIVE = "reactive"


@dataclass(slots=True)
class TemporalBehavior:
    """When a scanner fires its sessions.

    Attributes:
        kind: the taxonomy class the schedule should realize.
        period: inter-session period for periodic scanners (seconds).
        mean_gap: mean inter-session gap for intermittent scanners.
        jitter: uniform jitter applied to periodic firing times.
        first_at: offset of the first session inside the active window;
            ``None`` draws it uniformly at random.
    """

    kind: TemporalKind
    period: float = 0.0
    mean_gap: float = 0.0
    jitter: float = 0.0
    first_at: float | None = None

    def session_times(self, window_start: float, window_end: float,
                      rng: np.random.Generator) -> list[float]:
        """All firing times inside [window_start, window_end)."""
        if window_end <= window_start:
            return []
        if self.kind is TemporalKind.REACTIVE:
            return []
        span = window_end - window_start
        if self.first_at is not None:
            first = window_start + self.first_at
        elif self.kind is TemporalKind.PERIODIC and self.period > 0:
            # a recurring scanner's first visit arrives within one period
            first = window_start + float(rng.uniform(0.0, self.period))
        elif self.kind is TemporalKind.INTERMITTENT and self.mean_gap > 0:
            # renewal process: the first arrival is exponentially
            # distributed like every later gap
            first = window_start + float(rng.exponential(self.mean_gap))
        else:
            first = window_start + float(rng.uniform(0.0, span))
        if self.kind is TemporalKind.ONE_OFF:
            return [first] if first < window_end else []
        if self.kind is TemporalKind.PERIODIC:
            if self.period <= 0:
                raise ExperimentError("periodic scanner needs a period")
            times = []
            t = first
            while t < window_end:
                jitter = float(rng.uniform(-self.jitter, self.jitter)) \
                    if self.jitter else 0.0
                times.append(min(max(t + jitter, window_start),
                                 window_end - 1.0))
                t += self.period
            return times
        if self.mean_gap <= 0:
            raise ExperimentError("intermittent scanner needs a mean gap")
        times = []
        t = first
        while t < window_end:
            times.append(t)
            t += float(rng.exponential(self.mean_gap))
        return times


class SourceModel(enum.Enum):
    """How a scanner uses source addresses inside its /64 (§6, T2)."""

    FIXED = "fixed"              # one stable /128
    PER_SESSION = "per-session"  # fresh IID each session
    PER_PORT = "per-port"        # fresh IID per destination port (vertical)


@dataclass
class ScannerContext:
    """Interface between scanner agents and the simulated world."""

    simulator: Simulator
    route: Callable[[int, float], object]
    collector: RouteCollector | None = None
    window_start: float = 0.0
    window_end: float = 0.0
    packets_emitted: int = 0
    packets_unrouted: int = 0

    def inject(self, packet: Packet) -> bool:
        """Deliver one packet; returns True if the target responded."""
        self.packets_emitted += 1
        telescope = self.route(packet.dst, packet.time)
        if telescope is None:
            self.packets_unrouted += 1
            return False
        return telescope.deliver(packet)


@dataclass
class Scanner:
    """One scan source with full generative behavior."""

    scanner_id: int
    name: str
    as_record: ASRecord
    temporal: TemporalBehavior
    network_policy: "NetworkPolicy"
    addr_strategy: "AddressStrategy"
    protocol_profile: "ProtocolProfile"
    rng: np.random.Generator
    packets_per_session: Callable[[np.random.Generator], int]
    tool: ToolSignature | None = None
    payload_probability: float = 0.0
    #: reverse-DNS name registered for the scanner's fixed source address.
    rdns_name: str = ""
    #: ground-truth labels for validation (never read by the analyses).
    truth_network_class: str = ""
    truth_address_class: str = ""
    source_model: SourceModel = SourceModel.FIXED
    source_subnet_index: int = 0
    #: mean intra-session packet gap (seconds); must stay < 1h so a burst
    #: remains one session under the paper's timeout.
    mean_packet_gap: float = 0.25
    #: when True, each selected prefix is probed as its own scan job,
    #: separated by more than the session timeout — one firing then
    #: produces one session *per announced prefix* (the mechanism behind
    #: the paper's +555% session growth during the split period).
    spread_prefix_sessions: bool = False
    #: when set, the scanner reacts to new BGP announcements: it fires an
    #: extra session ``reaction_delay()`` seconds after each feed entry.
    reaction_delay: Callable[[np.random.Generator], float] | None = None
    #: restrict activity to [active_start, active_end); None = full window.
    active_start: float | None = None
    active_end: float | None = None
    #: pin the fixed-source IID (lets two campaigns share one address, §7.2).
    fixed_iid: int | None = None
    sessions_fired: int = field(default=0, init=False)
    _fixed_iid: int = field(default=0, init=False)
    _seq: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.fixed_iid is not None:
            self._fixed_iid = self.fixed_iid or 1
        else:
            self._fixed_iid = random_bits(self.rng, 64) or 1

    # -- source addresses ---------------------------------------------------

    @property
    def source_subnet(self) -> Prefix:
        """The scanner's /64 inside its AS source prefix."""
        return self.as_record.source_prefix.subnet(
            64, self.source_subnet_index % (1 << 16))

    #: rotating scanners cycle through a bounded pool of interface IDs —
    #: the paper's T2 saw ~3x as many /128 as /64 sources, not unbounded
    #: fresh addresses per session.
    ROTATION_POOL = 4

    def source_address(self, port: int = 0, session_nonce: int = 0) -> int:
        """Current source address under the scanner's rotation model."""
        subnet = self.source_subnet
        if self.source_model is SourceModel.FIXED:
            iid = self._fixed_iid
        elif self.source_model is SourceModel.PER_SESSION:
            slot = session_nonce % self.ROTATION_POOL
            iid = (self._fixed_iid ^ (slot * 0x9E3779B97F4A7C15)) \
                & ((1 << 64) - 1) or 1
        else:
            # vertical scans rotate per destination port; the same port
            # maps to the same address across sessions
            iid = (self._fixed_iid ^ (port * 0x9E3779B97F4A7C15)) \
                & ((1 << 64) - 1) or 1
        return subnet.network | iid

    # -- scheduling -----------------------------------------------------------

    def window(self, ctx: ScannerContext) -> tuple[float, float]:
        start = ctx.window_start if self.active_start is None \
            else max(ctx.window_start, self.active_start)
        end = ctx.window_end if self.active_end is None \
            else min(ctx.window_end, self.active_end)
        return start, end

    def start(self, ctx: ScannerContext) -> None:
        """Schedule all internally triggered sessions; hook BGP reactions."""
        start, end = self.window(ctx)
        for t in self.temporal.session_times(start, end, self.rng):
            ctx.simulator.schedule_at(
                max(t, ctx.simulator.now), lambda t=t: self.fire(ctx, t),
                label=f"scan:{self.name}")
        if self.reaction_delay is not None:
            if ctx.collector is None:
                raise ExperimentError(
                    f"reactive scanner {self.name} needs a collector feed")
            ctx.collector.subscribe(
                lambda time, entry: self._on_feed(ctx, time, entry))

    def _on_feed(self, ctx: ScannerContext, time: float,
                 entry: CollectorEntry) -> None:
        if entry.kind is not UpdateKind.ANNOUNCE:
            return
        start, end = self.window(ctx)
        assert self.reaction_delay is not None
        fire_at = time + float(self.reaction_delay(self.rng))
        if start <= fire_at < end:
            ctx.simulator.schedule_at(
                max(fire_at, ctx.simulator.now),
                lambda: self.fire(ctx, fire_at, trigger=entry.prefix),
                label=f"scan-react:{self.name}")

    # -- session emission --------------------------------------------------------

    def fire(self, ctx: ScannerContext, when: float,
             trigger: Prefix | None = None) -> int:
        """Emit one scan session starting at ``when``; returns packet count."""
        selections = self.network_policy.select(ctx, self.rng, trigger)
        if not selections:
            return 0
        total = max(1, int(self.packets_per_session(self.rng)))
        self.sessions_fired += 1
        nonce = self.sessions_fired
        weight_sum = sum(w for _, w in selections)
        emitted = 0
        t = when
        for prefix, weight in selections:
            count = max(1, round(total * weight / weight_sum))
            targets = self.addr_strategy.generate(prefix, count, self.rng)
            for dst in targets:
                protocol, port = self.protocol_profile.sample(self.rng)
                payload = self._payload()
                src = self.source_address(port=port, session_nonce=nonce)
                ctx.inject(Packet(
                    time=t, src=src, dst=dst, protocol=protocol,
                    dst_port=port, payload=payload,
                    src_asn=self.as_record.asn,
                    scanner_id=self.scanner_id))
                emitted += 1
                t += float(self.rng.exponential(self.mean_packet_gap))
            if self.spread_prefix_sessions:
                # next prefix becomes its own session (> 1h timeout gap)
                t += float(self.rng.uniform(1.25 * HOUR, 2.5 * HOUR))
        return emitted

    def _payload(self) -> bytes | None:
        if self.tool is None or self.payload_probability <= 0:
            return None
        if self.rng.random() >= self.payload_probability:
            return None
        self._seq += 1
        return self.tool.payload(self.rng, self._seq)

    def validate(self) -> None:
        """Sanity-check the configuration against session semantics."""
        if self.mean_packet_gap >= HOUR:
            raise ExperimentError(
                f"{self.name}: intra-session gap {self.mean_packet_gap}s "
                "would split sessions under the 1h timeout")
