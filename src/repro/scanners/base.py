"""Scanner agent framework.

A :class:`Scanner` is one localizable scan source (paper §3.3): it owns a
/64 inside its AS's source prefix, a temporal behavior (one-off, periodic,
or intermittent — the ground truth for §5.1), a network-selection policy
(§5.2), an address-selection strategy (§5.3), a protocol/port profile, and
optionally a tool signature whose payload its probes carry (§5.4).

Scanners interact with the world only through a :class:`ScannerContext`,
which routes emitted packets into whichever telescope owns the destination.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.bgp.collector import CollectorEntry, RouteCollector
from repro.bgp.messages import UpdateKind
from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRecord
from repro.scanners.tools import ToolSignature
from repro.sim.clock import HOUR
from repro.sim.events import Simulator
from repro.telescope.packet import Packet, Protocol

_MASK64 = (1 << 64) - 1
#: 64-bit golden-ratio multiplier of the source-IID rotation hash.
_GOLDEN = 0x9E3779B97F4A7C15
#: sample one batch-emission span out of this many sessions, so traces
#: show the kernel without per-session span overhead distorting it.
_SPAN_SAMPLE = 256


def batch_emit_default() -> bool:
    """Whether sessions use the batched kernel (module env override).

    ``REPRO_LEGACY_EMIT=1`` selects the per-packet oracle path, mirroring
    the columnar engine's ``REPRO_LEGACY_OBJECTS`` switch.
    """
    return os.environ.get("REPRO_LEGACY_EMIT", "0") in ("", "0")

if TYPE_CHECKING:  # pragma: no cover
    from repro.scanners.netselect import NetworkPolicy
    from repro.scanners.strategies import AddressStrategy, ProtocolProfile


@dataclass(frozen=True, slots=True)
class ConstPackets:
    """Session-size sampler returning a constant count.

    Scanner callbacks and samplers must be picklable (no lambdas) so a
    live experiment can be checkpointed mid-run; these small callable
    dataclasses replace the obvious closures.
    """

    n: int

    def __call__(self, rng: np.random.Generator) -> int:
        return self.n


@dataclass(frozen=True, slots=True)
class UniformPackets:
    """Session-size sampler: uniform integer in [low, high]."""

    low: int
    high: int

    def __call__(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))


@dataclass(frozen=True, slots=True)
class UniformDelay:
    """Reaction-delay sampler: uniform float in [low, high] seconds."""

    low: float
    high: float

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class TemporalKind(enum.Enum):
    """Ground-truth temporal behavior (§5.1)."""

    ONE_OFF = "one-off"
    PERIODIC = "periodic"
    INTERMITTENT = "intermittent"
    #: no internal schedule; sessions only fire on BGP feed reactions.
    REACTIVE = "reactive"


@dataclass(slots=True)
class TemporalBehavior:
    """When a scanner fires its sessions.

    Attributes:
        kind: the taxonomy class the schedule should realize.
        period: inter-session period for periodic scanners (seconds).
        mean_gap: mean inter-session gap for intermittent scanners.
        jitter: uniform jitter applied to periodic firing times.
        first_at: offset of the first session inside the active window;
            ``None`` draws it uniformly at random.
    """

    kind: TemporalKind
    period: float = 0.0
    mean_gap: float = 0.0
    jitter: float = 0.0
    first_at: float | None = None

    def session_times(self, window_start: float, window_end: float,
                      rng: np.random.Generator) -> list[float]:
        """All firing times inside [window_start, window_end)."""
        if window_end <= window_start:
            return []
        if self.kind is TemporalKind.REACTIVE:
            return []
        span = window_end - window_start
        if self.first_at is not None:
            first = window_start + self.first_at
        elif self.kind is TemporalKind.PERIODIC and self.period > 0:
            # a recurring scanner's first visit arrives within one period
            first = window_start + float(rng.uniform(0.0, self.period))
        elif self.kind is TemporalKind.INTERMITTENT and self.mean_gap > 0:
            # renewal process: the first arrival is exponentially
            # distributed like every later gap
            first = window_start + float(rng.exponential(self.mean_gap))
        else:
            first = window_start + float(rng.uniform(0.0, span))
        if self.kind is TemporalKind.ONE_OFF:
            return [first] if first < window_end else []
        if self.kind is TemporalKind.PERIODIC:
            if self.period <= 0:
                raise ExperimentError("periodic scanner needs a period")
            times = []
            t = first
            while t < window_end:
                jitter = float(rng.uniform(-self.jitter, self.jitter)) \
                    if self.jitter else 0.0
                times.append(min(max(t + jitter, window_start),
                                 window_end - 1.0))
                t += self.period
            return times
        if self.mean_gap <= 0:
            raise ExperimentError("intermittent scanner needs a mean gap")
        times = []
        t = first
        while t < window_end:
            times.append(t)
            t += float(rng.exponential(self.mean_gap))
        return times


class SourceModel(enum.Enum):
    """How a scanner uses source addresses inside its /64 (§6, T2)."""

    FIXED = "fixed"              # one stable /128
    PER_SESSION = "per-session"  # fresh IID each session
    PER_PORT = "per-port"        # fresh IID per destination port (vertical)


@dataclass(frozen=True, slots=True)
class _PendingSession:
    """One fired-but-not-yet-materialized scan session (batch mode).

    Captures exactly the draws that must happen at firing time — the
    network selection (announcement-dependent), the session size, and the
    rotation nonce — so the packet columns can materialize later without
    changing any time-sensitive behavior.
    """

    when: float
    prefixes: tuple
    counts: tuple
    nonce: int


@dataclass
class ScannerContext:
    """Interface between scanner agents and the simulated world."""

    simulator: Simulator
    route: Callable[[int, float], object]
    collector: RouteCollector | None = None
    window_start: float = 0.0
    window_end: float = 0.0
    packets_emitted: int = 0
    packets_unrouted: int = 0
    #: vectorized routing: ``(dst_hi, dst_lo, time) -> (slots, telescopes)``
    #: with slot ``-1`` meaning unrouted; ``None`` falls back to per-row
    #: :attr:`route` calls.
    route_batch: Callable | None = None
    #: sessions emit through :meth:`inject_batch` when True.
    batch_emit: bool = field(default_factory=batch_emit_default)
    #: when True, batch sessions accumulate per scanner and materialize in
    #: one cross-session kernel call each at :meth:`flush_batches` —
    #: amortizing the per-batch NumPy overhead over thousands of rows.
    defer_batch: bool = False
    _pending: dict = field(default_factory=dict, repr=False)

    def flush_batches(self) -> int:
        """Materialize every deferred session; returns rows emitted.

        Each scanner's sessions flush in firing order through its own
        private RNG, so a fixed seed always yields the same corpus. The
        cross-session draw order differs from flushing after every fire
        (protocol/gap/payload draws cover the whole stream at once), so
        deferred and immediate batch runs agree in distribution, not
        packet-for-packet — same contract as batch vs legacy.

        Scanners flush in ``scanner_id`` order, not first-fire order:
        each flushes through its own private RNG, so the order is free —
        and a canonical order makes the capture row layout independent
        of event interleaving, which is what lets a sharded build merge
        worker segments back into the exact unsharded byte layout
        (DESIGN §8).
        """
        pending, self._pending = self._pending, {}
        total = 0
        for scanner in sorted(pending, key=lambda s: s.scanner_id):
            sessions = pending[scanner]
            with obs.span("scanner.batch_emit", scanner=scanner.name,
                          sessions=len(sessions)):
                total += scanner._flush_sessions(self, sessions)
        return total

    def inject(self, packet: Packet) -> bool:
        """Deliver one packet; returns True if the target responded."""
        self.packets_emitted += 1
        telescope = self.route(packet.dst, packet.time)
        if telescope is None:
            self.packets_unrouted += 1
            return False
        return telescope.deliver(packet)

    def inject_batch(self, time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                     dst_port, src_asn, scanner_id,
                     payload_id: np.ndarray | None = None,
                     payloads: list[bytes] | None = None) -> int:
        """Deliver one session's packet train as columns.

        Routes every row by the table in force at its own timestamp and
        hands each telescope its slice in one call. Constant columns
        (``src_hi``, ``src_lo``, ``src_asn``, ``scanner_id``) may come in
        as scalars and are broadcast here. Returns the number of rows
        emitted (routed or not), matching :meth:`inject` accounting.
        """
        n = len(time)
        if n == 0:
            return 0
        src_hi = _as_column(src_hi, n)
        src_lo = _as_column(src_lo, n)
        src_asn = _as_column(src_asn, n)
        scanner_id = _as_column(scanner_id, n)
        self.packets_emitted += n
        if self.route_batch is None:
            self._inject_rows(time, src_hi, src_lo, dst_hi, dst_lo,
                              protocol, dst_port, src_asn, scanner_id,
                              payload_id, payloads)
            return n
        slots, telescopes = self.route_batch(dst_hi, dst_lo, time)
        counts = np.bincount(slots.astype(np.int64) + 1,
                             minlength=len(telescopes) + 1)
        self.packets_unrouted += int(counts[0])
        for slot, telescope in enumerate(telescopes):
            routed = int(counts[slot + 1])
            if not routed:
                continue
            if routed == n:
                telescope.deliver_batch(
                    time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                    dst_port, src_asn, scanner_id,
                    payload_id=payload_id, payloads=payloads)
                break
            rows = np.flatnonzero(slots == slot)
            sub_ids, sub_payloads = _subset_payloads(
                payload_id, payloads, rows)
            telescope.deliver_batch(
                time[rows], src_hi[rows], src_lo[rows], dst_hi[rows],
                dst_lo[rows], protocol[rows], dst_port[rows],
                src_asn[rows], scanner_id[rows],
                payload_id=sub_ids, payloads=sub_payloads)
        return n

    def _inject_rows(self, time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                     dst_port, src_asn, scanner_id, payload_id,
                     payloads) -> None:
        """Row-by-row fallback when no vectorized router is wired."""
        for i in range(len(time)):
            payload = None
            if payload_id is not None and payload_id[i] >= 0:
                payload = payloads[int(payload_id[i])]
            dst = (int(dst_hi[i]) << 64) | int(dst_lo[i])
            telescope = self.route(dst, float(time[i]))
            if telescope is None:
                self.packets_unrouted += 1
                continue
            telescope.deliver(Packet(
                time=float(time[i]),
                src=(int(src_hi[i]) << 64) | int(src_lo[i]),
                dst=dst, protocol=Protocol(int(protocol[i])),
                dst_port=int(dst_port[i]), payload=payload,
                src_asn=int(src_asn[i]),
                scanner_id=int(scanner_id[i])))


def _as_column(value, n: int) -> np.ndarray:
    """Broadcast a scalar column to ``n`` rows (arrays pass through)."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(n, arr)
    return arr


def _subset_payloads(payload_id: np.ndarray | None,
                     payloads: list[bytes] | None,
                     rows: np.ndarray) -> tuple[np.ndarray | None,
                                                list[bytes] | None]:
    """Re-key a payload side list for a row subset (split sessions only)."""
    if payload_id is None or payloads is None:
        return None, None
    ids = payload_id[rows]
    hit = ids >= 0
    if not hit.any():
        return None, None
    used, inverse = np.unique(ids[hit], return_inverse=True)
    subset = [payloads[int(u)] for u in used]
    new_ids = np.full(len(rows), -1, dtype=np.int64)
    new_ids[hit] = inverse
    return new_ids, subset


@dataclass(eq=False)
class Scanner:
    """One scan source with full generative behavior.

    Agents compare (and hash) by identity so a context can key its
    deferred-session queue by scanner.
    """

    scanner_id: int
    name: str
    as_record: ASRecord
    temporal: TemporalBehavior
    network_policy: "NetworkPolicy"
    addr_strategy: "AddressStrategy"
    protocol_profile: "ProtocolProfile"
    rng: np.random.Generator
    packets_per_session: Callable[[np.random.Generator], int]
    tool: ToolSignature | None = None
    payload_probability: float = 0.0
    #: reverse-DNS name registered for the scanner's fixed source address.
    rdns_name: str = ""
    #: ground-truth labels for validation (never read by the analyses).
    truth_network_class: str = ""
    truth_address_class: str = ""
    source_model: SourceModel = SourceModel.FIXED
    source_subnet_index: int = 0
    #: mean intra-session packet gap (seconds); must stay < 1h so a burst
    #: remains one session under the paper's timeout.
    mean_packet_gap: float = 0.25
    #: when True, each selected prefix is probed as its own scan job,
    #: separated by more than the session timeout — one firing then
    #: produces one session *per announced prefix* (the mechanism behind
    #: the paper's +555% session growth during the split period).
    spread_prefix_sessions: bool = False
    #: when set, the scanner reacts to new BGP announcements: it fires an
    #: extra session ``reaction_delay()`` seconds after each feed entry.
    reaction_delay: Callable[[np.random.Generator], float] | None = None
    #: restrict activity to [active_start, active_end); None = full window.
    active_start: float | None = None
    active_end: float | None = None
    #: pin the fixed-source IID (lets two campaigns share one address, §7.2).
    fixed_iid: int | None = None
    sessions_fired: int = field(default=0, init=False)
    _fixed_iid: int = field(default=0, init=False)
    _seq: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.fixed_iid is not None:
            self._fixed_iid = self.fixed_iid or 1
        else:
            self._fixed_iid = random_bits(self.rng, 64) or 1

    # -- source addresses ---------------------------------------------------

    @property
    def source_subnet(self) -> Prefix:
        """The scanner's /64 inside its AS source prefix."""
        return self.as_record.source_prefix.subnet(
            64, self.source_subnet_index % (1 << 16))

    #: rotating scanners cycle through a bounded pool of interface IDs —
    #: the paper's T2 saw ~3x as many /128 as /64 sources, not unbounded
    #: fresh addresses per session.
    ROTATION_POOL = 4

    def source_address(self, port: int = 0, session_nonce: int = 0) -> int:
        """Current source address under the scanner's rotation model."""
        subnet = self.source_subnet
        if self.source_model is SourceModel.FIXED:
            iid = self._fixed_iid
        elif self.source_model is SourceModel.PER_SESSION:
            slot = session_nonce % self.ROTATION_POOL
            iid = (self._fixed_iid ^ (slot * 0x9E3779B97F4A7C15)) \
                & ((1 << 64) - 1) or 1
        else:
            # vertical scans rotate per destination port; the same port
            # maps to the same address across sessions
            iid = (self._fixed_iid ^ (port * 0x9E3779B97F4A7C15)) \
                & ((1 << 64) - 1) or 1
        return subnet.network | iid

    # -- scheduling -----------------------------------------------------------

    def window(self, ctx: ScannerContext) -> tuple[float, float]:
        start = ctx.window_start if self.active_start is None \
            else max(ctx.window_start, self.active_start)
        end = ctx.window_end if self.active_end is None \
            else min(ctx.window_end, self.active_end)
        return start, end

    def start(self, ctx: ScannerContext) -> None:
        """Schedule all internally triggered sessions; hook BGP reactions."""
        start, end = self.window(ctx)
        for t in self.temporal.session_times(start, end, self.rng):
            ctx.simulator.schedule_at(
                max(t, ctx.simulator.now), partial(self.fire, ctx, t),
                label=f"scan:{self.name}")
        if self.reaction_delay is not None:
            if ctx.collector is None:
                raise ExperimentError(
                    f"reactive scanner {self.name} needs a collector feed")
            ctx.collector.subscribe(partial(self._on_feed, ctx))

    def _on_feed(self, ctx: ScannerContext, time: float,
                 entry: CollectorEntry) -> None:
        if entry.kind is not UpdateKind.ANNOUNCE:
            return
        start, end = self.window(ctx)
        assert self.reaction_delay is not None
        fire_at = time + float(self.reaction_delay(self.rng))
        if start <= fire_at < end:
            ctx.simulator.schedule_at(
                max(fire_at, ctx.simulator.now),
                partial(self.fire, ctx, fire_at, entry.prefix),
                label=f"scan-react:{self.name}")

    # -- session emission --------------------------------------------------------

    def fire(self, ctx: ScannerContext, when: float,
             trigger: Prefix | None = None) -> int:
        """Emit one scan session starting at ``when``; returns packet count.

        In deferred-batch mode the session is only *resolved* here (the
        time-dependent draws: network selection, session size, nonce) and
        the packet columns materialize later in
        :meth:`ScannerContext.flush_batches`; the returned count is then
        the requested target count, which an address strategy may trim.
        """
        selections = self.network_policy.select(ctx, self.rng, trigger)
        if not selections:
            return 0
        total = max(1, int(self.packets_per_session(self.rng)))
        self.sessions_fired += 1
        if not ctx.batch_emit:
            return self._fire_legacy(ctx, when, selections, total)
        weight_sum = sum(w for _, w in selections)
        session = _PendingSession(
            when=when,
            prefixes=tuple(p for p, _ in selections),
            counts=tuple(max(1, round(total * w / weight_sum))
                         for _, w in selections),
            nonce=self.sessions_fired)
        if ctx.defer_batch:
            ctx._pending.setdefault(self, []).append(session)
            return sum(session.counts)
        if self.sessions_fired % _SPAN_SAMPLE == 1:
            with obs.span("scanner.batch_emit", scanner=self.name,
                          sessions=1):
                return self._flush_sessions(ctx, [session])
        return self._flush_sessions(ctx, [session])

    def _fire_legacy(self, ctx: ScannerContext, when: float,
                     selections, total: int) -> int:
        """Per-packet oracle path (``REPRO_LEGACY_EMIT=1``)."""
        nonce = self.sessions_fired
        weight_sum = sum(w for _, w in selections)
        emitted = 0
        t = when
        for prefix, weight in selections:
            count = max(1, round(total * weight / weight_sum))
            targets = self.addr_strategy.generate(prefix, count, self.rng)
            for dst in targets:
                protocol, port = self.protocol_profile.sample(self.rng)
                payload = self._payload()
                src = self.source_address(port=port, session_nonce=nonce)
                ctx.inject(Packet(
                    time=t, src=src, dst=dst, protocol=protocol,
                    dst_port=port, payload=payload,
                    src_asn=self.as_record.asn,
                    scanner_id=self.scanner_id))
                emitted += 1
                t += float(self.rng.exponential(self.mean_packet_gap))
            if self.spread_prefix_sessions:
                # next prefix becomes its own session (> 1h timeout gap)
                t += float(self.rng.uniform(1.25 * HOUR, 2.5 * HOUR))
        return emitted

    def _flush_sessions(self, ctx: ScannerContext,
                        sessions: list["_PendingSession"]) -> int:
        """Emit resolved sessions as one NumPy column batch (the hot path).

        Canonical RNG draw order: per session in firing order — prefix
        spreading gaps, then each prefix's targets — followed by one
        protocol/port draw, one inter-packet-gap draw, one payload mask
        and one payload-tail draw covering every packet of the batch.
        This differs from the legacy per-packet interleaving, so the two
        paths agree in distribution (differential-tested marginals) but
        not packet-for-packet. The batch path is itself byte-deterministic
        for a fixed seed.
        """
        from repro.scanners.strategies import split_targets
        rng = self.rng
        batch_gen = getattr(self.addr_strategy, "generate_batch", None)
        spread = self.spread_prefix_sessions
        seg_hi: list[np.ndarray] = []       # per-segment target columns
        seg_lo: list[np.ndarray] = []
        seg_len: list[int] = []
        seg_offset: list[float] = []        # segment start offset in session
        sess_len: list[int] = []            # non-empty sessions only
        sess_when: list[float] = []
        sess_nonce: list[int] = []
        for session in sessions:
            k = len(session.prefixes)
            extras = rng.uniform(1.25 * HOUR, 2.5 * HOUR, size=k - 1) \
                if spread and k > 1 else None
            offset = 0.0
            this_len = 0
            for j, (prefix, count) in enumerate(zip(session.prefixes,
                                                    session.counts)):
                pair = batch_gen(prefix, count, rng) \
                    if batch_gen is not None else None
                if pair is None:
                    pair = split_targets(
                        self.addr_strategy.generate(prefix, count, rng))
                m = len(pair[0])
                if m:
                    seg_hi.append(pair[0])
                    seg_lo.append(pair[1])
                    seg_len.append(m)
                    seg_offset.append(offset)
                    this_len += m
                if extras is not None and j < k - 1:
                    # each later prefix becomes its own observed session
                    # (> 1h timeout gap)
                    offset += extras[j]
            if this_len:
                sess_len.append(this_len)
                sess_when.append(session.when)
                sess_nonce.append(session.nonce)
        n = sum(seg_len)
        if n == 0:
            return 0
        if len(seg_hi) == 1:
            dst_hi, dst_lo = seg_hi[0], seg_lo[0]
        else:
            dst_hi = np.concatenate(seg_hi)
            dst_lo = np.concatenate(seg_lo)

        protocols, ports = self.protocol_profile.sample_batch(rng, n)

        # one continuous exponential gap chain per session, re-anchored at
        # each session's firing time (and shifted per spread segment)
        gaps = rng.exponential(self.mean_packet_gap, size=n)
        chain = np.cumsum(gaps) - gaps
        lengths = np.asarray(sess_len)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        times = np.repeat(np.asarray(sess_when) - chain[starts],
                          lengths) + chain
        if spread and len(seg_len) > len(sess_len):
            times = times + np.repeat(seg_offset, seg_len)

        payload_id = None
        payloads = None
        if self.tool is not None and self.payload_probability > 0:
            hits = rng.random(n) < self.payload_probability
            k = int(np.count_nonzero(hits))
            if k:
                payloads = self.tool.payload_batch(rng, self._seq + 1, k)
                self._seq += k
                payload_id = np.full(n, -1, dtype=np.int64)
                payload_id[hits] = np.arange(k)

        subnet = self.source_subnet
        src_hi = np.uint64(subnet.network >> 64)
        if self.source_model is SourceModel.PER_PORT:
            iid = np.uint64(self._fixed_iid) \
                ^ (ports.astype(np.uint64) * np.uint64(_GOLDEN))
            src_lo = np.where(iid == 0, np.uint64(1), iid)
        elif self.source_model is SourceModel.PER_SESSION:
            slots = np.asarray(sess_nonce, dtype=np.uint64) \
                % np.uint64(self.ROTATION_POOL)
            iid = np.uint64(self._fixed_iid) \
                ^ (slots * np.uint64(_GOLDEN))
            src_lo = np.repeat(np.where(iid == 0, np.uint64(1), iid),
                               lengths)
        else:
            src_lo = np.uint64(self._fixed_iid)

        obs.add("sim.packets_emitted_batch_total", n)
        return ctx.inject_batch(
            times, src_hi, src_lo, dst_hi, dst_lo, protocols, ports,
            np.uint32(self.as_record.asn), np.int64(self.scanner_id),
            payload_id=payload_id, payloads=payloads)

    def _payload(self) -> bytes | None:
        if self.tool is None or self.payload_probability <= 0:
            return None
        if self.rng.random() >= self.payload_probability:
            return None
        self._seq += 1
        return self.tool.payload(self.rng, self._seq)

    def validate(self) -> None:
        """Sanity-check the configuration against session semantics."""
        if self.mean_packet_gap >= HOUR:
            raise ExperimentError(
                f"{self.name}: intra-session gap {self.mean_packet_gap}s "
                "would split sessions under the 1h timeout")
