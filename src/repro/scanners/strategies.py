"""Address-selection strategies and protocol/port profiles.

Address strategies realize the §5.3 taxonomy from the generative side:
*structured* strategies produce detectable patterns (low-byte walks,
subnet sweeps), the *random* strategy draws uniform bits, and mixes
reproduce the Table 3 target-type marginals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.net import addrgen
from repro.net.addr import ADDR_BITS, random_bits
from repro.net.prefix import Prefix
from repro.telescope.packet import (TRACEROUTE_PORT_RANGE, Protocol)


class AddressStrategy(TypingProtocol):
    """Generates ``count`` targets inside ``prefix``.

    Strategies may additionally implement
    ``generate_batch(prefix, count, rng) -> (hi, lo) | None`` returning the
    targets as two ``uint64`` half columns; ``None`` signals the batch
    form cannot serve this configuration and the caller falls back to
    :meth:`generate`. Batch draws follow their own canonical RNG order.
    """

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        ...  # pragma: no cover


_MASK64 = (1 << 64) - 1


def split_targets(targets: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Split 128-bit integer targets into (hi, lo) uint64 columns."""
    n = len(targets)
    hi = np.fromiter((t >> 64 for t in targets), dtype=np.uint64, count=n)
    lo = np.fromiter((t & _MASK64 for t in targets), dtype=np.uint64,
                     count=n)
    return hi, lo


@dataclass
class LowByteStrategy:
    """Structured probing of ``::1``-style addresses across ordered subnets.

    90% of the paper's scanners target at least one low-byte address.
    """

    subnet_len: int = 64
    hosts: tuple[int, ...] = (1,)
    #: probability of also probing the subnet-router anycast (``::0``).
    anycast_share: float = 0.0

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        subnet_len = max(self.subnet_len, prefix.length)
        span = subnet_len - prefix.length
        total_subnets = 1 << min(span, 62)
        start = random_bits(rng, min(span, 62)) if span else 0
        step = 1 << (ADDR_BITS - subnet_len)
        targets = []
        for i in range(count):
            index = (start + i) % total_subnets
            base = prefix.network + index * step
            if self.anycast_share and rng.random() < self.anycast_share:
                targets.append(base)
            else:
                host = self.hosts[i % len(self.hosts)]
                targets.append(base | host)
        return targets

    def generate_batch(self, prefix: Prefix, count: int,
                       rng: np.random.Generator) \
            -> tuple[np.ndarray, np.ndarray] | None:
        subnet_len = max(self.subnet_len, prefix.length)
        if subnet_len > 64 or count <= 0:
            return None
        span = subnet_len - prefix.length
        bits = min(span, 62)
        start = random_bits(rng, bits) if span else 0
        index = (np.uint64(start) + np.arange(count, dtype=np.uint64)) \
            % np.uint64(1 << bits)
        hi = np.uint64(prefix.network >> 64) \
            + index * np.uint64(1 << (64 - subnet_len))
        if len(self.hosts) == 1:
            lo = np.full(count, self.hosts[0], dtype=np.uint64)
        else:
            hosts = np.array(self.hosts, dtype=np.uint64)
            lo = hosts[np.arange(count) % len(hosts)]
        if self.anycast_share:
            lo = np.where(rng.random(count) < self.anycast_share,
                          np.uint64(0), lo)
        return hi, lo


@dataclass
class StructuredSweepStrategy:
    """Coarse iterative traversal of a prefix (the Fig. 12a/13 pattern)."""

    subnet_len: int = 64

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        return addrgen.structured_sweep(prefix, rng, count,
                                        subnet_len=self.subnet_len)

    def generate_batch(self, prefix: Prefix, count: int,
                       rng: np.random.Generator) \
            -> tuple[np.ndarray, np.ndarray] | None:
        subnet_len = self.subnet_len
        if subnet_len < prefix.length:
            subnet_len = min(prefix.length + 16, ADDR_BITS)
        if subnet_len > 64 or count <= 0:
            return None
        total = 1 << (subnet_len - prefix.length)
        stride = max(1, total // count)
        # the scalar sweep stops at the prefix boundary; emit exactly the
        # subnets it would have visited
        valid = min(count, (total - 1) // stride + 1)
        host = int(rng.integers(1, 16))
        step = np.uint64(stride << (64 - subnet_len))
        hi = np.uint64(prefix.network >> 64) \
            + np.arange(valid, dtype=np.uint64) * step
        return hi, np.full(valid, host, dtype=np.uint64)


@dataclass
class RandomStrategy:
    """Uniformly random addresses (topology-measurement style, Fig. 12b).

    ``random_subnet_bits`` controls whether the subnet part is also random
    (fully random) or iterated in order with only the IID random — the
    AS53667 pattern where nibbles 11-12 are structured but the last 80 bits
    are random.
    """

    structured_subnets: bool = False
    subnet_len: int = 64

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        if not self.structured_subnets:
            return addrgen.random_targets(prefix, rng, count)
        subnet_len = max(self.subnet_len, prefix.length)
        span = subnet_len - prefix.length
        step = 1 << (ADDR_BITS - subnet_len)
        start = random_bits(rng, min(span, 62)) if span else 0
        targets = []
        for i in range(count):
            base = prefix.network + ((start + i) % (1 << min(span, 62))) * step
            targets.append(base | random_bits(rng, ADDR_BITS - subnet_len))
        return targets

    def generate_batch(self, prefix: Prefix, count: int,
                       rng: np.random.Generator) \
            -> tuple[np.ndarray, np.ndarray] | None:
        if prefix.length > 64 or count <= 0:
            return None
        base_hi = np.uint64(prefix.network >> 64)
        lo = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        if not self.structured_subnets:
            span = 64 - prefix.length
            hi = base_hi + rng.integers(0, 1 << span, size=count,
                                        dtype=np.uint64)
            return hi, lo
        subnet_len = max(self.subnet_len, prefix.length)
        if subnet_len > 64:
            return None
        span = subnet_len - prefix.length
        bits = min(span, 62)
        start = random_bits(rng, bits) if span else 0
        index = (np.uint64(start) + np.arange(count, dtype=np.uint64)) \
            % np.uint64(1 << bits)
        hi = base_hi + index * np.uint64(1 << (64 - subnet_len))
        if subnet_len < 64:
            # the random part extends above the low half
            hi = hi | rng.integers(0, 1 << (64 - subnet_len), size=count,
                                   dtype=np.uint64)
        return hi, lo


@dataclass
class FixedTargetsStrategy:
    """Probes a fixed address list (the T2 DNS attractor scanners)."""

    targets: tuple[int, ...]

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        in_prefix = [t for t in self.targets if prefix.contains_address(t)]
        pool = in_prefix or list(self.targets)
        return [pool[i % len(pool)] for i in range(count)]

    def generate_batch(self, prefix: Prefix, count: int,
                       rng: np.random.Generator) \
            -> tuple[np.ndarray, np.ndarray] | None:
        if count <= 0:
            return None
        cache = getattr(self, "_pool_cache", None)
        if cache is None:
            cache = {}
            self._pool_cache = cache
        key = (prefix.network, prefix.length)
        pool = cache.get(key)
        if pool is None:
            in_prefix = [t for t in self.targets
                         if prefix.contains_address(t)]
            pool = split_targets(in_prefix or list(self.targets))
            cache[key] = pool
        hi, lo = pool
        index = np.arange(count) % len(hi)
        return hi[index], lo[index]


@dataclass
class TypeMixStrategy:
    """Samples each target's RFC 7707 category from a weighted mix.

    Used for scanners that exercise the minor Table 3 categories
    (embedded-ipv4, embedded-port, ieee-derived, isatap, pattern-bytes).
    """

    weights: dict[str, float] = field(default_factory=lambda: {
        "low-byte": 0.55, "random": 0.15, "embedded-ipv4": 0.12,
        "embedded-port": 0.05, "pattern": 0.06, "eui64": 0.04,
        "anycast": 0.025, "isatap": 0.005})

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        kinds = list(self.weights)
        probs = np.array([self.weights[k] for k in kinds], dtype=float)
        probs = probs / probs.sum()
        draws = rng.choice(len(kinds), size=count, p=probs) if count else []
        return [self._one(kinds[int(d)], prefix, rng) for d in draws]

    @staticmethod
    def _one(kind: str, prefix: Prefix, rng: np.random.Generator) -> int:
        if kind == "low-byte":
            subnet = addrgen.random_subnet(prefix, rng, 64)
            return subnet.network | int(rng.integers(1, 256))
        if kind == "random":
            return addrgen.random_iid_address(prefix, rng)
        if kind == "embedded-ipv4":
            return addrgen.embedded_ipv4_address(prefix, rng)
        if kind == "embedded-port":
            return addrgen.embedded_port_address(prefix, rng)
        if kind == "pattern":
            return addrgen.wordy_address(prefix, rng)
        if kind == "eui64":
            return addrgen.eui64_address(prefix, rng)
        if kind == "anycast":
            subnet = addrgen.random_subnet(prefix, rng, 64)
            return subnet.network
        if kind == "isatap":
            return addrgen.isatap_address(prefix, rng)
        raise ExperimentError(f"unknown target kind {kind!r}")


@dataclass
class MixStrategy:
    """Weighted mixture of sub-strategies, sampled per call."""

    parts: Sequence[tuple[float, AddressStrategy]]

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        return self._pick(rng).generate(prefix, count, rng)

    def generate_batch(self, prefix: Prefix, count: int,
                       rng: np.random.Generator) \
            -> tuple[np.ndarray, np.ndarray] | None:
        part = self._pick(rng)
        batch = getattr(part, "generate_batch", None)
        if batch is not None:
            pair = batch(prefix, count, rng)
            if pair is not None:
                return pair
        return split_targets(part.generate(prefix, count, rng))

    def _pick(self, rng: np.random.Generator) -> AddressStrategy:
        if not self.parts:
            raise ExperimentError("empty strategy mix")
        cum = getattr(self, "_cum", None)
        if cum is None:
            weights = np.array([w for w, _ in self.parts], dtype=float)
            self._cum = cum = np.cumsum(weights / weights.sum())
        index = min(int(np.searchsorted(cum, rng.random(), side="right")),
                    len(self.parts) - 1)
        return self.parts[index][1]


# -- protocol/port profiles -----------------------------------------------


@dataclass
class PortDistribution:
    """Weighted destination-port chooser."""

    ports: tuple[int, ...]
    weights: tuple[float, ...]
    #: probability of instead drawing from the whole broad port range
    #: (the paper saw 1,335 distinct TCP ports).
    broad_share: float = 0.0
    broad_range: tuple[int, int] = (1, 10000)

    def __post_init__(self) -> None:
        if len(self.ports) != len(self.weights):
            raise ExperimentError("ports and weights must align")
        total = float(sum(self.weights))
        if total <= 0:
            raise ExperimentError("port weights must sum to > 0")
        cumulative = []
        running = 0.0
        for port, weight in zip(self.ports, self.weights):
            running += weight / total
            cumulative.append((running, port))
        # plain attribute set works for non-slotted dataclasses
        self._cumulative = cumulative
        self._thresholds = np.array([t for t, _ in cumulative])
        self._port_values = np.array([p for _, p in cumulative],
                                     dtype=np.uint16)

    def sample(self, rng: np.random.Generator) -> int:
        if self.broad_share and rng.random() < self.broad_share:
            low, high = self.broad_range
            return int(rng.integers(low, high + 1))
        draw = rng.random()
        for threshold, port in self._cumulative:
            if draw <= threshold:
                return port
        return self.ports[-1]

    def sample_batch(self, rng: np.random.Generator,
                     count: int) -> np.ndarray:
        """``count`` port draws as one ``uint16`` column.

        Consumes the RNG in a fixed canonical order (weighted draw, then
        broad mask, then broad values) — not the per-call order of
        :meth:`sample` — so the batch path is self-deterministic while the
        marginal distribution stays identical.
        """
        index = np.searchsorted(self._thresholds, rng.random(count),
                                side="left")
        ports = self._port_values[
            np.minimum(index, len(self._port_values) - 1)]
        if self.broad_share:
            broad = rng.random(count) < self.broad_share
            low, high = self.broad_range
            ports = np.where(
                broad,
                rng.integers(low, high + 1, size=count).astype(np.uint16),
                ports)
        return ports


#: Table 4 TCP mix: port 80 dominates, then 443, 21, 8080, 22.
TCP_PORTS = PortDistribution(
    ports=(80, 443, 21, 8080, 22),
    weights=(0.68, 0.15, 0.05, 0.04, 0.04),
    broad_share=0.04)

#: Table 4 UDP mix: traceroute range, then DNS, SNMP, ISAKMP, NTP.
UDP_PORTS = PortDistribution(
    ports=(53, 161, 500, 123),
    weights=(0.40, 0.21, 0.20, 0.19),
    broad_share=0.0)

#: share of UDP probes that use the classic traceroute range.
UDP_TRACEROUTE_SHARE = 0.71


@dataclass
class ProtocolProfile:
    """Per-packet transport/port sampler.

    Weights are per *packet*; scanners mix protocols inside sessions just
    like the paper's multi-protocol scanners.
    """

    icmpv6: float = 1.0
    tcp: float = 0.0
    udp: float = 0.0
    tcp_ports: PortDistribution = field(default_factory=lambda: TCP_PORTS)
    udp_ports: PortDistribution = field(default_factory=lambda: UDP_PORTS)
    udp_traceroute_share: float = UDP_TRACEROUTE_SHARE

    def sample(self, rng: np.random.Generator) -> tuple[Protocol, int]:
        total = self.icmpv6 + self.tcp + self.udp
        if total <= 0:
            raise ExperimentError("protocol profile has no weight")
        draw = rng.random() * total
        if draw < self.icmpv6:
            return Protocol.ICMPV6, 0
        if draw < self.icmpv6 + self.tcp:
            return Protocol.TCP, self.tcp_ports.sample(rng)
        if rng.random() < self.udp_traceroute_share:
            low, high = TRACEROUTE_PORT_RANGE
            return Protocol.UDP, int(rng.integers(low, high + 1))
        return Protocol.UDP, self.udp_ports.sample(rng)

    def sample_batch(self, rng: np.random.Generator,
                     count: int) -> tuple[np.ndarray, np.ndarray]:
        """``count`` (protocol, port) draws as ``(uint8, uint16)`` columns.

        Canonical draw order: protocol choice, TCP ports, UDP traceroute
        mask, UDP traceroute ports, UDP service ports. Single-protocol
        profiles skip the draws they cannot need, so e.g. a pure-ICMPv6
        scanner costs zero RNG consumption per packet here.
        """
        total = self.icmpv6 + self.tcp + self.udp
        if total <= 0:
            raise ExperimentError("protocol profile has no weight")
        protocols = np.full(count, int(Protocol.ICMPV6), dtype=np.uint8)
        ports = np.zeros(count, dtype=np.uint16)
        if self.tcp == 0 and self.udp == 0:
            return protocols, ports
        draw = rng.random(count) * total
        tcp_rows = np.flatnonzero(
            (draw >= self.icmpv6) & (draw < self.icmpv6 + self.tcp))
        udp_rows = np.flatnonzero(draw >= self.icmpv6 + self.tcp)
        if len(tcp_rows):
            protocols[tcp_rows] = int(Protocol.TCP)
            ports[tcp_rows] = self.tcp_ports.sample_batch(rng, len(tcp_rows))
        if len(udp_rows):
            protocols[udp_rows] = int(Protocol.UDP)
            n_udp = len(udp_rows)
            trace = rng.random(n_udp) < self.udp_traceroute_share
            low, high = TRACEROUTE_PORT_RANGE
            udp_ports = np.where(
                trace,
                rng.integers(low, high + 1, size=n_udp).astype(np.uint16),
                self.udp_ports.sample_batch(rng, n_udp))
            ports[udp_rows] = udp_ports
        return protocols, ports


#: Common profiles.
ICMPV6_ONLY = ProtocolProfile(icmpv6=1.0)
TCP_HEAVY = ProtocolProfile(icmpv6=0.15, tcp=0.85)
UDP_TRACEROUTE = ProtocolProfile(icmpv6=0.2, udp=0.8)
MIXED_PROFILE = ProtocolProfile(icmpv6=0.65, tcp=0.15, udp=0.20)
