"""Address-selection strategies and protocol/port profiles.

Address strategies realize the §5.3 taxonomy from the generative side:
*structured* strategies produce detectable patterns (low-byte walks,
subnet sweeps), the *random* strategy draws uniform bits, and mixes
reproduce the Table 3 target-type marginals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.net import addrgen
from repro.net.addr import ADDR_BITS, random_bits
from repro.net.prefix import Prefix
from repro.telescope.packet import (TRACEROUTE_PORT_RANGE, Protocol)


class AddressStrategy(TypingProtocol):
    """Generates ``count`` targets inside ``prefix``."""

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        ...  # pragma: no cover


@dataclass
class LowByteStrategy:
    """Structured probing of ``::1``-style addresses across ordered subnets.

    90% of the paper's scanners target at least one low-byte address.
    """

    subnet_len: int = 64
    hosts: tuple[int, ...] = (1,)
    #: probability of also probing the subnet-router anycast (``::0``).
    anycast_share: float = 0.0

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        subnet_len = max(self.subnet_len, prefix.length)
        span = subnet_len - prefix.length
        total_subnets = 1 << min(span, 62)
        start = random_bits(rng, min(span, 62)) if span else 0
        step = 1 << (ADDR_BITS - subnet_len)
        targets = []
        for i in range(count):
            index = (start + i) % total_subnets
            base = prefix.network + index * step
            if self.anycast_share and rng.random() < self.anycast_share:
                targets.append(base)
            else:
                host = self.hosts[i % len(self.hosts)]
                targets.append(base | host)
        return targets


@dataclass
class StructuredSweepStrategy:
    """Coarse iterative traversal of a prefix (the Fig. 12a/13 pattern)."""

    subnet_len: int = 64

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        return addrgen.structured_sweep(prefix, rng, count,
                                        subnet_len=self.subnet_len)


@dataclass
class RandomStrategy:
    """Uniformly random addresses (topology-measurement style, Fig. 12b).

    ``random_subnet_bits`` controls whether the subnet part is also random
    (fully random) or iterated in order with only the IID random — the
    AS53667 pattern where nibbles 11-12 are structured but the last 80 bits
    are random.
    """

    structured_subnets: bool = False
    subnet_len: int = 64

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        if not self.structured_subnets:
            return addrgen.random_targets(prefix, rng, count)
        subnet_len = max(self.subnet_len, prefix.length)
        span = subnet_len - prefix.length
        step = 1 << (ADDR_BITS - subnet_len)
        start = random_bits(rng, min(span, 62)) if span else 0
        targets = []
        for i in range(count):
            base = prefix.network + ((start + i) % (1 << min(span, 62))) * step
            targets.append(base | random_bits(rng, ADDR_BITS - subnet_len))
        return targets


@dataclass
class FixedTargetsStrategy:
    """Probes a fixed address list (the T2 DNS attractor scanners)."""

    targets: tuple[int, ...]

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        in_prefix = [t for t in self.targets if prefix.contains_address(t)]
        pool = in_prefix or list(self.targets)
        return [pool[i % len(pool)] for i in range(count)]


@dataclass
class TypeMixStrategy:
    """Samples each target's RFC 7707 category from a weighted mix.

    Used for scanners that exercise the minor Table 3 categories
    (embedded-ipv4, embedded-port, ieee-derived, isatap, pattern-bytes).
    """

    weights: dict[str, float] = field(default_factory=lambda: {
        "low-byte": 0.55, "random": 0.15, "embedded-ipv4": 0.12,
        "embedded-port": 0.05, "pattern": 0.06, "eui64": 0.04,
        "anycast": 0.025, "isatap": 0.005})

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        kinds = list(self.weights)
        probs = np.array([self.weights[k] for k in kinds], dtype=float)
        probs = probs / probs.sum()
        draws = rng.choice(len(kinds), size=count, p=probs) if count else []
        return [self._one(kinds[int(d)], prefix, rng) for d in draws]

    @staticmethod
    def _one(kind: str, prefix: Prefix, rng: np.random.Generator) -> int:
        if kind == "low-byte":
            subnet = addrgen.random_subnet(prefix, rng, 64)
            return subnet.network | int(rng.integers(1, 256))
        if kind == "random":
            return addrgen.random_iid_address(prefix, rng)
        if kind == "embedded-ipv4":
            return addrgen.embedded_ipv4_address(prefix, rng)
        if kind == "embedded-port":
            return addrgen.embedded_port_address(prefix, rng)
        if kind == "pattern":
            return addrgen.wordy_address(prefix, rng)
        if kind == "eui64":
            return addrgen.eui64_address(prefix, rng)
        if kind == "anycast":
            subnet = addrgen.random_subnet(prefix, rng, 64)
            return subnet.network
        if kind == "isatap":
            return addrgen.isatap_address(prefix, rng)
        raise ExperimentError(f"unknown target kind {kind!r}")


@dataclass
class MixStrategy:
    """Weighted mixture of sub-strategies, sampled per call."""

    parts: Sequence[tuple[float, AddressStrategy]]

    def generate(self, prefix: Prefix, count: int,
                 rng: np.random.Generator) -> list[int]:
        if not self.parts:
            raise ExperimentError("empty strategy mix")
        weights = np.array([w for w, _ in self.parts], dtype=float)
        weights = weights / weights.sum()
        index = int(rng.choice(len(self.parts), p=weights))
        return self.parts[index][1].generate(prefix, count, rng)


# -- protocol/port profiles -----------------------------------------------


@dataclass
class PortDistribution:
    """Weighted destination-port chooser."""

    ports: tuple[int, ...]
    weights: tuple[float, ...]
    #: probability of instead drawing from the whole broad port range
    #: (the paper saw 1,335 distinct TCP ports).
    broad_share: float = 0.0
    broad_range: tuple[int, int] = (1, 10000)

    def __post_init__(self) -> None:
        if len(self.ports) != len(self.weights):
            raise ExperimentError("ports and weights must align")
        total = float(sum(self.weights))
        if total <= 0:
            raise ExperimentError("port weights must sum to > 0")
        cumulative = []
        running = 0.0
        for port, weight in zip(self.ports, self.weights):
            running += weight / total
            cumulative.append((running, port))
        # plain attribute set works for non-slotted dataclasses
        self._cumulative = cumulative

    def sample(self, rng: np.random.Generator) -> int:
        if self.broad_share and rng.random() < self.broad_share:
            low, high = self.broad_range
            return int(rng.integers(low, high + 1))
        draw = rng.random()
        for threshold, port in self._cumulative:
            if draw <= threshold:
                return port
        return self.ports[-1]


#: Table 4 TCP mix: port 80 dominates, then 443, 21, 8080, 22.
TCP_PORTS = PortDistribution(
    ports=(80, 443, 21, 8080, 22),
    weights=(0.68, 0.15, 0.05, 0.04, 0.04),
    broad_share=0.04)

#: Table 4 UDP mix: traceroute range, then DNS, SNMP, ISAKMP, NTP.
UDP_PORTS = PortDistribution(
    ports=(53, 161, 500, 123),
    weights=(0.40, 0.21, 0.20, 0.19),
    broad_share=0.0)

#: share of UDP probes that use the classic traceroute range.
UDP_TRACEROUTE_SHARE = 0.71


@dataclass
class ProtocolProfile:
    """Per-packet transport/port sampler.

    Weights are per *packet*; scanners mix protocols inside sessions just
    like the paper's multi-protocol scanners.
    """

    icmpv6: float = 1.0
    tcp: float = 0.0
    udp: float = 0.0
    tcp_ports: PortDistribution = field(default_factory=lambda: TCP_PORTS)
    udp_ports: PortDistribution = field(default_factory=lambda: UDP_PORTS)
    udp_traceroute_share: float = UDP_TRACEROUTE_SHARE

    def sample(self, rng: np.random.Generator) -> tuple[Protocol, int]:
        total = self.icmpv6 + self.tcp + self.udp
        if total <= 0:
            raise ExperimentError("protocol profile has no weight")
        draw = rng.random() * total
        if draw < self.icmpv6:
            return Protocol.ICMPV6, 0
        if draw < self.icmpv6 + self.tcp:
            return Protocol.TCP, self.tcp_ports.sample(rng)
        if rng.random() < self.udp_traceroute_share:
            low, high = TRACEROUTE_PORT_RANGE
            return Protocol.UDP, int(rng.integers(low, high + 1))
        return Protocol.UDP, self.udp_ports.sample(rng)


#: Common profiles.
ICMPV6_ONLY = ProtocolProfile(icmpv6=1.0)
TCP_HEAVY = ProtocolProfile(icmpv6=0.15, tcp=0.85)
UDP_TRACEROUTE = ProtocolProfile(icmpv6=0.2, udp=0.8)
MIXED_PROFILE = ProtocolProfile(icmpv6=0.65, tcp=0.15, udp=0.20)
