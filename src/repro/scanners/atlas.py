"""The RIPE-Atlas-like distributed probe fleet.

§7.2: RIPE Atlas probes are 55% of all T1 scan sources, almost exclusively
one-off, always targeting the ``::1`` address of each (new) prefix — a
distributed measurement platform where each probe source does very little
work. We model the fleet as per-announcement batches of one-off sources in
ISP (and some hosting) ASes, firing within days of each announcement.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.controller import AnnouncementCycle
from repro.net.prefix import Prefix
from repro.scanners.base import (Scanner, SourceModel, TemporalBehavior,
                                 TemporalKind, UniformPackets)
from repro.scanners.netselect import FixedPrefixPolicy
from repro.scanners.registry import ASRegistry, NetworkType
from repro.scanners.strategies import FixedTargetsStrategy, ProtocolProfile
from repro.scanners.tools import RIPE_ATLAS
from repro.sim.clock import DAY
from repro.sim.rng import RngStreams


def build_atlas_fleet(schedule: list[AnnouncementCycle],
                      registry: ASRegistry,
                      streams: RngStreams,
                      sources_per_new_prefix: int,
                      baseline_sources: int,
                      extra_targets: tuple[Prefix, ...] = (),
                      first_scanner_id: int = 0,
                      arrival_mean_days: float = 4.0) -> list[Scanner]:
    """Create the whole fleet for a given announcement schedule.

    For every cycle and every newly announced prefix, a fresh batch of
    one-off probe sources targets its ``::1`` with a handful of ICMPv6
    packets; arrival times decay exponentially after the announcement
    (the Fig. 3 pattern). ``baseline_sources`` additionally probe the
    initial prefix and any ``extra_targets`` during cycle 0.
    """
    rng = streams.get("atlas.assign")
    scanners: list[Scanner] = []
    scanner_id = first_scanner_id
    probe_index = 0
    as_pool: list = []

    def _one_probe(prefix: Prefix, window_start: float,
                   window_end: float) -> Scanner:
        nonlocal scanner_id, probe_index
        probe_index += 1
        # probes are spread over many ISP ASes, a few per AS on average
        if as_pool and rng.random() < 0.67:
            record = as_pool[int(rng.integers(0, len(as_pool)))]
        else:
            network_type = NetworkType.ISP if rng.random() < 0.75 \
                else NetworkType.HOSTING
            record = registry.allocate(
                network_type, rdns_domain=RIPE_ATLAS.rdns_for(probe_index))
            as_pool.append(record)
        span = max(window_end - window_start, DAY)
        offset = min(float(rng.exponential(arrival_mean_days * DAY)),
                     span - 1.0)
        scanner = Scanner(
            scanner_id=scanner_id,
            name=f"atlas-{probe_index}",
            as_record=record,
            temporal=TemporalBehavior(kind=TemporalKind.ONE_OFF,
                                      first_at=offset),
            network_policy=FixedPrefixPolicy((prefix,)),
            addr_strategy=FixedTargetsStrategy((prefix.low_byte_address,)),
            protocol_profile=ProtocolProfile(icmpv6=1.0),
            rng=streams.fresh(f"scanner.atlas.{probe_index}"),
            packets_per_session=UniformPackets(1, 3),
            tool=RIPE_ATLAS,
            payload_probability=0.95,
            rdns_name=RIPE_ATLAS.rdns_for(probe_index),
            truth_network_class="single-prefix",
            truth_address_class="structured",
            source_model=SourceModel.FIXED,
            source_subnet_index=probe_index,
            active_start=window_start,
            active_end=window_end,
        )
        scanner_id += 1
        return scanner

    for cycle in schedule:
        if cycle.index == 0:
            for target in (cycle.prefixes[0], *extra_targets):
                for _ in range(baseline_sources):
                    scanners.append(_one_probe(target, cycle.announce_time,
                                               cycle.withdraw_time))
            continue
        # every re-announced prefix triggers a fresh probe batch, so the
        # number of one-off sources grows with the announced prefix count
        # (the +275% weekly source growth of §7.1); newly split prefixes
        # draw a slightly larger batch.
        for prefix in cycle.prefixes:
            batch = sources_per_new_prefix
            if prefix not in cycle.new_prefixes:
                batch = max(1, sources_per_new_prefix * 3 // 4)
            for _ in range(batch):
                scanners.append(_one_probe(prefix, cycle.announce_time,
                                           cycle.withdraw_time))
    return scanners
