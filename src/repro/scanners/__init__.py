"""The simulated IPv6 scanner ecosystem.

The population is calibrated to every marginal the paper reports: temporal
mix, network-selection mix, protocol/port mixes, target address types, tool
fingerprints, heavy hitters, the RIPE Atlas fleet, source rotation, and the
18 live BGP monitors. See DESIGN.md §5 for the calibration targets.
"""

from repro.scanners.base import (
    Scanner,
    ScannerContext,
    SourceModel,
    TemporalBehavior,
    TemporalKind,
)
from repro.scanners.population import PopulationConfig, build_population
from repro.scanners.registry import ASRegistry, ASRecord, NetworkType
from repro.scanners.tools import TOOL_SIGNATURES, ToolSignature

__all__ = [
    "Scanner",
    "ScannerContext",
    "SourceModel",
    "TemporalBehavior",
    "TemporalKind",
    "ASRegistry",
    "ASRecord",
    "NetworkType",
    "ToolSignature",
    "TOOL_SIGNATURES",
    "PopulationConfig",
    "build_population",
]
