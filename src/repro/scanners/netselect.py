"""Network-selection policies (§5.2 taxonomy, generative side).

A policy decides, at session time, which prefixes the session probes and
how the session's packets are shared between them. The driver exposes the
currently announced prefixes through the :class:`ScannerContext` route
closure — policies consult a provider callable instead so scanners can be
wired to T1's changing announcement set, to fixed telescopes, or to both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol as TypingProtocol

import numpy as np

from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.scanners.base import ScannerContext

#: Returns the prefixes currently announced by T1 (empty in the gap days).
AnnouncedProvider = Callable[[], tuple[Prefix, ...]]


class NetworkPolicy(TypingProtocol):
    """Selects (prefix, packet-share) pairs for one session."""

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        ...  # pragma: no cover


@dataclass
class FixedPrefixPolicy:
    """Always probes the same prefix set (T2/T3/T4 scanners)."""

    prefixes: tuple[Prefix, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ExperimentError("fixed policy needs at least one prefix")
        if self.weights is not None \
                and len(self.weights) != len(self.prefixes):
            raise ExperimentError("weights must align with prefixes")

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        weights = self.weights or tuple(1.0 for _ in self.prefixes)
        return list(zip(self.prefixes, weights))


@dataclass
class SingleAnnouncedPolicy:
    """Single-prefix scanning (§5.2).

    The paper defines a single-prefix scanner as one that "only scans one
    announced prefix during each period of announcement"; the chosen
    prefix may change between periods. The policy therefore draws one
    prefix per *announcement set* and sticks to it until the set changes.
    A session triggered by a specific announcement (reactive scanners)
    targets that prefix instead.
    """

    announced: AnnouncedProvider

    def __post_init__(self) -> None:
        self._choice: dict[tuple[Prefix, ...], Prefix] = {}

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        current = self.announced()
        if not current:
            return []
        if trigger is not None and trigger in current:
            return [(trigger, 1.0)]
        choice = self._choice.get(current)
        if choice is None:
            choice = current[int(rng.integers(0, len(current)))]
            self._choice[current] = choice
        return [(choice, 1.0)]


@dataclass
class AllAnnouncedPolicy:
    """Network-size independent: every announced prefix, equal shares."""

    announced: AnnouncedProvider

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        current = self.announced()
        return [(prefix, 1.0) for prefix in current]


@dataclass
class SizeDependentPolicy:
    """Network-size dependent: sessions land on prefixes ∝ their size.

    The paper's classification counts *sessions* per prefix, so a
    size-dependent scanner directs each whole session at one prefix drawn
    with probability proportional to its address-space size — larger
    prefixes accumulate proportionally more sessions (§5.2's 24 rare
    scanners). Equivalent to coarse sweeps over the covering space.
    """

    announced: AnnouncedProvider

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        current = self.announced()
        if not current:
            return []
        min_len = min(p.length for p in current)
        weights = np.array(
            [float(1 << min(min_len - p.length + 32, 62)) for p in current])
        weights = weights / weights.sum()
        index = int(rng.choice(len(current), p=weights))
        return [(current[index], 1.0)]


@dataclass
class SwitchingPolicy:
    """Inconsistent behavior: policy switches at ``switch_time`` (§7.1).

    The paper's inconsistent scanners probed larger prefixes more at the
    beginning and became size-independent towards the end.
    """

    before: NetworkPolicy
    after: NetworkPolicy
    switch_time: float

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        policy = self.before if ctx.simulator.now < self.switch_time \
            else self.after
        return policy.select(ctx, rng, trigger)


@dataclass
class AlternatingPolicy:
    """Chooses one sub-policy per session (weighted).

    Models scanners that visit different telescopes in *different*
    sessions (hence on different days), producing the different-day source
    overlap of Fig. 16(b).
    """

    policies: tuple[NetworkPolicy, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.policies:
            raise ExperimentError("alternating policy needs sub-policies")
        if self.weights is not None \
                and len(self.weights) != len(self.policies):
            raise ExperimentError("weights must align with policies")

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        weights = np.array(self.weights
                           or [1.0] * len(self.policies), dtype=float)
        weights = weights / weights.sum()
        index = int(rng.choice(len(self.policies), p=weights))
        return self.policies[index].select(ctx, rng, trigger)


@dataclass
class CombinedPolicy:
    """Union of several policies' selections (multi-telescope scanners)."""

    policies: tuple[NetworkPolicy, ...]

    def select(self, ctx: ScannerContext, rng: np.random.Generator,
               trigger: Prefix | None = None) \
            -> list[tuple[Prefix, float]]:
        selections: list[tuple[Prefix, float]] = []
        for policy in self.policies:
            selections.extend(policy.select(ctx, rng, trigger))
        return selections
