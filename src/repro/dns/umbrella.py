"""Cisco-Umbrella-style popularity list.

T2's DNS attractor name "is part of the Cisco Umbrella popularity list"
(§3.1); popularity-list-driven scanners resolve listed names and probe the
resulting addresses, which is why 50% of T2's scanners exclusively target
that one address (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class UmbrellaList:
    """Ranked list of popular DNS names."""

    _ranked: list[str] = field(default_factory=list)

    def add(self, name: str, rank: int | None = None) -> int:
        """Insert ``name`` at ``rank`` (1-based; append when omitted).

        Returns the final 1-based rank.
        """
        if not name:
            raise ReproError("cannot rank an empty name")
        name = name.lower()
        if name in self._ranked:
            return self._ranked.index(name) + 1
        if rank is None:
            self._ranked.append(name)
            return len(self._ranked)
        if rank < 1:
            raise ReproError(f"rank must be >= 1, got {rank}")
        index = min(rank - 1, len(self._ranked))
        self._ranked.insert(index, name)
        return index + 1

    def rank_of(self, name: str) -> int | None:
        """1-based rank of ``name``, or ``None`` if unlisted."""
        try:
            return self._ranked.index(name.lower()) + 1
        except ValueError:
            return None

    def top(self, n: int) -> list[str]:
        return self._ranked[:max(0, n)]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._ranked

    def __len__(self) -> int:
        return len(self._ranked)
