"""DNS substrate.

Models the two DNS-shaped signals of the paper: (i) the single name inside
T2 that co-exists in IPv4 and appears on the Cisco Umbrella popularity list
(the "DNS attractor"), and (ii) reverse-DNS entries of scan sources that
the fingerprinting pipeline resolves (§5.4).
"""

from repro.dns.resolver import Resolver
from repro.dns.umbrella import UmbrellaList
from repro.dns.zone import RecordType, ResourceRecord, Zone

__all__ = [
    "Zone",
    "ResourceRecord",
    "RecordType",
    "Resolver",
    "UmbrellaList",
]
