"""A resolver over a set of zones, including reverse (RDNS) lookups."""

from __future__ import annotations

from repro.dns.zone import RecordType, Zone, reverse_name
from repro.net.addr import addr_to_int


class Resolver:
    """Resolves names and reverse entries across registered zones."""

    def __init__(self, zones: list[Zone] | None = None) -> None:
        self._zones: list[Zone] = list(zones or ())

    def add_zone(self, zone: Zone) -> None:
        self._zones.append(zone)

    def resolve(self, name: str,
                rtype: RecordType = RecordType.AAAA) -> list[int | str]:
        """All record data for ``name``/``rtype`` across zones."""
        results: list[int | str] = []
        for zone in self._zones:
            for record in zone.lookup(name, rtype):
                results.append(record.data)
        return results

    def reverse(self, addr: int | str) -> str | None:
        """RDNS lookup: the PTR target for ``addr``, or ``None``.

        This is the query the fingerprinting pipeline runs for every scan
        source (§5.4).
        """
        name = reverse_name(addr_to_int(addr))
        for zone in self._zones:
            records = zone.lookup(name, RecordType.PTR)
            if records:
                target = records[0].data
                assert isinstance(target, str)
                return target
        return None

    def reverse_batch(self, addrs) -> dict[int, str]:
        """RDNS for many addresses in one pass over the zone indexes.

        Semantically ``{a: reverse(a) for a in addrs if reverse(a)}`` —
        first zone with a PTR for the address wins — but resolved
        through each zone's address-keyed side index instead of building
        an ``ip6.arpa`` name and scanning the record store per address.
        """
        resolved: dict[int, str] = {}
        for zone in self._zones:
            index = zone.ptr_targets()
            if not index:
                continue
            for addr in addrs:
                value = addr_to_int(addr)
                if value not in resolved:
                    target = index.get(value)
                    if target is not None:
                        resolved[value] = target
        return resolved

    def has_name(self, addr: int | str) -> bool:
        """True if ``addr`` appears in any AAAA record (forward exposure)."""
        value = addr_to_int(addr)
        return any(value in zone.aaaa_addresses() for zone in self._zones)
