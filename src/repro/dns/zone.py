"""DNS zones and resource records.

Only the record types the reproduction needs: AAAA (forward names that
attract scanners), A (the attractor name co-exists in IPv4, §3.1/T2), and
PTR (reverse entries used to attribute scan sources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.net.addr import addr_to_int, explode


class RecordType(enum.Enum):
    A = "A"
    AAAA = "AAAA"
    PTR = "PTR"


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single DNS record; ``data`` is an address int (A/AAAA) or name."""

    name: str
    rtype: RecordType
    data: int | str

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("record name must be non-empty")
        if self.rtype in (RecordType.A, RecordType.AAAA):
            if not isinstance(self.data, int):
                raise ReproError(f"{self.rtype.value} record data must be int")
        elif not isinstance(self.data, str):
            raise ReproError("PTR record data must be a name")


def reverse_name(addr: int | str) -> str:
    """The ``ip6.arpa`` reverse name of an address."""
    value = addr_to_int(addr)
    nibble_text = explode(value).replace(":", "")
    return ".".join(reversed(nibble_text)) + ".ip6.arpa."


@dataclass
class Zone:
    """A flat record store keyed by (name, type)."""

    origin: str
    _records: dict[tuple[str, RecordType], list[ResourceRecord]] = field(
        default_factory=dict)
    #: address → PTR target side index, maintained by :meth:`add_ptr`
    #: (the only PTR entry point). First target wins, matching
    #: ``lookup(...)[0]`` on the append-only record bucket.
    _ptr_by_addr: dict[int, str] = field(default_factory=dict)

    def add(self, record: ResourceRecord) -> None:
        key = (record.name.lower(), record.rtype)
        bucket = self._records.setdefault(key, [])
        if record not in bucket:
            bucket.append(record)

    def add_aaaa(self, name: str, addr: int | str) -> ResourceRecord:
        record = ResourceRecord(name=name, rtype=RecordType.AAAA,
                                data=addr_to_int(addr))
        self.add(record)
        return record

    def add_ptr(self, addr: int | str, target: str) -> ResourceRecord:
        record = ResourceRecord(name=reverse_name(addr), rtype=RecordType.PTR,
                                data=target)
        self.add(record)
        self._ptr_by_addr.setdefault(addr_to_int(addr), target)
        return record

    def ptr_targets(self) -> dict[int, str]:
        """Address → PTR target map for batched reverse lookups."""
        return self._ptr_by_addr

    def lookup(self, name: str, rtype: RecordType) -> list[ResourceRecord]:
        return list(self._records.get((name.lower(), rtype), ()))

    def names(self, rtype: RecordType | None = None) -> list[str]:
        seen = []
        for (name, rt), _ in self._records.items():
            if rtype is None or rt is rtype:
                if name not in seen:
                    seen.append(name)
        return seen

    def aaaa_addresses(self) -> set[int]:
        """All addresses exposed via AAAA records in this zone."""
        addresses: set[int] = set()
        for (_, rtype), bucket in self._records.items():
            if rtype is RecordType.AAAA:
                for record in bucket:
                    assert isinstance(record.data, int)
                    addresses.add(record.data)
        return addresses

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._records.values())
