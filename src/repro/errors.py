"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AddressError(ReproError, ValueError):
    """An IPv6 address or prefix string/value is malformed or out of range."""


class PrefixError(AddressError):
    """A prefix operation is invalid (bad length, split of a /128, ...)."""


class RoutingError(ReproError):
    """A BGP routing operation failed (unknown peer, invalid update, ...)."""


class PolicyError(RoutingError):
    """A BGP policy configuration or IRR database operation is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class ExperimentError(ReproError):
    """Experiment configuration or orchestration is inconsistent."""


class FaultError(ReproError):
    """A fault-injection plan is malformed or cannot be installed."""


class ShardError(ExperimentError):
    """A shard worker failed terminally (crash, hang, broken pool).

    Carries the shard index, the attempt that exhausted the retry
    budget, a short machine-readable cause (``exitcode -9``,
    ``timeout``, ``BrokenProcessPool``), and the tail of the worker's
    captured stderr, so operators see the worker's actual traceback
    instead of a bare pool exception raised in the coordinator.
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 attempt: int = 0, cause: str = "",
                 stderr_tail: str = "") -> None:
        super().__init__(message)
        self.shard = shard
        self.attempt = attempt
        self.cause = cause
        self.stderr_tail = stderr_tail


class StoreError(ReproError):
    """Persisted data (corpus segment, checkpoint) is missing or corrupt.

    Carries the offending path and the check that failed, so operators can
    locate and quarantine the bad file instead of decoding a raw numpy or
    OS traceback.
    """

    def __init__(self, message: str, *, path=None, check: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.check = check


class CheckpointError(StoreError):
    """A checkpoint file failed its integrity or format checks."""


class AnalysisError(ReproError):
    """An analysis was invoked on unsuitable data (e.g. empty corpus)."""


class ClassificationError(AnalysisError):
    """A classifier could not be applied to the given sessions."""
