"""RFC 7707 target-address classification (addr6 re-implementation).

The paper categorizes every targeted destination address with the ``addr6``
tool of the SI6 IPv6Toolkit into the categories of Table 3. This module
reproduces that classification on integer addresses.

Categories (checked in precedence order):

- ``SUBNET_ANYCAST`` — IID is all zero (Subnet-Router anycast, RFC 4291).
- ``IEEE_DERIVED``   — EUI-64 IID (``ff:fe`` in the middle of the IID).
- ``ISATAP``         — ISATAP IID (``0[02]00:5efe`` in the upper IID half).
- ``EMBEDDED_IPV4``  — IPv4 address embedded in the IID, either binary
  (low 32 bits) or "decimal-spelled" groups (``::192:0:2:1``).
- ``EMBEDDED_PORT``  — a well-known service port spelled in the IID
  (``::443`` for HTTPS), hex- or decimal-spelled.
- ``LOW_BYTE``       — all-zero IID except a small value in the lowest
  bytes (``::1``).
- ``PATTERN_BYTES``  — repeated bytes/nibbles or hex words (``::cafe``).
- ``RANDOMIZED``     — anything without detectable structure.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.net.addr import MAX_ADDR, iid_of


class AddressType(enum.Enum):
    """Target address categories of Table 3 (RFC 7707 / addr6 semantics)."""

    SUBNET_ANYCAST = "subnet-anycast"
    IEEE_DERIVED = "ieee-derived"
    ISATAP = "isatap"
    EMBEDDED_IPV4 = "embedded-ipv4"
    EMBEDDED_PORT = "embedded-port"
    LOW_BYTE = "low-byte"
    PATTERN_BYTES = "pattern-bytes"
    RANDOMIZED = "randomized"


#: Well-known service ports that addr6 recognizes when spelled in an IID.
SERVICE_PORTS = (
    21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 179, 443, 465, 587,
    993, 995, 1194, 3306, 3389, 5060, 5432, 8080, 8443,
)

#: IID values that hex-spell a service port (e.g. 0x443 reads "443").
_HEX_SPELLED_PORTS = frozenset(
    int(str(port), 16) for port in SERVICE_PORTS
    if all(ch in "0123456789" for ch in str(port))
)

#: IID values that are a service port in plain binary.
_BINARY_PORTS = frozenset(SERVICE_PORTS)

#: Threshold below which a zero-padded IID counts as low-byte rather than a
#: spelled port: ``::53`` is a low-byte host number, ``::443`` is a port.
_LOW_BYTE_PORT_CUTOFF = 0x100

#: Hex "words" that mark a manually chosen, wordy IID.
_HEX_WORDS = frozenset((
    0xCAFE, 0xBABE, 0xDEAD, 0xBEEF, 0xFACE, 0xF00D, 0xFEED, 0xC0DE,
    0xB00B, 0xD00D, 0xFADE, 0xACE, 0xBAD, 0xDAD, 0xABBA, 0xB00C,
))


def classify_address(addr: int) -> AddressType:
    """Classify an integer IPv6 address into its :class:`AddressType`.

    The classification only inspects the 64-bit interface identifier, which
    matches how the paper's ``addr6`` invocation treats telescope targets.
    """
    if not 0 <= addr <= MAX_ADDR:
        raise ValueError(f"address out of range: {addr}")
    iid = iid_of(addr)
    if iid == 0:
        return AddressType.SUBNET_ANYCAST
    if _is_eui64(iid):
        return AddressType.IEEE_DERIVED
    if _is_isatap(iid):
        return AddressType.ISATAP
    if _is_decimal_spelled_ipv4(iid):
        return AddressType.EMBEDDED_IPV4
    if iid <= 0xFFFF:
        if (iid >= _LOW_BYTE_PORT_CUTOFF
                and (iid in _HEX_SPELLED_PORTS or iid in _BINARY_PORTS)):
            return AddressType.EMBEDDED_PORT
        if iid in _HEX_WORDS:
            return AddressType.PATTERN_BYTES
        return AddressType.LOW_BYTE
    if _is_word_pattern(iid):
        return AddressType.PATTERN_BYTES
    if _is_binary_ipv4(iid):
        return AddressType.EMBEDDED_IPV4
    if _is_nibble_pattern(iid):
        return AddressType.PATTERN_BYTES
    return AddressType.RANDOMIZED


#: Stable code order for the vectorized classifier: ``TYPE_ORDER[code]``
#: maps a :func:`classify_iids` result back to its :class:`AddressType`.
TYPE_ORDER = tuple(AddressType)
_TYPE_CODE = {t: i for i, t in enumerate(TYPE_ORDER)}

#: 16-bit popcount table for the nibble-diversity check.
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                       dtype=np.uint8)

_PORT_VALUES = np.array(sorted(_HEX_SPELLED_PORTS | _BINARY_PORTS),
                        dtype=np.uint64)
_HEX_WORD_VALUES = np.array(sorted(_HEX_WORDS), dtype=np.uint64)


def _decimal_spelled_mask(iids: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_is_decimal_spelled_ipv4` over uint64 IIDs."""
    ok = np.ones(len(iids), dtype=bool)
    first_octet = np.zeros(len(iids), dtype=np.uint64)
    for position, shift in enumerate((48, 32, 16, 0)):
        group = (iids >> np.uint64(shift)) & np.uint64(0xFFFF)
        value = np.zeros(len(iids), dtype=np.uint64)
        digits_ok = np.ones(len(iids), dtype=bool)
        for weight, nshift in ((1000, 12), (100, 8), (10, 4), (1, 0)):
            nibble = (group >> np.uint64(nshift)) & np.uint64(0xF)
            digits_ok &= nibble <= 9
            value += nibble * np.uint64(weight)
        ok &= digits_ok & (value <= 255)
        if position == 0:
            first_octet = value
    return ok & (first_octet >= 10)


def classify_iids(iids: np.ndarray) -> np.ndarray:
    """Vectorized :func:`classify_address` over an array of 64-bit IIDs.

    Returns uint8 codes indexing :data:`TYPE_ORDER`; every predicate of
    the scalar classifier is evaluated as a column mask and precedence is
    resolved by ``np.select`` order.
    """
    iids = np.ascontiguousarray(iids, dtype=np.uint64)
    upper32 = (iids >> np.uint64(32)) & np.uint64(0xFFFFFFFF)

    anycast = iids == 0
    eui64 = ((iids >> np.uint64(24)) & np.uint64(0xFFFF)) == 0xFFFE
    isatap = (upper32 == 0x00005EFE) | (upper32 == 0x02005EFE)
    dec_ipv4 = _decimal_spelled_mask(iids)

    small = iids <= np.uint64(0xFFFF)
    port = small & (iids >= np.uint64(_LOW_BYTE_PORT_CUTOFF)) \
        & np.isin(iids, _PORT_VALUES)
    small_word = small & np.isin(iids, _HEX_WORD_VALUES)

    words = [(iids >> np.uint64(shift)) & np.uint64(0xFFFF)
             for shift in (48, 32, 16, 0)]
    all_equal = ((words[0] == words[1]) & (words[1] == words[2])
                 & (words[2] == words[3]))
    in_hw = [np.isin(w, _HEX_WORD_VALUES) for w in words]
    zero_or_hw = np.ones(len(iids), dtype=bool)
    any_hw = np.zeros(len(iids), dtype=bool)
    for w, hw in zip(words, in_hw):
        zero_or_hw &= hw | (w == 0)
        any_hw |= hw
    word_pattern = all_equal | (zero_or_hw & any_hw)

    bin_ipv4 = (upper32 == 0) \
        & (((iids >> np.uint64(24)) & np.uint64(0xFF)) >= 1)

    nibble_mask = np.zeros(len(iids), dtype=np.uint16)
    one = np.uint16(1)
    for shift in range(0, 64, 4):
        nibble = ((iids >> np.uint64(shift)) & np.uint64(0xF)) \
            .astype(np.uint16)
        nibble_mask |= one << nibble
    nibble_pattern = _POPCOUNT16[nibble_mask] <= 3

    code = _TYPE_CODE
    return np.select(
        [anycast, eui64, isatap, dec_ipv4, port, small_word, small,
         word_pattern, bin_ipv4, nibble_pattern],
        [code[AddressType.SUBNET_ANYCAST], code[AddressType.IEEE_DERIVED],
         code[AddressType.ISATAP], code[AddressType.EMBEDDED_IPV4],
         code[AddressType.EMBEDDED_PORT], code[AddressType.PATTERN_BYTES],
         code[AddressType.LOW_BYTE], code[AddressType.PATTERN_BYTES],
         code[AddressType.EMBEDDED_IPV4], code[AddressType.PATTERN_BYTES]],
        default=code[AddressType.RANDOMIZED]).astype(np.uint8)


def _is_eui64(iid: int) -> bool:
    """EUI-64 derived IIDs carry 0xFFFE in IID bytes 3-4."""
    return (iid >> 24) & 0xFFFF == 0xFFFE


def _is_isatap(iid: int) -> bool:
    """ISATAP IIDs start with 0000:5efe or 0200:5efe (RFC 5214)."""
    upper = (iid >> 32) & 0xFFFFFFFF
    return upper in (0x00005EFE, 0x02005EFE)


def _is_decimal_spelled_ipv4(iid: int) -> bool:
    """True for IIDs like ``::192:0:2:1`` spelling a dotted quad.

    Every 16-bit group, printed as hex, must read as a decimal octet
    (0-255); the first group must be >= 10 to avoid swallowing low-byte
    addresses such as ``::1:2``.
    """
    groups = [(iid >> shift) & 0xFFFF for shift in (48, 32, 16, 0)]
    octets = []
    for group in groups:
        text = f"{group:x}"
        if any(ch not in "0123456789" for ch in text):
            return False
        value = int(text)
        if value > 255:
            return False
        octets.append(value)
    return octets[0] >= 10


def _is_binary_ipv4(iid: int) -> bool:
    """True for IIDs whose low 32 bits binary-embed an IPv4 address.

    Requires the upper IID half to be zero and a plausible first octet
    (>= 1). Values <= 0xFFFF are excluded upstream (low-byte wins).
    """
    if iid >> 32:
        return False
    return (iid >> 24) & 0xFF >= 1


def _is_word_pattern(iid: int) -> bool:
    """Hex-word based patterns (``::cafe:cafe``); checked before the
    binary-IPv4 heuristic so repeated words below 2^32 stay patterns."""
    words = [(iid >> shift) & 0xFFFF for shift in (48, 32, 16, 0)]
    if len(set(words)) == 1:
        return True
    return all(word in _HEX_WORDS or word == 0 for word in words) \
        and any(word in _HEX_WORDS for word in words)


def _is_nibble_pattern(iid: int) -> bool:
    """Low-nibble-diversity patterns; checked after binary IPv4 so sparse
    embedded addresses like 10.0.0.1 classify as embedded-ipv4."""
    nibbles = [(iid >> shift) & 0xF for shift in range(60, -4, -4)]
    return len(set(nibbles)) <= 3
