"""Address generators used by simulated scanners.

Each generator produces integer addresses of a specific RFC 7707 category
inside a given prefix, mirroring the strategies the paper observes: low-byte
probing, randomized IIDs, structured prefix traversal, IPv4/port embedding,
EUI-64 and ISATAP patterns.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import PrefixError
from repro.net.addr import ADDR_BITS, random_bits
from repro.net.addrtypes import SERVICE_PORTS, _HEX_WORDS
from repro.net.prefix import Prefix

_WORD_CHOICES = tuple(sorted(_HEX_WORDS))
_DECIMAL_PORTS = tuple(
    p for p in SERVICE_PORTS
    if p >= 0x100 and all(ch in "0123456789" for ch in str(p))
)


def low_byte_address(prefix: Prefix, host: int = 1) -> int:
    """The ``::host`` address of ``prefix`` (default the low-byte ``::1``)."""
    if not 1 <= host <= 0xFFFF:
        raise PrefixError(f"low-byte host out of range: {host}")
    return prefix.network | host


def subnet_router_anycast(prefix: Prefix) -> int:
    """The Subnet-Router anycast (all-zero IID) address of ``prefix``."""
    return prefix.network


def random_iid_address(prefix: Prefix, rng: np.random.Generator,
                       subnet_len: int = 64) -> int:
    """Random /64 subnet of ``prefix`` with a uniformly random 64-bit IID.

    Prefixes more specific than ``subnet_len`` fall back to a plain
    uniform address inside the prefix (there is no whole IID to fill).
    """
    if prefix.length > subnet_len:
        return prefix.random_address(rng)
    subnet = random_subnet(prefix, rng, subnet_len)
    iid = random_bits(rng, 64)
    return subnet.network | iid


def embedded_ipv4_address(prefix: Prefix, rng: np.random.Generator,
                          subnet_len: int = 64) -> int:
    """IID decimal-spelling a plausible IPv4 address (``::192:0:2:1``)."""
    subnet = random_subnet(prefix, rng, subnet_len)
    octets = (int(rng.integers(10, 224)), int(rng.integers(0, 256)),
              int(rng.integers(0, 256)), int(rng.integers(1, 255)))
    iid = 0
    for octet in octets:
        iid = (iid << 16) | int(str(octet), 16)
    return subnet.network | iid


def embedded_port_address(prefix: Prefix, rng: np.random.Generator,
                          subnet_len: int = 64, port: int | None = None) -> int:
    """IID hex-spelling a well-known service port (``::443``)."""
    subnet = random_subnet(prefix, rng, subnet_len)
    if port is None:
        port = int(rng.choice(_DECIMAL_PORTS))
    return subnet.network | int(str(port), 16)


def eui64_address(prefix: Prefix, rng: np.random.Generator,
                  subnet_len: int = 64) -> int:
    """IID derived from a random MAC via EUI-64 (``ff:fe`` infix)."""
    subnet = random_subnet(prefix, rng, subnet_len)
    mac = int(rng.integers(0, 1 << 48))
    upper = (mac >> 24) & 0xFFFFFF
    lower = mac & 0xFFFFFF
    iid = ((upper ^ 0x020000) << 40) | (0xFFFE << 24) | lower
    return subnet.network | iid


def isatap_address(prefix: Prefix, rng: np.random.Generator,
                   subnet_len: int = 64) -> int:
    """ISATAP IID embedding a random IPv4 address (RFC 5214)."""
    subnet = random_subnet(prefix, rng, subnet_len)
    ipv4 = int(rng.integers(0x01000000, 0xE0000000))
    return subnet.network | (0x00005EFE << 32) | ipv4


def wordy_address(prefix: Prefix, rng: np.random.Generator,
                  subnet_len: int = 64) -> int:
    """Pattern-bytes IID built from a repeated hex word (``::cafe:cafe...``)."""
    subnet = random_subnet(prefix, rng, subnet_len)
    word = int(rng.choice(_WORD_CHOICES))
    repeats = int(rng.integers(1, 5))
    iid = 0
    for _ in range(repeats):
        iid = (iid << 16) | word
    return subnet.network | iid


def iterate_low_bytes(prefix: Prefix, subnet_len: int = 64,
                      hosts: tuple[int, ...] = (1,),
                      max_subnets: int | None = None) -> Iterator[int]:
    """Walk subnets of ``prefix`` in order, yielding low-byte targets.

    This is the classic structured traversal visible in the paper's
    Figure 13: subnets iterate lexicographically, each probed at ``::h``.
    """
    if subnet_len < prefix.length or subnet_len > ADDR_BITS:
        raise PrefixError(f"invalid subnet length {subnet_len} for {prefix}")
    count = 1 << (subnet_len - prefix.length)
    if max_subnets is not None:
        count = min(count, max_subnets)
    step = 1 << (ADDR_BITS - subnet_len)
    for index in range(count):
        base = prefix.network + index * step
        for host in hosts:
            yield base | host


def structured_sweep(prefix: Prefix, rng: np.random.Generator,
                     count: int, subnet_len: int = 64,
                     stride: int | None = None) -> list[int]:
    """A bounded structured scan: ordered subnets with low-byte IIDs.

    ``stride`` subnets are skipped between probes so large prefixes are
    covered coarsely (as coarse-grained scanners do); when omitted, a stride
    is derived so ``count`` probes span the whole prefix.
    """
    if count <= 0:
        return []
    if subnet_len < prefix.length:
        # keep the sweep granular but never less specific than the prefix
        subnet_len = min(prefix.length + 16, ADDR_BITS)
    total = 1 << (subnet_len - prefix.length)
    if stride is None:
        stride = max(1, total // count)
    step = (1 << (ADDR_BITS - subnet_len)) * stride
    start = prefix.network
    host = int(rng.integers(1, 16))
    targets = []
    addr = start
    for _ in range(count):
        if not prefix.contains_address(addr):
            break
        targets.append(addr | host)
        addr += step
    return targets


def random_targets(prefix: Prefix, rng: np.random.Generator,
                   count: int) -> list[int]:
    """``count`` independent uniformly random addresses inside ``prefix``."""
    return [prefix.random_address(rng) for _ in range(max(0, count))]


def random_subnet(prefix: Prefix, rng: np.random.Generator,
                  subnet_len: int) -> Prefix:
    """A uniformly random ``/subnet_len`` inside ``prefix``.

    Raises:
        PrefixError: if ``prefix`` is more specific than ``subnet_len`` —
            callers would otherwise OR IID patterns over routed bits and
            generate addresses *outside* the prefix.
    """
    if subnet_len < prefix.length:
        raise PrefixError(
            f"cannot take a /{subnet_len} subnet of the more-specific "
            f"{prefix}; IID-pattern generators need prefixes of at most "
            f"/{subnet_len}")
    span = subnet_len - prefix.length
    index = random_bits(rng, span) if span else 0
    return prefix.subnet(subnet_len, index)
