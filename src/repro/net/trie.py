"""Binary trie for longest-prefix matching.

Used by the routing fabric to map destination addresses to telescopes and by
BGP RIBs to resolve best-covering routes. Values are arbitrary Python
objects attached to prefixes.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

from repro.errors import PrefixError
from repro.net.addr import ADDR_BITS
from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[_Node | None] = [None, None]
        self.value: Any = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps :class:`Prefix` keys to values with longest-prefix lookup.

    Supports exact insert/delete/get plus :meth:`longest_match` over
    integer addresses. Iteration yields (prefix, value) pairs in
    depth-first (address) order.
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix, _MISSING) is not _MISSING

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._descend(prefix, create=True)
        assert node is not None
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix, default: Any = None) -> Any:
        """Exact-match lookup; returns ``default`` when absent."""
        node = self._descend(prefix, create=False)
        if node is None or not node.has_value:
            return default
        return node.value

    def remove(self, prefix: Prefix) -> V:
        """Delete the exact entry at ``prefix`` and return its value.

        Raises:
            KeyError: if no exact entry exists.
        """
        node = self._descend(prefix, create=False)
        if node is None or not node.has_value:
            raise KeyError(str(prefix))
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        return value

    def longest_match(self, addr: int) -> tuple[Prefix, V] | None:
        """Most-specific entry covering integer address ``addr``.

        Returns ``(prefix, value)`` or ``None`` if nothing covers the
        address.
        """
        node = self._root
        best: tuple[int, Any] | None = None
        network = 0
        depth = 0
        if node.has_value:
            best = (0, node.value)
        while depth < ADDR_BITS:
            bit = (addr >> (ADDR_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (ADDR_BITS - 1 - depth)
            depth += 1
            node = child
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        best_len, value = best
        mask_net = addr & (
            0 if best_len == 0
            else ((1 << best_len) - 1) << (ADDR_BITS - best_len)
        )
        return Prefix(mask_net, best_len), value

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Yield all entries in address order (DFS, shorter prefixes first)."""
        stack: list[tuple[_Node, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield Prefix(network, depth), node.value
            if depth < ADDR_BITS:
                # push right first so left pops first (address order)
                right = node.children[1]
                if right is not None:
                    stack.append(
                        (right, network | (1 << (ADDR_BITS - 1 - depth)), depth + 1)
                    )
                left = node.children[0]
                if left is not None:
                    stack.append((left, network, depth + 1))

    def _descend(self, prefix: Prefix, create: bool) -> _Node | None:
        if not isinstance(prefix, Prefix):
            raise PrefixError(f"expected Prefix, got {type(prefix).__name__}")
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (ADDR_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _Node()
                node.children[bit] = child
            node = child
        return node


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
