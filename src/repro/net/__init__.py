"""IPv6 address and prefix primitives.

Addresses are plain 128-bit Python integers throughout the library for
speed; this module provides parsing, formatting, prefix arithmetic, a
longest-prefix-match trie, RFC 7707 address-type classification, and the
address generators scanners use.
"""

from repro.net.addr import (
    MAX_ADDR,
    addr_to_int,
    addr_to_str,
    explode,
    iid_of,
    nibbles_of,
    parse_addr,
)
from repro.net.addrtypes import AddressType, classify_address
from repro.net.prefix import Prefix, PrefixSet
from repro.net.trie import PrefixTrie

__all__ = [
    "MAX_ADDR",
    "parse_addr",
    "addr_to_int",
    "addr_to_str",
    "explode",
    "nibbles_of",
    "iid_of",
    "Prefix",
    "PrefixSet",
    "PrefixTrie",
    "AddressType",
    "classify_address",
]
