"""Vectorized longest-prefix matching over packet columns.

The per-packet data plane resolves each destination through
:class:`repro.net.trie.PrefixTrie`. The batched emission kernel instead
matches whole destination *columns* (the two uint64 halves of each
address) against a small prefix table in O(prefixes) vectorized passes —
or, when every prefix fits in the high 64 bits (true for the whole
deployment: nothing is more specific than a /48), in a single
``searchsorted`` over a precomputed disjoint interval table.

Both matchers resolve ties like a routing table: the most-specific
covering prefix wins. They are differential-tested against the trie in
``tests/test_net_lpm.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PrefixError
from repro.net.addr import ADDR_BITS
from repro.net.prefix import Prefix

_MASK64 = (1 << 64) - 1

#: Slot returned for addresses no prefix covers.
NO_MATCH = -1


def split_mask(length: int) -> tuple[int, int]:
    """(mask_hi, mask_lo) selecting the top ``length`` bits of an address."""
    if not 0 <= length <= ADDR_BITS:
        raise PrefixError(f"invalid prefix length {length}")
    mask = ((1 << length) - 1) << (ADDR_BITS - length) if length else 0
    return mask >> 64, mask & _MASK64


def contains_mask(prefix: Prefix, addr_hi: np.ndarray,
                  addr_lo: np.ndarray) -> np.ndarray:
    """Boolean mask of the column rows that fall inside ``prefix``."""
    mask_hi, mask_lo = split_mask(prefix.length)
    net = prefix.network
    hit = (addr_hi & np.uint64(mask_hi)) == np.uint64((net >> 64) & mask_hi)
    if mask_lo:
        hit &= (addr_lo & np.uint64(mask_lo)) \
            == np.uint64(net & mask_lo)
    return hit


class MaskedPrefixMatcher:
    """General vectorized LPM: one mask/value pass per prefix.

    Prefixes are checked most-specific first, so the first hit per row is
    the longest match — identical semantics to
    :meth:`repro.net.trie.PrefixTrie.longest_match`.
    """

    __slots__ = ("_entries", "default")

    def __init__(self, entries: Sequence[tuple[Prefix, int]],
                 default: int = NO_MATCH) -> None:
        ordered = sorted(entries, key=lambda e: e[0].length, reverse=True)
        self._entries = []
        for prefix, slot in ordered:
            mask_hi, mask_lo = split_mask(prefix.length)
            net = prefix.network
            self._entries.append((
                np.uint64(mask_hi), np.uint64((net >> 64) & mask_hi),
                np.uint64(mask_lo), np.uint64(net & mask_lo), slot))
        self.default = default

    def lookup(self, addr_hi: np.ndarray, addr_lo: np.ndarray) -> np.ndarray:
        """Per-row slot of the most-specific covering prefix."""
        slots = np.full(len(addr_hi), self.default, dtype=np.int16)
        unresolved = np.ones(len(addr_hi), dtype=bool)
        for mask_hi, net_hi, mask_lo, net_lo, slot in self._entries:
            hit = unresolved & ((addr_hi & mask_hi) == net_hi)
            if mask_lo:
                hit &= (addr_lo & mask_lo) == net_lo
            if hit.any():
                slots[hit] = slot
                unresolved &= ~hit
                if not unresolved.any():
                    break
        return slots


class IntervalRouteTable:
    """Single-``searchsorted`` LPM for prefix sets no deeper than /64.

    The covered address space is decomposed into disjoint ``dst_hi``
    intervals, each painted with the slot of its most-specific covering
    prefix (:data:`NO_MATCH` for gaps). Lookups then cost two vector ops
    regardless of table size — the shape the per-session hot path needs,
    where batches are small and per-prefix passes would dominate.
    """

    __slots__ = ("_starts", "_slots")

    def __init__(self, entries: Sequence[tuple[Prefix, int]],
                 default: int = NO_MATCH) -> None:
        for prefix, _ in entries:
            if prefix.length > 64:
                raise PrefixError(
                    f"interval route table needs prefixes of at most /64, "
                    f"got {prefix}")
        # elementary intervals: every distinct start/end of any prefix
        bounds = {0}
        spans = []
        for prefix, slot in entries:
            start = prefix.network >> 64
            end = start + (1 << (64 - prefix.length))
            spans.append((start, end, prefix.length, slot))
            bounds.add(start)
            if end <= _MASK64:
                bounds.add(end)
        starts = sorted(bounds)
        slots = []
        for start in starts:
            best_len, best_slot = -1, default
            for span_start, span_end, length, slot in spans:
                if span_start <= start < span_end and length > best_len:
                    best_len, best_slot = length, slot
            slots.append(best_slot)
        self._starts = np.array(starts, dtype=np.uint64)
        self._slots = np.array(slots, dtype=np.int16)

    def lookup(self, addr_hi: np.ndarray,
               addr_lo: np.ndarray | None = None) -> np.ndarray:
        """Per-row slot; ``addr_lo`` is accepted (and ignored) for API
        symmetry with :class:`MaskedPrefixMatcher`."""
        index = np.searchsorted(self._starts, addr_hi, side="right") - 1
        return self._slots[index]


def build_matcher(entries: Sequence[tuple[Prefix, int]],
                  default: int = NO_MATCH):
    """The fastest matcher the entry set supports."""
    if all(prefix.length <= 64 for prefix, _ in entries):
        return IntervalRouteTable(entries, default=default)
    return MaskedPrefixMatcher(entries, default=default)
