"""IPv6 addresses as 128-bit integers.

The library stores addresses as plain ``int`` (0 .. 2**128-1). The functions
here convert between integers and textual notation and expose the pieces of
an address that the analyses care about (nibbles, interface identifier).
Parsing/formatting delegates to :mod:`ipaddress` for full RFC 4291
conformance; hot paths never touch strings.
"""

from __future__ import annotations

import ipaddress

from repro.errors import AddressError

#: Number of bits in an IPv6 address.
ADDR_BITS = 128

#: Largest representable address value.
MAX_ADDR = (1 << ADDR_BITS) - 1

#: Mask selecting the 64-bit interface identifier (IID).
IID_MASK = (1 << 64) - 1


def parse_addr(text: str) -> int:
    """Parse an IPv6 address string into its integer value.

    Raises:
        AddressError: if ``text`` is not a valid IPv6 address.
    """
    try:
        return int(ipaddress.IPv6Address(text))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise AddressError(f"invalid IPv6 address {text!r}: {exc}") from exc


def addr_to_int(value: int | str) -> int:
    """Coerce an address given as int or string to its integer value."""
    if isinstance(value, int):
        if not 0 <= value <= MAX_ADDR:
            raise AddressError(f"address out of range: {value}")
        return value
    return parse_addr(value)


def addr_to_str(value: int) -> str:
    """Render the compressed textual form of an integer address."""
    if not 0 <= value <= MAX_ADDR:
        raise AddressError(f"address out of range: {value}")
    return str(ipaddress.IPv6Address(value))


def explode(value: int) -> str:
    """Render the full 8-group hexadecimal form (no ``::`` compression)."""
    if not 0 <= value <= MAX_ADDR:
        raise AddressError(f"address out of range: {value}")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -1, -16)]
    return ":".join(f"{g:04x}" for g in groups)


def nibbles_of(value: int) -> tuple[int, ...]:
    """The 32 hex digits of an address, most significant first.

    This is the representation behind the paper's Figure 12/13 nibble plots.
    """
    if not 0 <= value <= MAX_ADDR:
        raise AddressError(f"address out of range: {value}")
    return tuple((value >> shift) & 0xF for shift in range(124, -1, -4))


def from_nibbles(nibbles: tuple[int, ...] | list[int]) -> int:
    """Inverse of :func:`nibbles_of`."""
    if len(nibbles) != 32:
        raise AddressError(f"expected 32 nibbles, got {len(nibbles)}")
    value = 0
    for nib in nibbles:
        if not 0 <= nib <= 0xF:
            raise AddressError(f"nibble out of range: {nib}")
        value = (value << 4) | nib
    return value


def iid_of(value: int) -> int:
    """Extract the 64-bit interface identifier (low half) of an address."""
    if not 0 <= value <= MAX_ADDR:
        raise AddressError(f"address out of range: {value}")
    return value & IID_MASK


def subnet_bits(value: int, prefix_len: int, subnet_len: int = 64) -> int:
    """Bits between the routed prefix and the IID (the 'subnet' part).

    For a telescope announced as a ``/prefix_len``, the paper analyzes the
    bits ``prefix_len .. subnet_len`` separately from the IID (Appendix B).
    """
    if not 0 <= prefix_len <= subnet_len <= ADDR_BITS:
        raise AddressError(
            f"invalid section: prefix_len={prefix_len}, subnet_len={subnet_len}"
        )
    width = subnet_len - prefix_len
    if width == 0:
        return 0
    return (value >> (ADDR_BITS - subnet_len)) & ((1 << width) - 1)


def random_bits(rng, bits: int) -> int:
    """A uniformly random ``bits``-wide integer from a numpy Generator.

    numpy's ``integers`` is bounded to int64, so wide values are composed
    from 32-bit draws.
    """
    if bits < 0:
        raise AddressError(f"negative bit width: {bits}")
    value = 0
    remaining = bits
    while remaining > 0:
        chunk = min(32, remaining)
        value = (value << chunk) | int(rng.integers(0, 1 << chunk))
        remaining -= chunk
    return value


def embedded_ipv4(value: int) -> str:
    """Render the low 32 bits as a dotted quad (for IPv4-embedded IIDs)."""
    low = value & 0xFFFFFFFF
    return ".".join(str((low >> shift) & 0xFF) for shift in (24, 16, 8, 0))
