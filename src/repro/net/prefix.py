"""IPv6 prefixes and prefix sets.

A :class:`Prefix` is an immutable (network, length) pair backed by integers.
It supports containment tests, splitting into more-specifics (the operation
behind the paper's bi-weekly announcement schedule, Fig. 2), and the
"low-byte address" notion the split rule is defined on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import PrefixError
from repro.net.addr import (ADDR_BITS, MAX_ADDR, addr_to_int, addr_to_str,
                            random_bits)


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv6 prefix ``network/length``.

    ``network`` is stored masked to ``length`` bits, so two textual spellings
    of the same prefix compare equal. Ordering is (network, length), which
    sorts covering prefixes before their subnets at equal network values.
    """

    network: int
    length: int
    #: cached ``hash((network, length))`` — prefixes key every RIB dict
    #: in the BGP fabric, so recomputing the tuple hash per lookup
    #: dominates update processing at convergence scale.
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _str: str | None = field(default=None, init=False, repr=False,
                             compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ADDR_BITS:
            raise PrefixError(f"invalid prefix length: {self.length}")
        if not 0 <= self.network <= MAX_ADDR:
            raise PrefixError(f"network out of range: {self.network}")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)
        object.__setattr__(self, "_hash", hash((self.network, self.length)))

    def __hash__(self) -> int:
        return self._hash

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``'2001:db8::/32'`` notation."""
        try:
            addr_text, _, len_text = text.partition("/")
            if not len_text:
                raise PrefixError(f"missing /length in prefix {text!r}")
            return cls(addr_to_int(addr_text), int(len_text))
        except (ValueError, PrefixError) as exc:
            raise PrefixError(f"invalid prefix {text!r}: {exc}") from exc

    # -- basic properties ---------------------------------------------------

    @property
    def mask(self) -> int:
        """Network mask as an integer."""
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (ADDR_BITS - self.length)

    @property
    def first(self) -> int:
        """Lowest address in the prefix."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the prefix."""
        return self.network | (MAX_ADDR >> self.length if self.length else MAX_ADDR)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (ADDR_BITS - self.length)

    @property
    def low_byte_address(self) -> int:
        """The ``::1`` address of this prefix (paper §3.1 split rule)."""
        return self.network | 1

    def __str__(self) -> str:
        if self._str is None:
            object.__setattr__(
                self, "_str", f"{addr_to_str(self.network)}/{self.length}")
        return self._str

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Prefix):
            return self.covers(item)
        if isinstance(item, int):
            return self.contains_address(item)
        # returning NotImplemented from __contains__ would be coerced to
        # a truthy value by the `in` operator — fail loudly instead
        raise TypeError(
            f"cannot test membership of {type(item).__name__} in Prefix")

    # -- containment ---------------------------------------------------------

    def contains_address(self, addr: int) -> bool:
        """True if integer address ``addr`` falls inside this prefix."""
        return (addr & self.mask) == self.network

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is this prefix or a more-specific of it."""
        return (other.length >= self.length
                and (other.network & self.mask) == self.network)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the address ranges intersect at all."""
        return self.covers(other) or other.covers(self)

    # -- derivation -----------------------------------------------------------

    def split(self) -> tuple["Prefix", "Prefix"]:
        """Split into the two equal-size more-specifics (low half, high half).

        Raises:
            PrefixError: if this is already a /128.
        """
        if self.length >= ADDR_BITS:
            raise PrefixError(f"cannot split a /{ADDR_BITS}: {self}")
        child_len = self.length + 1
        low = Prefix(self.network, child_len)
        high = Prefix(self.network | (1 << (ADDR_BITS - child_len)), child_len)
        return low, high

    def subnet(self, new_length: int, index: int) -> "Prefix":
        """The ``index``-th subnet of size ``/new_length`` inside this prefix."""
        if new_length < self.length or new_length > ADDR_BITS:
            raise PrefixError(
                f"cannot take /{new_length} subnet of {self}"
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise PrefixError(
                f"subnet index {index} out of range for /{new_length} of {self}"
            )
        network = self.network | (index << (ADDR_BITS - new_length))
        return Prefix(network, new_length)

    def subnet_index(self, addr: int, subnet_length: int) -> int:
        """Index of the ``/subnet_length`` subnet of this prefix holding ``addr``.

        Raises:
            PrefixError: if ``addr`` is outside this prefix or the length is
                shorter than this prefix's.
        """
        if subnet_length < self.length or subnet_length > ADDR_BITS:
            raise PrefixError(f"invalid subnet length {subnet_length} for {self}")
        if not self.contains_address(addr):
            raise PrefixError(f"address not inside {self}")
        return (addr >> (ADDR_BITS - subnet_length)) & (
            (1 << (subnet_length - self.length)) - 1
        )

    def random_address(self, rng) -> int:
        """Uniformly random address inside this prefix.

        ``rng`` is a :class:`numpy.random.Generator`; host bits wider than
        64 are drawn in two 64-bit halves to keep full entropy.
        """
        host_bits = ADDR_BITS - self.length
        if host_bits == 0:
            return self.network
        return self.network | random_bits(rng, host_bits)


class PrefixSet:
    """A mutable collection of prefixes with covering-aware membership.

    Used for announcement sets: ``lookup`` finds the most-specific member
    covering an address (linear in set size, fine for the <=17 prefixes of
    the experiment; use :class:`repro.net.trie.PrefixTrie` for large sets).
    """

    def __init__(self, prefixes: Iterable[Prefix] = ()) -> None:
        self._prefixes: set[Prefix] = set(prefixes)

    def __len__(self) -> int:
        return len(self._prefixes)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(sorted(self._prefixes))

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._prefixes

    def add(self, prefix: Prefix) -> None:
        self._prefixes.add(prefix)

    def discard(self, prefix: Prefix) -> None:
        self._prefixes.discard(prefix)

    def covering(self, addr: int) -> list[Prefix]:
        """All member prefixes containing ``addr``, least-specific first."""
        hits = [p for p in self._prefixes if p.contains_address(addr)]
        hits.sort(key=lambda p: p.length)
        return hits

    def lookup(self, addr: int) -> Prefix | None:
        """Most-specific member containing ``addr``, or ``None``."""
        hits = self.covering(addr)
        return hits[-1] if hits else None

    def most_specific(self) -> Prefix | None:
        """The longest member (ties broken by lowest network), or ``None``."""
        if not self._prefixes:
            return None
        return max(self._prefixes, key=lambda p: (p.length, -p.network))
