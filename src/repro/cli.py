"""Command-line interface.

Subcommands:

- ``repro schedule`` — print the Fig. 2 announcement plan.
- ``repro run``      — simulate a campaign and print a summary.
- ``repro tables``   — simulate (or reuse a seed) and print Tables 2-8.
- ``repro figures``  — print the figure-data summaries.
- ``repro save``     — simulate and persist the corpus (v2 chunked
  store by default; ``--format-version 1`` writes the legacy layout).
- ``repro load``     — analyze a saved corpus (lazy mmap for v2).
- ``repro migrate-store`` — rewrite a saved corpus as the v2 layout.
- ``repro runs``     — browse the run ledger (``list``, ``show``, and
  ``compare``, which exits non-zero on a stage-time regression).

Every pipeline subcommand accepts ``--serve-obs PORT`` (live /metrics,
/status, /events and /trace over HTTP while it runs), ``--events PATH``
(structured JSONL run-event log) and — for the simulating commands —
``--ledger DIR`` (durable run manifests for ``repro runs``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.analysis.context import CorpusAnalysis
from repro.analysis import figures as figure_module
from repro.analysis.parallel import fan_out
from repro.analysis.tables import (table2, table3, table4, table5, table6,
                                   table7, table8)
from repro.bgp.controller import build_split_schedule
from repro.errors import ExperimentError, ReproError
from repro.experiment import ExperimentConfig, run_experiment
from repro.net.prefix import Prefix
from repro.sim.clock import WEEK
from repro.telescope.deployment import T1_PREFIX

FIGURES = ("fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
           "fig11", "fig12", "fig14", "fig15", "fig16", "fig17")

#: Sim-time spacing of ``-v`` heartbeat lines (one per simulated week).
HEARTBEAT_INTERVAL = WEEK

log = obs.log.get_logger("cli")


def _add_obs_flags(cmd: argparse.ArgumentParser) -> None:
    """Observability flags shared by every pipeline subcommand."""
    cmd.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace-event JSON (Perfetto) "
                          "of the run")
    cmd.add_argument("--metrics", metavar="PATH", default=None,
                     help="write a metrics snapshot JSON of the run")
    cmd.add_argument("--log-level", choices=obs.log.LEVELS, default="info",
                     help="stderr log verbosity (default info)")
    cmd.add_argument("-v", "--verbose", action="store_true",
                     help="log a sim-time heartbeat (events/sec, queue "
                          "depth, ETA) while simulating")
    cmd.add_argument("--serve-obs", metavar="PORT", type=int, default=None,
                     help="serve live /metrics (Prometheus), /status, "
                          "/events and /trace on this port while the "
                          "command runs (0 = ephemeral)")
    cmd.add_argument("--events", metavar="PATH", default=None,
                     help="append the structured run-event log (JSONL: "
                          "stage transitions, heartbeats, checkpoints, "
                          "faults, quarantines) to this file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Detailed Measurement View on IPv6 "
                    "Scanners and Their Adaption to BGP Signals'")
    sub = parser.add_subparsers(dest="command", required=True)

    schedule = sub.add_parser("schedule",
                              help="print the Fig. 2 announcement plan")
    schedule.add_argument("--prefix", default=str(T1_PREFIX),
                          help="covering prefix to split (default: "
                               f"{T1_PREFIX})")
    schedule.add_argument("--cycles", type=int, default=16,
                          help="number of split cycles (default 16)")

    for name, help_text in (
            ("run", "simulate a campaign and print a summary"),
            ("tables", "simulate and print Tables 2-8"),
            ("figures", "simulate and print figure-data summaries"),
            ("guidance", "simulate and print the §8 operator guidance"),
            ("validate", "simulate and score the classifiers against "
                         "the ground truth"),
            ("save", "simulate a campaign and save the corpus")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=42)
        cmd.add_argument("--scale", type=float, default=0.1,
                         help="population scale (default 0.1)")
        cmd.add_argument("--faults", metavar="PLAN.json", default=None,
                         help="arm a fault-injection plan (blackouts, "
                              "BGP flaps, packet loss) from a JSON file")
        cmd.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="write crash-safe checkpoints to this "
                              "directory while simulating")
        cmd.add_argument("--checkpoint-every", metavar="SIMSECS",
                         type=float, default=None,
                         help="sim-time between checkpoints "
                              "(default: one simulated week)")
        cmd.add_argument("--checkpoint-budget", metavar="FRAC",
                         type=float, default=0.05,
                         help="cap checkpoint overhead at this fraction "
                              "of wall time, skipping boundaries over "
                              "budget (default 0.05; 0 writes every "
                              "boundary)")
        cmd.add_argument("--resume", action="store_true",
                         help="continue from --checkpoint-dir instead of "
                              "starting fresh: the newest valid snapshot "
                              "of an unsharded run, or (sharded) only "
                              "the shards the manifest shows incomplete")
        cmd.add_argument("--shards", metavar="N|auto", default=None,
                         help="build the corpus with N supervised "
                              "worker processes ('auto' = one per CPU); "
                              "byte-identical to the unsharded build. "
                              "With --checkpoint-dir, completed shards "
                              "persist and --resume re-runs only the "
                              "missing ones")
        cmd.add_argument("--shard-retries", metavar="N", type=int,
                         default=None,
                         help="max executions per shard before the run "
                              "fails or degrades (default 3; 1 = fail "
                              "fast)")
        cmd.add_argument("--shard-timeout", metavar="SECS", type=float,
                         default=None,
                         help="wall-clock budget for the heaviest "
                              "shard's first attempt; a worker making "
                              "no progress for its (load-scaled) budget "
                              "is killed and retried (default: no "
                              "timeout)")
        cmd.add_argument("--on-shard-failure", choices=("raise", "degrade"),
                         default="raise",
                         help="after a shard exhausts its retries: "
                              "'raise' aborts the run (default), "
                              "'degrade' quarantines the shard as "
                              "coverage gaps over its scanners' "
                              "traffic")
        cmd.add_argument("--ledger", metavar="DIR", default=None,
                         help="record the run in this ledger directory "
                              "(run.json manifest + event log; browse "
                              "with 'repro runs')")
        _add_obs_flags(cmd)
        if name in ("tables", "figures"):
            cmd.add_argument("--jobs", type=int, default=1,
                             help="generate artifacts with this many "
                                  "worker threads (default 1)")
        if name == "figures":
            cmd.add_argument("--only", choices=FIGURES, default=None,
                             help="print a single figure")
        if name == "save":
            cmd.add_argument("--out", required=True,
                             help="output directory for the corpus")
            cmd.add_argument("--format-version", type=int, default=None,
                             choices=(1, 2),
                             help="store format to write (default: 2, "
                                  "the chunked mmap layout)")
            cmd.add_argument("--chunk-rows", type=int, default=None,
                             help="rows per v2 chunk file (default "
                                  "65536)")

    load = sub.add_parser("load",
                          help="load a saved corpus and print Tables 2-8")
    load.add_argument("path", help="corpus directory written by 'save'")
    load.add_argument("--lenient", action="store_true",
                      help="quarantine corrupt segments/chunks (load them "
                           "empty with a coverage gap) instead of failing")
    _add_obs_flags(load)

    migrate = sub.add_parser(
        "migrate-store",
        help="rewrite a saved corpus as the v2 chunked mmap layout")
    migrate.add_argument("src", help="existing corpus directory (v1 or v2)")
    migrate.add_argument("dst", help="destination directory for the "
                                     "migrated v2 corpus")
    migrate.add_argument("--chunk-rows", type=int, default=None,
                         help="rows per v2 chunk file (default 65536)")
    _add_obs_flags(migrate)

    runs = sub.add_parser("runs", help="browse the run ledger")
    runs.add_argument("action", choices=("list", "show", "compare"),
                      help="list all runs, show one manifest, or diff "
                           "two runs' stage timings and metrics")
    runs.add_argument("run_ids", nargs="*",
                      help="run id (show) or OLD NEW (compare)")
    runs.add_argument("--ledger", metavar="DIR", required=True,
                      help="ledger directory written by --ledger runs")
    runs.add_argument("--threshold", type=float, default=0.10,
                      help="stage-time regression threshold for compare "
                           "(fractional, default 0.10)")
    return parser


def cmd_schedule(args: argparse.Namespace) -> int:
    prefix = Prefix.parse(args.prefix)
    schedule = build_split_schedule(prefix, num_cycles=args.cycles)
    print(f"announcement plan for {prefix} "
          f"({len(schedule)} cycles):")
    for cycle in schedule:
        prefixes = ", ".join(str(p) for p in cycle.prefixes)
        print(f"  cycle {cycle.index:2d} @ week "
              f"{cycle.announce_time / WEEK:4.0f}: {prefixes}")
    return 0


def _simulate(args: argparse.Namespace):
    from repro.experiment.driver import resume_experiment
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    run_id = getattr(args, "run_id", None)
    ledger_dir = getattr(args, "ledger", None)
    if getattr(args, "resume", False):
        if not checkpoint_dir:
            raise ExperimentError("--resume requires --checkpoint-dir")
        log.info("resuming from checkpoints in %s ...", checkpoint_dir)
        result = resume_experiment(checkpoint_dir, run_id=run_id,
                                   ledger_dir=ledger_dir)
    else:
        retries = getattr(args, "shard_retries", None)
        config = ExperimentConfig(
            seed=args.seed, scale=args.scale,
            retry_policy=({"max_attempts": retries}
                          if retries is not None else None),
            shard_timeout=getattr(args, "shard_timeout", None),
            on_shard_failure=getattr(args, "on_shard_failure", "raise"))
        faults = None
        if getattr(args, "faults", None):
            from repro.faults import FaultPlan
            faults = FaultPlan.from_file(args.faults)
            log.info("armed fault plan %s (%d blackouts, %d flaps, "
                     "loss %.3g)", args.faults, len(faults.blackouts),
                     len(faults.flaps), faults.loss_rate)
        weeks = config.duration / WEEK
        log.info("simulating %.0f weeks at scale %s (seed %s) ...",
                 weeks, args.scale, args.seed)
        budget = getattr(args, "checkpoint_budget", 0.05)
        shards = getattr(args, "shards", None)
        if shards is not None:
            log.info("sharded build: --shards %s", shards)
        result = run_experiment(
            config, faults=faults, checkpoint_dir=checkpoint_dir,
            checkpoint_interval=getattr(args, "checkpoint_every", None),
            checkpoint_budget=budget if budget > 0 else None,
            shards=shards, run_id=run_id, ledger_dir=ledger_dir)
    log.info("done in %.1fs: %s packets",
             result.wall_seconds, f"{result.corpus.total_packets():,}")
    return result


def cmd_run(args: argparse.Namespace) -> int:
    result = _simulate(args)
    corpus = result.corpus
    for telescope in corpus.telescopes():
        with obs.span("analysis.summary", telescope=telescope):
            packets = corpus.packets(telescope)
            print(f"{telescope}: {len(packets):,} packets, "
                  f"{len({p.src for p in packets}):,} sources, "
                  f"{len({p.src_asn for p in packets if p.src_asn}):,} ASes")
    total = sum(result.stage_seconds.values())
    print(f"stages ({total:.1f}s of {result.wall_seconds:.1f}s):")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:<20} {seconds:8.2f}s")
    if corpus.has_gaps():
        print("coverage gaps:")
        for telescope, windows in sorted(corpus.coverage_gaps.items()):
            spans = ", ".join(f"[{s:.0f}, {e:.0f})" for s, e in windows)
            print(f"  {telescope}: {spans} "
                  f"({corpus.covered_fraction(telescope):.1%} covered)")
    return 0


def _print_tables(analysis: CorpusAnalysis, jobs: int = 1) -> None:
    generators = {"table2": table2, "table3": table3, "table4": table4,
                  "table5": table5, "table6": table6, "table7": table7,
                  "table8": table8}
    if jobs > 1:
        # warm the shared sessionization once so parallel generators hit
        # the cache instead of racing to compute it
        analysis.all_sessions()
    results = fan_out(
        {name: (lambda g=g: g(analysis)) for name, g in generators.items()},
        jobs=jobs)
    for name in generators:
        result = results[name][1]
        if name == "table5":
            print(result.table_a.render())
            print()
            print(result.table_b.render())
        else:
            print(result.table.render())
        print()


def cmd_tables(args: argparse.Namespace) -> int:
    result = _simulate(args)
    _print_tables(CorpusAnalysis(result.corpus),
                  jobs=getattr(args, "jobs", 1))
    return 0


def cmd_guidance(args: argparse.Namespace) -> int:
    from repro.analysis.bias import bias_report
    from repro.analysis.guidance import derive_guidance
    result = _simulate(args)
    analysis = CorpusAnalysis(result.corpus)
    print(derive_guidance(analysis).render())
    print()
    print(bias_report(analysis).render())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import (EXCUSABLE, validate_network,
                                           validate_temporal,
                                           validate_tools)
    result = _simulate(args)
    temporal = validate_temporal(result)
    print(temporal.render("temporal classifier (truth > predicted)"))
    print(f"  accuracy: {temporal.accuracy():.3f} raw, "
          f"{temporal.accuracy(excuse=EXCUSABLE):.3f} excusing "
          "window clipping")
    network = validate_network(result)
    print(network.render("network-selection classifier"))
    print(f"  accuracy: {network.accuracy():.3f}")
    tools = validate_tools(result)
    print(tools.render("tool attribution"))
    print(f"  accuracy: {tools.accuracy():.3f}")
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from repro.experiment.store import (DEFAULT_CHUNK_ROWS, FORMAT_VERSION,
                                        save_corpus)
    result = _simulate(args)
    version = args.format_version or FORMAT_VERSION
    chunk_rows = args.chunk_rows or DEFAULT_CHUNK_ROWS
    path = save_corpus(result.corpus, args.out, format_version=version,
                       chunk_rows=chunk_rows)
    print(f"corpus written to {path} (format v{version})")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from repro.experiment.store import load_corpus
    corpus = load_corpus(args.path, strict=not args.lenient)
    log.info("loaded %s packets from %s",
             f"{corpus.total_packets():,}", args.path)
    _print_tables(CorpusAnalysis(corpus))
    return 0


def cmd_migrate_store(args: argparse.Namespace) -> int:
    from repro.experiment.store import DEFAULT_CHUNK_ROWS, migrate_store
    chunk_rows = args.chunk_rows or DEFAULT_CHUNK_ROWS
    path = migrate_store(args.src, args.dst, chunk_rows=chunk_rows)
    print(f"corpus migrated to {path} (format v2, "
          f"{chunk_rows} rows/chunk)")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    result = _simulate(args)
    analysis = CorpusAnalysis(result.corpus)
    names = (args.only,) if args.only else FIGURES
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        analysis.all_sessions()
    results = fan_out(
        {name: (lambda f=getattr(figure_module, name): f(analysis))
         for name in names},
        jobs=jobs)
    for name in names:
        print(results[name][1].render())
        print()
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import ledger as obsledger
    try:
        if args.action == "list":
            print(obsledger.render_runs_table(
                obsledger.list_runs(args.ledger)))
            return 0
        if args.action == "show":
            if len(args.run_ids) != 1:
                raise ExperimentError(
                    "'runs show' takes exactly one run id")
            print(json.dumps(
                obsledger.load_manifest(args.ledger, args.run_ids[0]),
                indent=2, default=str))
            return 0
        if len(args.run_ids) != 2:
            raise ExperimentError(
                "'runs compare' takes exactly two run ids (OLD NEW)")
        comparison = obsledger.compare_runs(
            args.ledger, args.run_ids[0], args.run_ids[1],
            threshold=args.threshold)
        print(comparison.render())
        # non-zero on regression, same contract as run_benches --compare
        return 1 if comparison.regressions else 0
    except FileNotFoundError as exc:
        raise ExperimentError(
            f"no such run in ledger {args.ledger}: {exc}") from exc


def _dispatch_with_obs(handler, args: argparse.Namespace) -> int:
    """Run a handler under the full telemetry stack when flags ask for it.

    - ``--trace/--metrics/-v`` install a :class:`FlightRecorder` for the
      handler's whole lifetime (so simulation *and* analysis spans land
      in one trace); exports are written even if the handler fails.
    - ``--events/--ledger/--serve-obs`` additionally install a run
      :class:`~repro.obs.events.EventLog` (under the ledger directory
      when only ``--ledger`` is given) and stamp the run id onto every
      log line.
    - ``--serve-obs PORT`` serves /metrics, /status, /events and /trace
      live for the duration of the command.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    verbose = getattr(args, "verbose", False)
    serve_port = getattr(args, "serve_obs", None)
    events_path = getattr(args, "events", None)
    ledger_dir = getattr(args, "ledger", None)
    if not (trace_path or metrics_path or verbose or events_path
            or ledger_dir is not None or serve_port is not None):
        return handler(args)

    run_id = obs.events.new_run_id()
    args.run_id = run_id
    obs.log.configure(getattr(args, "log_level", "info"), run_id=run_id)
    # heartbeats feed both the -v log lines and the live /status board
    recorder = obs.FlightRecorder(
        heartbeat_interval=HEARTBEAT_INTERVAL
        if (verbose or serve_port is not None) else None)

    if events_path:
        log_path = Path(events_path)
    elif ledger_dir is not None:
        log_path = Path(ledger_dir) / run_id / "events.jsonl"
    elif serve_port is not None:
        # serving needs an event stream even if nobody asked to keep it
        args._obs_tmpdir = tempfile.TemporaryDirectory(prefix="repro-obs-")
        log_path = Path(args._obs_tmpdir.name) / "events.jsonl"
    else:
        log_path = None
    event_log = obs.EventLog(log_path, run_id=run_id) \
        if log_path is not None else None

    server = None
    if serve_port is not None:
        board = obs.StatusBoard(run_id=run_id)
        if event_log is not None:
            event_log.add_listener(board.on_event)
        server = obs.ObsServer(port=serve_port, recorder=recorder,
                               board=board, event_log=event_log)
    try:
        with recorder:
            if event_log is not None:
                obs.events.install(event_log)
            if server is not None:
                server.start()
            try:
                return handler(args)
            finally:
                if server is not None:
                    server.stop()
                if event_log is not None:
                    if obs.events.current() is event_log:
                        obs.events.uninstall()
                    event_log.close()
                    if events_path or ledger_dir is not None:
                        log.info("event log written to %s", log_path)
    finally:
        if trace_path:
            recorder.write_trace(trace_path)
            log.info("trace written to %s", trace_path)
        if metrics_path:
            recorder.write_metrics(metrics_path)
            log.info("metrics written to %s", metrics_path)
        tmpdir = getattr(args, "_obs_tmpdir", None)
        if tmpdir is not None:
            tmpdir.cleanup()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs.log.configure(getattr(args, "log_level", "info"))
    handlers = {
        "schedule": cmd_schedule,
        "run": cmd_run,
        "tables": cmd_tables,
        "figures": cmd_figures,
        "guidance": cmd_guidance,
        "validate": cmd_validate,
        "save": cmd_save,
        "load": cmd_load,
        "migrate-store": cmd_migrate_store,
        "runs": cmd_runs,
    }
    try:
        if args.command == "runs":  # pure reader — no telemetry stack
            return cmd_runs(args)
        return _dispatch_with_obs(handlers[args.command], args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
