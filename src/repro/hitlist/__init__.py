"""TUM-hitlist-like publication pipeline.

The TUM IPv6 hitlist service publishes responsive addresses and
(non-)aliased prefixes. The paper tracks when its telescope prefixes appear
on the list (T1's /32 showed up 5 days after announcement) and finds that
hitlist presence has no noticeable effect on BGP-reactive scanners (§7.2).
"""

from repro.hitlist.service import HitlistEntry, HitlistService

__all__ = ["HitlistService", "HitlistEntry"]
