"""The hitlist service: delayed publication of observed prefixes.

The simulated service watches the route-collector feed (that is how the
real hitlist pipeline discovers newly routed space) and publishes each
newly seen prefix after a configurable delay — five days by default,
matching the paper's observation for T1's /32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.bgp.collector import CollectorEntry, RouteCollector
from repro.bgp.messages import UpdateKind
from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY
from repro.sim.events import Simulator


@dataclass(frozen=True, slots=True)
class HitlistEntry:
    """One published hitlist line."""

    prefix: Prefix
    published_at: float
    aliased: bool = False


@dataclass
class HitlistService:
    """Publishes prefixes observed in BGP after ``publication_delay``.

    Attributes:
        publication_delay: seconds between first BGP observation and
            publication (default five days, §3.2).
    """

    simulator: Simulator
    publication_delay: float = 5 * DAY
    entries: dict[Prefix, HitlistEntry] = field(default_factory=dict)
    _pending: set[Prefix] = field(default_factory=set)

    def attach(self, collector: RouteCollector) -> None:
        """Subscribe to a route-collector feed for prefix discovery."""
        collector.subscribe(self._on_feed)

    def seed(self, prefix: Prefix, aliased: bool = False,
             published_at: float = 0.0) -> None:
        """Pre-populate an entry (prefixes already listed before t=0).

        T2 and the /29 covering T3/T4 were on the hitlist before the
        experiment started.
        """
        self.entries[prefix] = HitlistEntry(prefix=prefix, aliased=aliased,
                                            published_at=published_at)

    def _on_feed(self, time: float, entry: CollectorEntry) -> None:
        if entry.kind is not UpdateKind.ANNOUNCE:
            return
        prefix = entry.prefix
        if prefix in self.entries or prefix in self._pending:
            return
        self._pending.add(prefix)
        self.simulator.schedule_in(
            self.publication_delay,
            partial(self._publish, prefix),
            label=f"hitlist:publish:{prefix}",
        )

    def _publish(self, prefix: Prefix) -> None:
        self._pending.discard(prefix)
        self.entries[prefix] = HitlistEntry(
            prefix=prefix, published_at=self.simulator.now)

    # -- consumer interface -------------------------------------------------

    def published(self, at: float | None = None) -> list[HitlistEntry]:
        """Entries visible at time ``at`` (default: now)."""
        cutoff = self.simulator.now if at is None else at
        return [e for e in self.entries.values() if e.published_at <= cutoff]

    def non_aliased_prefixes(self, at: float | None = None) -> list[Prefix]:
        return [e.prefix for e in self.published(at) if not e.aliased]

    def first_published(self, prefix: Prefix) -> float | None:
        """Publication time of ``prefix``, or ``None`` if never published."""
        entry = self.entries.get(prefix)
        return entry.published_at if entry is not None else None

    def publication_lag(self, prefix: Prefix,
                        announced_at: float) -> float:
        """Days between announcement and hitlist publication (§3.2: ~5)."""
        published = self.first_published(prefix)
        if published is None:
            raise ExperimentError(f"{prefix} never appeared on the hitlist")
        return (published - announced_at) / DAY
