"""Observation phases.

The paper analyzes two windows: the *initial observation period* (the 12
baseline weeks with only the stable /32) and the *split period* (the ~8
months of bi-weekly prefix splitting). Analyses bucket packets by phase.
"""

from __future__ import annotations

import enum

from repro.errors import ExperimentError
from repro.experiment.config import ExperimentConfig
from repro.sim.clock import WEEK


class Phase(enum.Enum):
    INITIAL = "initial"
    SPLIT = "split"
    FULL = "full"


def phase_bounds(config: ExperimentConfig, phase: Phase) \
        -> tuple[float, float]:
    """[start, end) of a phase for the given configuration."""
    baseline_end = config.baseline_weeks * WEEK
    if phase is Phase.INITIAL:
        return 0.0, baseline_end
    if phase is Phase.SPLIT:
        return baseline_end, config.duration
    if phase is Phase.FULL:
        return 0.0, config.duration
    raise ExperimentError(f"unknown phase {phase}")


def week_index(time: float) -> int:
    """Zero-based week bucket of a timestamp."""
    if time < 0:
        raise ExperimentError(f"negative time {time}")
    return int(time // WEEK)
