"""Trigger experiments (§8 outlook, item i).

"Future measurements and analyses shall quantify the effect of further
triggers that attract traffic to IPv6 network telescopes."

This module provides a controlled A/B harness for exactly that: a
*trigger* exposes some telescope addresses through a channel (DNS
publication, a fresh BGP announcement) at a chosen time, a reactive
scanner cohort consumes the exposure, and the experiment compares the
attention received by exposed addresses against unexposed *control*
addresses in the same address space — the Zhao-et-al.-style methodology
generalized to arbitrary triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

import numpy as np

from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.scanners.base import (Scanner, ScannerContext, TemporalBehavior,
                                 TemporalKind)
from repro.scanners.netselect import FixedPrefixPolicy
from repro.scanners.registry import ASRegistry, NetworkType
from repro.scanners.strategies import (FixedTargetsStrategy,
                                       ProtocolProfile)
from repro.sim.clock import DAY, WEEK
from repro.sim.events import Simulator
from repro.sim.rng import RngStreams
from repro.telescope.capture import PacketCapture
from repro.telescope.packet import Packet
from repro.telescope.telescope import Telescope, TelescopeKind


class Trigger(TypingProtocol):
    """Exposes a set of addresses through some channel at a given time."""

    name: str
    expose_at: float

    def exposed_addresses(self, prefix: Prefix,
                          rng: np.random.Generator) -> list[int]:
        ...  # pragma: no cover

    def cohort_size(self, base: int) -> int:
        ...  # pragma: no cover


@dataclass
class DnsExposureTrigger:
    """Publishes AAAA records for telescope addresses (Zhao et al.).

    Attributes:
        num_addresses: how many addresses receive a DNS name.
        attraction: relative pull of the channel (scales the cohort).
    """

    expose_at: float = 2 * WEEK
    num_addresses: int = 8
    attraction: float = 1.0
    name: str = "dns-exposure"

    def exposed_addresses(self, prefix: Prefix,
                          rng: np.random.Generator) -> list[int]:
        subnets = rng.choice(256, size=self.num_addresses, replace=False)
        return [prefix.subnet(64, int(s) << 8).network | 0x50
                for s in subnets]

    def cohort_size(self, base: int) -> int:
        return max(1, round(base * self.attraction))


@dataclass
class BgpAnnouncementTrigger:
    """Announces the telescope prefix freshly in BGP at ``expose_at``.

    Exposure is network-wide (every address in the prefix becomes
    reachable/visible), so the exposed set is a sample of low-byte
    addresses that BGP-reactive scanners would probe.
    """

    expose_at: float = 2 * WEEK
    num_addresses: int = 8
    attraction: float = 1.4
    name: str = "bgp-announcement"

    def exposed_addresses(self, prefix: Prefix,
                          rng: np.random.Generator) -> list[int]:
        subnets = rng.choice(256, size=self.num_addresses, replace=False)
        return [prefix.subnet(64, int(s) << 8).low_byte_address
                for s in subnets]

    def cohort_size(self, base: int) -> int:
        return max(1, round(base * self.attraction))


@dataclass(frozen=True, slots=True)
class TriggerResult:
    """Outcome of one trigger experiment."""

    trigger_name: str
    expose_at: float
    exposed_packets_before: int
    exposed_packets_after: int
    control_packets_before: int
    control_packets_after: int
    reacting_sources: int

    @property
    def attraction_factor(self) -> float:
        """Post-exposure attention on exposed vs control addresses.

        Uses the after-window only; background noise hits exposed and
        control addresses alike, reactions only the exposed ones.
        """
        control = max(self.control_packets_after, 1)
        return self.exposed_packets_after / control

    @property
    def effective(self) -> bool:
        """True when the trigger measurably attracted scanners."""
        return self.exposed_packets_after \
            > 3 * max(self.control_packets_after, 1) \
            and self.reacting_sources > 0

    def render(self) -> str:
        return (f"trigger {self.trigger_name!r} @ day "
                f"{self.expose_at / DAY:.0f}: exposed "
                f"{self.exposed_packets_before}->"
                f"{self.exposed_packets_after} pkts, control "
                f"{self.control_packets_before}->"
                f"{self.control_packets_after}, "
                f"{self.reacting_sources} reacting sources, "
                f"attraction {self.attraction_factor:.1f}x")


@dataclass
class TriggerExperiment:
    """A/B harness around one telescope prefix and one trigger."""

    trigger: Trigger
    prefix: Prefix = Prefix.parse("3fff:aaaa::/48")
    duration: float = 6 * WEEK
    base_cohort: int = 24
    background_scanners: int = 6
    seed: int = 7
    _registry: ASRegistry = field(default_factory=ASRegistry)

    def run(self) -> TriggerResult:
        """Run the experiment and compare exposed vs control attention."""
        if self.trigger.expose_at >= self.duration:
            raise ExperimentError("exposure must happen inside the run")
        streams = RngStreams(self.seed)
        rng = streams.get("trigger.assign")
        simulator = Simulator()
        telescope = Telescope(name="TX", kind=TelescopeKind.PASSIVE,
                              prefixes=[self.prefix],
                              capture=PacketCapture(name="TX"))
        ctx = ScannerContext(
            simulator=simulator,
            route=lambda dst, now: telescope
            if self.prefix.contains_address(dst) else None,
            window_start=0.0, window_end=self.duration)

        exposed = self.trigger.exposed_addresses(self.prefix, rng)
        control = [addr ^ (1 << 16) for addr in exposed]
        # interleave so short background sessions hit both groups equally
        background_pool = tuple(
            addr for pair in zip(exposed, control) for addr in pair)

        # background scanners probe the whole prefix throughout
        for index in range(self.background_scanners):
            record = self._registry.allocate(NetworkType.HOSTING)
            scanner = Scanner(
                scanner_id=index, name=f"background-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.PERIODIC,
                    period=float(rng.uniform(2 * DAY, 5 * DAY))),
                network_policy=FixedPrefixPolicy((self.prefix,)),
                addr_strategy=FixedTargetsStrategy(background_pool),
                protocol_profile=ProtocolProfile(icmpv6=1.0),
                rng=streams.fresh(f"trigger.bg.{index}"),
                packets_per_session=lambda r: int(r.integers(4, 10)))
            scanner.start(ctx)

        # the reacting cohort arrives only after the exposure and probes
        # exclusively the exposed addresses
        cohort = self.trigger.cohort_size(self.base_cohort)
        reacting_ids = set()
        for index in range(cohort):
            record = self._registry.allocate(NetworkType.ISP)
            scanner_id = 1000 + index
            reacting_ids.add(record.asn)
            scanner = Scanner(
                scanner_id=scanner_id, name=f"reactor-{index}",
                as_record=record,
                temporal=TemporalBehavior(
                    kind=TemporalKind.INTERMITTENT,
                    mean_gap=float(rng.uniform(5 * DAY, 10 * DAY))),
                network_policy=FixedPrefixPolicy((self.prefix,)),
                addr_strategy=FixedTargetsStrategy(tuple(exposed)),
                protocol_profile=ProtocolProfile(icmpv6=0.6, tcp=0.4),
                rng=streams.fresh(f"trigger.react.{index}"),
                packets_per_session=lambda r: int(r.integers(6, 14)),
                active_start=self.trigger.expose_at,
                active_end=self.duration)
            scanner.start(ctx)

        simulator.run_until(self.duration)

        exposed_set = set(exposed)
        control_set = set(control)
        counts = {"eb": 0, "ea": 0, "cb": 0, "ca": 0}
        reacting_sources = set()
        for packet in telescope.capture.packets():
            after = packet.time >= self.trigger.expose_at
            if packet.dst in exposed_set:
                counts["ea" if after else "eb"] += 1
                if after and packet.src_asn in reacting_ids:
                    reacting_sources.add(packet.src)
            elif packet.dst in control_set:
                counts["ca" if after else "cb"] += 1
        return TriggerResult(
            trigger_name=self.trigger.name,
            expose_at=self.trigger.expose_at,
            exposed_packets_before=counts["eb"],
            exposed_packets_after=counts["ea"],
            control_packets_before=counts["cb"],
            control_packets_after=counts["ca"],
            reacting_sources=len(reacting_sources))


def compare_triggers(triggers: list[Trigger], seed: int = 7,
                     **kwargs) -> list[TriggerResult]:
    """Run several triggers under identical conditions and rank them."""
    results = [TriggerExperiment(trigger=t, seed=seed, **kwargs).run()
               for t in triggers]
    results.sort(key=lambda r: -r.attraction_factor)
    return results
