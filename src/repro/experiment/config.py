"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ExperimentError
from repro.scanners.population import PopulationConfig
from repro.sim.clock import WEEK


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry behavior of the shard supervisor (DESIGN §11).

    ``max_attempts`` counts executions, not retries: 1 means fail fast.
    ``base_delay`` seeds the exponential backoff before attempt ``k+1``
    (``base_delay * 2**(k-1)`` seconds). ``timeout_factor`` relaxes the
    per-shard wall-clock timeout on each retry (a shard killed for
    stalling may simply have landed on a loaded machine), multiplying
    the derived timeout by ``timeout_factor**(attempt-1)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.25
    timeout_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ExperimentError(
                f"retry base_delay must be >= 0, got {self.base_delay}")
        if self.timeout_factor < 1.0:
            raise ExperimentError(
                f"retry timeout_factor must be >= 1, "
                f"got {self.timeout_factor}")

    def delay(self, attempt: int) -> float:
        """Backoff before launching ``attempt + 1`` (1-based attempts)."""
        return self.base_delay * (2.0 ** max(0, attempt - 1))

    @classmethod
    def of(cls, value: "RetryPolicy | Mapping | None") -> "RetryPolicy":
        """Normalize a config value (policy, kwargs mapping, or None)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {"max_attempts", "base_delay",
                                    "timeout_factor"}
            if unknown:
                raise ExperimentError(
                    f"unknown retry_policy keys: {sorted(unknown)}")
            return cls(**value)
        raise ExperimentError(
            f"retry_policy must be a RetryPolicy or a mapping, "
            f"got {type(value).__name__}")


#: Valid ``on_shard_failure`` modes: ``raise`` keeps a hard failure
#: fatal; ``degrade`` quarantines the shard as coverage gaps.
SHARD_FAILURE_MODES = ("raise", "degrade")


@dataclass
class ExperimentConfig:
    """All knobs of one experiment run.

    Defaults reproduce the paper's timeline: 12 baseline weeks, then 16
    bi-weekly split cycles (~8 months), 44 weeks (~11 months) total.
    ``scale`` shrinks the scanner population and packet volumes uniformly;
    tests use small scales, benchmarks moderate ones.
    """

    seed: int = 42
    scale: float = 1.0
    #: emission path: True = batched session kernel, False = per-packet
    #: oracle, None = environment default (``REPRO_LEGACY_EMIT``).
    batch_emit: bool | None = None
    baseline_weeks: int = 12
    cycle_weeks: int = 2
    num_cycles: int = 16
    num_tier1: int = 4
    num_tier2: int = 12
    num_stubs: int = 60
    feed_delay: float = 60.0
    population: PopulationConfig = field(default=None)  # type: ignore[assignment]
    #: shard-supervision knobs (sharded runs only; see DESIGN §11).
    retry_policy: RetryPolicy = field(default=None)  # type: ignore[assignment]
    #: wall-clock budget in seconds for the heaviest shard's first attempt
    #: (lighter shards get proportionally less). None = no timeout.
    shard_timeout: float | None = None
    #: what to do when a shard exhausts its retries: "raise" (default)
    #: or "degrade" (quarantine the shard as coverage gaps).
    on_shard_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ExperimentError(f"scale must be > 0, got {self.scale}")
        if self.baseline_weeks < 1 or self.cycle_weeks < 1 \
                or self.num_cycles < 0:
            raise ExperimentError("invalid experiment timeline")
        if self.population is None:
            self.population = PopulationConfig(scale=self.scale)
        self.retry_policy = RetryPolicy.of(self.retry_policy)
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ExperimentError(
                f"shard_timeout must be > 0, got {self.shard_timeout}")
        if self.on_shard_failure not in SHARD_FAILURE_MODES:
            raise ExperimentError(
                f"on_shard_failure must be one of {SHARD_FAILURE_MODES}, "
                f"got {self.on_shard_failure!r}")

    @property
    def duration(self) -> float:
        """Total simulated time (end of the last announcement cycle)."""
        return (self.baseline_weeks
                + self.num_cycles * self.cycle_weeks) * WEEK

    @property
    def split_start(self) -> float:
        return self.baseline_weeks * WEEK

    @classmethod
    def tiny(cls, seed: int = 42) -> "ExperimentConfig":
        """A fast configuration for unit tests (seconds to run)."""
        return cls(seed=seed, scale=0.04, baseline_weeks=4, num_cycles=4,
                   num_stubs=12, num_tier2=6)

    @classmethod
    def small(cls, seed: int = 42) -> "ExperimentConfig":
        """A mid-size configuration for integration tests."""
        return cls(seed=seed, scale=0.1, baseline_weeks=6, num_cycles=8,
                   num_stubs=20)

    @classmethod
    def bench(cls, seed: int = 42) -> "ExperimentConfig":
        """The benchmark configuration: full timeline, reduced volume."""
        return cls(seed=seed, scale=0.35)
