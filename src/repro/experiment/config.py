"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.scanners.population import PopulationConfig
from repro.sim.clock import WEEK


@dataclass
class ExperimentConfig:
    """All knobs of one experiment run.

    Defaults reproduce the paper's timeline: 12 baseline weeks, then 16
    bi-weekly split cycles (~8 months), 44 weeks (~11 months) total.
    ``scale`` shrinks the scanner population and packet volumes uniformly;
    tests use small scales, benchmarks moderate ones.
    """

    seed: int = 42
    scale: float = 1.0
    #: emission path: True = batched session kernel, False = per-packet
    #: oracle, None = environment default (``REPRO_LEGACY_EMIT``).
    batch_emit: bool | None = None
    baseline_weeks: int = 12
    cycle_weeks: int = 2
    num_cycles: int = 16
    num_tier1: int = 4
    num_tier2: int = 12
    num_stubs: int = 60
    feed_delay: float = 60.0
    population: PopulationConfig = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ExperimentError(f"scale must be > 0, got {self.scale}")
        if self.baseline_weeks < 1 or self.cycle_weeks < 1 \
                or self.num_cycles < 0:
            raise ExperimentError("invalid experiment timeline")
        if self.population is None:
            self.population = PopulationConfig(scale=self.scale)

    @property
    def duration(self) -> float:
        """Total simulated time (end of the last announcement cycle)."""
        return (self.baseline_weeks
                + self.num_cycles * self.cycle_weeks) * WEEK

    @property
    def split_start(self) -> float:
        return self.baseline_weeks * WEEK

    @classmethod
    def tiny(cls, seed: int = 42) -> "ExperimentConfig":
        """A fast configuration for unit tests (seconds to run)."""
        return cls(seed=seed, scale=0.04, baseline_weeks=4, num_cycles=4,
                   num_stubs=12, num_tier2=6)

    @classmethod
    def small(cls, seed: int = 42) -> "ExperimentConfig":
        """A mid-size configuration for integration tests."""
        return cls(seed=seed, scale=0.1, baseline_weeks=6, num_cycles=8,
                   num_stubs=20)

    @classmethod
    def bench(cls, seed: int = 42) -> "ExperimentConfig":
        """The benchmark configuration: full timeline, reduced volume."""
        return cls(seed=seed, scale=0.35)
