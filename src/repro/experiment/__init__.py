"""Experiment orchestration.

Drives the full eleven-month measurement: builds the deployment and the
calibrated population, runs the discrete-event simulation, and packages the
captured packets into a :class:`repro.experiment.corpus.PacketCorpus` that
all analyses consume.
"""

from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus
from repro.experiment.driver import ExperimentResult, run_experiment
from repro.experiment.phases import Phase, phase_bounds

__all__ = [
    "ExperimentConfig",
    "run_experiment",
    "ExperimentResult",
    "PacketCorpus",
    "Phase",
    "phase_bounds",
]
