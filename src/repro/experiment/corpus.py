"""The packet corpus: everything an analysis needs from one run.

The corpus exposes the captured packets per telescope together with the
lookup services the paper's pipeline uses (IP-to-AS, RDNS, announcement
schedule) — but *not* the generative ground truth, which lives separately
in :class:`repro.experiment.driver.ExperimentResult` for validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.bgp.controller import AnnouncementCycle
from repro.core.columnar import ChunkedPacketTable, PacketTable, TableChunk
from repro.dns.resolver import Resolver
from repro.errors import AnalysisError
from repro.experiment.config import ExperimentConfig
from repro.experiment.phases import Phase, phase_bounds
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRegistry
from repro.telescope.packet import Packet

TELESCOPE_NAMES = ("T1", "T2", "T3", "T4")


def merge_shard_tables(
        segments: dict[str, list[PacketTable]]) -> dict[str, PacketTable]:
    """Merge per-shard columnar segments into one table per telescope.

    Reconstructs the exact unsharded byte layout: the batched emission
    path flushes scanners in canonical ``scanner_id`` order (see
    :meth:`repro.scanners.base.ScannerContext.flush_batches`), so an
    unsharded capture appends per-scanner row groups in scanner-ID
    order and snapshots them through a stable time sort — so its byte
    layout is time-major, with equal-time ties in scanner-ID order and
    full ties in each scanner's own emission order. Each worker segment
    holds the identical row groups for its own (disjoint) scanners, so
    one stable ``(time, scanner_id)`` lexsort of the concatenated
    segments reproduces the unsharded table byte-for-byte, for any
    shard count and any partitioning (DESIGN §8). Telescopes missing
    from ``segments`` come back as empty tables.
    """
    import numpy as np

    from repro.core.columnar import concat_tables
    merged: dict[str, PacketTable] = {}
    for name in TELESCOPE_NAMES:
        table = concat_tables(segments.get(name, []))
        if len(table):
            # lexsort is stable: primary time, secondary scanner_id,
            # original (per-scanner emission) order for full ties
            order = np.lexsort((table.scanner_id, table.time))
            table = table.take(order)
        merged[name] = table
    return merged


def merge_chunked_shards(
        segments: dict[str, list[ChunkedPacketTable]],
) -> dict[str, ChunkedPacketTable]:
    """Window-at-a-time merge of lazily loaded per-shard chunk segments.

    Produces exactly the rows and order of
    :func:`merge_shard_tables` — and therefore of the unsharded build —
    without ever holding two full copies of a telescope's table: the
    timeline is cut at every shard chunk's ``t_min`` and merged one
    window at a time. Correctness rests on the same argument as the
    full-table lexsort (DESIGN §8) plus one observation: a stable sort
    whose *primary* key (time) partitions cleanly across windows equals
    the concatenation of the per-window stable sorts, as long as each
    window sees its rows in the same relative order — which pushdown
    slicing guarantees, since it preserves within-shard order and the
    shards are concatenated in shard order. Peak memory is one telescope
    plus one window, not two telescopes.
    """
    import numpy as np

    from repro.core.columnar import concat_tables
    merged: dict[str, ChunkedPacketTable] = {}
    for name in TELESCOPE_NAMES:
        shard_tables = segments.get(name, [])
        cuts = sorted({chunk.t_min for table in shard_tables
                       for chunk in table.chunks if chunk.rows})
        chunks: list[TableChunk] = []
        for index, start in enumerate(cuts):
            end = cuts[index + 1] if index + 1 < len(cuts) else np.inf
            parts = [table.slice_time(start, end) for table in shard_tables]
            window = concat_tables([p for p in parts if len(p)])
            if not len(window):
                continue
            order = np.lexsort((window.scanner_id, window.time))
            window = window.take(order)
            window._time_sorted = True
            chunks.append(TableChunk.from_table(window))
        merged[name] = ChunkedPacketTable(chunks)
    return merged


@dataclass
class PacketCorpus:
    """Captured packets plus metadata lookups.

    Packets are held both as object lists (``packets_by_telescope``) and
    as columnar :class:`PacketTable` views (``tables_by_telescope``); a
    corpus may be constructed from either representation and the other is
    materialized lazily on first access.
    """

    config: ExperimentConfig
    packets_by_telescope: dict[str, list[Packet]] | None
    schedule: list[AnnouncementCycle]
    registry: ASRegistry
    resolver: Resolver
    t1_prefix: Prefix
    t2_prefix: Prefix
    t3_prefix: Prefix
    t4_prefix: Prefix
    attractor_addr: int = 0
    tables_by_telescope: dict[str, PacketTable] = field(default_factory=dict)
    #: per-telescope capture outages as sorted (start, end) windows — from
    #: fault-injected blackouts or segments quarantined on load. Analyses
    #: use :meth:`covered_fraction` to normalize by covered time instead
    #: of assuming the telescope saw the whole run.
    coverage_gaps: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict)
    _phase_cache: dict = field(default_factory=dict)
    _phase_table_cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.packets_by_telescope is None:
            self.packets_by_telescope = {}
        for name in TELESCOPE_NAMES:
            if name not in self.packets_by_telescope \
                    and name not in self.tables_by_telescope:
                raise AnalysisError(f"corpus missing telescope {name}")

    # -- access ------------------------------------------------------------

    def telescopes(self) -> tuple[str, ...]:
        return TELESCOPE_NAMES

    def packets(self, telescope: str) -> list[Packet]:
        packets = self.packets_by_telescope.get(telescope)
        if packets is not None:
            return packets
        table = self.tables_by_telescope.get(telescope)
        if table is None:
            raise AnalysisError(f"unknown telescope {telescope!r}")
        packets = table.to_packets()
        self.packets_by_telescope[telescope] = packets
        return packets

    def table(self, telescope: str) -> PacketTable:
        """Columnar view of a telescope's capture (built on first use)."""
        table = self.tables_by_telescope.get(telescope)
        if table is None:
            table = PacketTable.from_packets(self.packets(telescope))
            self.tables_by_telescope[telescope] = table
        return table

    def all_packets(self) -> Iterator[Packet]:
        for name in TELESCOPE_NAMES:
            yield from self.packets(name)

    def total_packets(self) -> int:
        total = 0
        for name in TELESCOPE_NAMES:
            packets = self.packets_by_telescope.get(name)
            if packets is not None:
                total += len(packets)
            else:
                total += len(self.tables_by_telescope[name])
        return total

    def phase_packets(self, telescope: str, phase: Phase) -> list[Packet]:
        """Packets of a telescope inside an observation phase (cached)."""
        if phase is Phase.FULL:
            # the filter is a no-op for the full phase: hand out the
            # underlying list instead of copying it
            return self.packets(telescope)
        key = (telescope, phase)
        if key not in self._phase_cache:
            backing = self.tables_by_telescope.get(telescope)
            if isinstance(backing, ChunkedPacketTable) \
                    and backing._materialized is None \
                    and telescope not in self.packets_by_telescope:
                # out-of-core backing: materialize objects only for the
                # phase's chunks (pushdown) instead of the whole capture.
                # A chunked table is time-sorted by construction, so the
                # slice equals the filtered list the eager path builds.
                self._phase_cache[key] = list(
                    self.phase_table(telescope, phase).to_packets())
            else:
                start, end = phase_bounds(self.config, phase)
                self._phase_cache[key] = [
                    p for p in self.packets(telescope)
                    if start <= p.time < end]
        return self._phase_cache[key]

    def phase_table(self, telescope: str, phase: Phase) -> PacketTable:
        """Columnar phase slice: a ``searchsorted`` on the sorted table."""
        key = (telescope, phase)
        cached = self._phase_table_cache.get(key)
        if cached is None:
            table = self.table(telescope).time_sorted()
            if phase is Phase.FULL:
                cached = table
            else:
                start, end = phase_bounds(self.config, phase)
                cached = table.slice_time(start, end)
            self._phase_table_cache[key] = cached
        return cached

    # -- coverage -----------------------------------------------------------

    def has_gaps(self) -> bool:
        return any(self.coverage_gaps.values())

    def gap_seconds(self, telescope: str, start: float = 0.0,
                    end: float | None = None) -> float:
        """Seconds of [start, end) the telescope's capture was down."""
        if end is None:
            end = self.config.duration
        total = 0.0
        for gap_start, gap_end in self.coverage_gaps.get(telescope, ()):
            total += max(0.0, min(end, gap_end) - max(start, gap_start))
        return total

    def covered_fraction(self, telescope: str, start: float = 0.0,
                         end: float | None = None) -> float:
        """Fraction of [start, end) the telescope was actually capturing.

        1.0 for a gap-free capture; 0.0 when the whole interval (or an
        empty interval) fell inside outages.
        """
        if end is None:
            end = self.config.duration
        span = end - start
        if span <= 0:
            return 0.0
        return max(0.0, 1.0 - self.gap_seconds(telescope, start, end) / span)

    # -- schedule helpers ------------------------------------------------------

    def cycle_at(self, time: float) -> AnnouncementCycle | None:
        for cycle in self.schedule:
            if cycle.announce_time <= time < cycle.withdraw_time:
                return cycle
        return None

    def split_cycles(self) -> list[AnnouncementCycle]:
        return [c for c in self.schedule if c.index > 0]

    def most_specific_announced(self, dst: int,
                                time: float) -> Prefix | None:
        """The most-specific announced T1 prefix covering ``dst`` then."""
        cycle = self.cycle_at(time)
        if cycle is None:
            return None
        best: Prefix | None = None
        for prefix in cycle.prefixes:
            if prefix.contains_address(dst):
                if best is None or prefix.length > best.length:
                    best = prefix
        return best

    # -- source metadata -----------------------------------------------------------

    def source_asn(self, packet: Packet) -> int:
        return packet.src_asn

    def rdns(self, src: int) -> str | None:
        """Reverse-DNS lookup for a source address."""
        return self.resolver.reverse(src)

    def rdns_batch(self, sources) -> dict[int, str]:
        """Reverse-DNS for many source addresses in one resolver pass.

        Returns only the addresses that resolve — exactly the entries
        ``{src: rdns(src) for src in sources if rdns(src)}`` would
        produce, without a Python zone scan per address.
        """
        return self.resolver.reverse_batch(sources)
