"""Corpus persistence.

Saves a :class:`PacketCorpus` to a directory and loads it back, so
analyses can run on a previously simulated (or externally produced)
capture without re-running the simulation:

- ``meta.json`` — config, announcement schedule, AS registry records,
  RDNS entries, telescope prefixes, coverage gaps, and a sha256 per
  segment file;
- ``packets_<T>.npz`` — columnar packet arrays per telescope (128-bit
  addresses as two uint64 halves; payloads as one concatenated blob with
  offsets).

Loading verifies each segment against its recorded checksum and wraps
every on-disk failure (missing file, truncation, bit flips, unreadable
zip) in :class:`repro.errors.StoreError` carrying the path and the
failed check. ``load_corpus(..., strict=False)`` quarantines a broken
segment instead: the telescope comes back empty, its whole run is marked
as a coverage gap, and a :class:`DegradationWarning` is emitted so
downstream tables normalize rather than crash.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.degrade import warn_degraded
from repro.bgp.controller import AnnouncementCycle
from repro.core.columnar import PacketTable
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone
from repro.errors import StoreError
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus, TELESCOPE_NAMES
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRecord, ASRegistry, NetworkType

FORMAT_VERSION = 1


def save_corpus(corpus: PacketCorpus, path: str | Path) -> Path:
    """Write ``corpus`` to directory ``path`` (created if missing)."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    checksums: dict[str, str] = {}
    for telescope in TELESCOPE_NAMES:
        # the columnar table IS the on-disk layout: its arrays are written
        # directly, with no per-packet Python loop
        checksums[telescope] = save_segment(
            corpus.table(telescope),
            directory / f"packets_{telescope}.npz")

    # the resolver only answers point queries, so RDNS entries are
    # persisted for every observed source address
    rdns: dict[str, str] = {}
    for telescope in TELESCOPE_NAMES:
        for src in corpus.table(telescope).unique_source_addresses():
            name = corpus.rdns(src)
            if name:
                rdns[str(src)] = name

    meta = {
        "format_version": FORMAT_VERSION,
        "config": {
            "seed": corpus.config.seed,
            "scale": corpus.config.scale,
            "baseline_weeks": corpus.config.baseline_weeks,
            "cycle_weeks": corpus.config.cycle_weeks,
            "num_cycles": corpus.config.num_cycles,
            "num_tier1": corpus.config.num_tier1,
            "num_tier2": corpus.config.num_tier2,
            "num_stubs": corpus.config.num_stubs,
            "feed_delay": corpus.config.feed_delay,
        },
        "schedule": [
            {
                "index": cycle.index,
                "announce_time": cycle.announce_time,
                "withdraw_time": cycle.withdraw_time,
                "prefixes": [str(p) for p in cycle.prefixes],
                "new_prefixes": [str(p) for p in cycle.new_prefixes],
            }
            for cycle in corpus.schedule
        ],
        "registry": [
            {
                "asn": record.asn,
                "network_type": record.network_type.value,
                "country": record.country,
                "name": record.name,
                "rdns_domain": record.rdns_domain,
            }
            for record in corpus.registry.records()
        ],
        "rdns": rdns,
        "prefixes": {
            "t1": str(corpus.t1_prefix),
            "t2": str(corpus.t2_prefix),
            "t3": str(corpus.t3_prefix),
            "t4": str(corpus.t4_prefix),
        },
        "attractor_addr": str(corpus.attractor_addr),
        "checksums": checksums,
        "coverage_gaps": {
            name: [[start, end] for start, end in windows]
            for name, windows in corpus.coverage_gaps.items()},
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=1))
    return directory


def load_corpus(path: str | Path, strict: bool = True) -> PacketCorpus:
    """Load a corpus previously written by :func:`save_corpus`.

    Every segment is verified against its recorded sha256 before use.
    With ``strict=True`` (the default) any missing, truncated, or
    corrupted file raises :class:`StoreError` naming the path and the
    failed check. With ``strict=False`` a bad segment is quarantined:
    its telescope loads empty, the whole run is recorded as a coverage
    gap for it, and a :class:`DegradationWarning` is emitted.
    """
    directory = Path(path)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StoreError(f"no corpus at {directory} (missing meta.json)",
                         path=meta_path, check="exists")
    try:
        meta = json.loads(meta_path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise StoreError(f"corpus metadata {meta_path} is unreadable: {exc}",
                         path=meta_path, check="json") from exc
    if meta.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported corpus format {meta.get('format_version')!r}",
            path=meta_path, check="format_version")

    config = ExperimentConfig(**meta["config"])
    schedule = [
        AnnouncementCycle(
            index=entry["index"],
            announce_time=entry["announce_time"],
            withdraw_time=entry["withdraw_time"],
            prefixes=tuple(Prefix.parse(p) for p in entry["prefixes"]),
            new_prefixes=tuple(Prefix.parse(p)
                               for p in entry["new_prefixes"]))
        for entry in meta["schedule"]
    ]
    from repro.scanners.registry import source_prefix_for_asn
    records = [
        ASRecord(asn=entry["asn"],
                 network_type=NetworkType(entry["network_type"]),
                 country=entry["country"], name=entry["name"],
                 source_prefix=source_prefix_for_asn(entry["asn"]),
                 rdns_domain=entry["rdns_domain"])
        for entry in meta["registry"]
    ]
    registry = ASRegistry.restore(records)

    rdns_zone = Zone(origin="rdns.")
    for src_text, name in meta["rdns"].items():
        rdns_zone.add_ptr(int(src_text), name)
    resolver = Resolver([rdns_zone])

    checksums = meta.get("checksums", {})
    coverage_gaps = {
        name: tuple((float(start), float(end)) for start, end in windows)
        for name, windows in meta.get("coverage_gaps", {}).items()}

    tables_by_telescope: dict[str, PacketTable] = {}
    for telescope in TELESCOPE_NAMES:
        segment = directory / f"packets_{telescope}.npz"
        try:
            tables_by_telescope[telescope] = _load_segment(
                segment, checksums.get(telescope))
        except StoreError as exc:
            if strict:
                raise
            # quarantine: the telescope loads empty and its whole run
            # becomes a coverage gap so analyses normalize, not crash
            obs.add("store.segments_quarantined_total", telescope=telescope)
            warn_degraded(
                f"corpus segment {segment.name} quarantined "
                f"(failed {exc.check} check): {telescope} loads empty",
                artifact="load_corpus", telescope=telescope,
                reason=exc.check)
            tables_by_telescope[telescope] = PacketTable.empty()
            coverage_gaps[telescope] = ((0.0, config.duration),)

    return PacketCorpus(
        config=config,
        packets_by_telescope={},
        tables_by_telescope=tables_by_telescope,
        schedule=schedule,
        registry=registry,
        resolver=resolver,
        t1_prefix=Prefix.parse(meta["prefixes"]["t1"]),
        t2_prefix=Prefix.parse(meta["prefixes"]["t2"]),
        t3_prefix=Prefix.parse(meta["prefixes"]["t3"]),
        t4_prefix=Prefix.parse(meta["prefixes"]["t4"]),
        attractor_addr=int(meta["attractor_addr"]),
        coverage_gaps=coverage_gaps)


def save_segment(table: PacketTable, path: Path,
                 compress: bool = True) -> str:
    """Write one ``packets_*.npz`` segment; returns its sha256 digest.

    The key layout is the store's canonical one, so anything written here
    loads back through :func:`_load_segment` with full checksum
    verification. ``compress=False`` trades disk for speed — the sharded
    builder uses it for worker spill segments that live only for the
    handoff to the coordinator.
    """
    payload_offsets, blob = table.payload_blob()
    saver = np.savez_compressed if compress else np.savez
    saver(path,
          time=table.time, src_hi=table.src_hi, src_lo=table.src_lo,
          dst_hi=table.dst_hi, dst_lo=table.dst_lo,
          proto=table.protocol, port=table.dst_port,
          asn=table.src_asn, scanner=table.scanner_id,
          payload_offsets=payload_offsets, payload_blob=blob)
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _load_segment(path: Path, expected_sha: str | None) -> PacketTable:
    """Read one verified ``packets_<T>.npz`` segment.

    All on-disk failure modes surface as :class:`StoreError` — checksum
    mismatch before any decompression, then any numpy/zip/OS exception
    from actually reading the arrays (truncated files, flipped bytes
    that survive the missing-checksum legacy path, bad members).
    """
    if not path.exists():
        raise StoreError(f"missing corpus segment {path}",
                         path=path, check="exists")
    if expected_sha is not None:
        actual = hashlib.sha256(path.read_bytes()).hexdigest()
        if actual != expected_sha:
            raise StoreError(
                f"corpus segment {path} failed its sha256 check "
                f"(stored {expected_sha[:12]}…, found {actual[:12]}…)",
                path=path, check="sha256")
    try:
        with np.load(path) as data:
            # materialize every column once — indexing the lazy npz
            # members re-decompresses the whole array per access.
            # Columns go straight into a PacketTable; Packet objects are
            # only built if an analysis asks for them.
            return PacketTable.from_blob_arrays(
                time=data["time"],
                src_hi=data["src_hi"], src_lo=data["src_lo"],
                dst_hi=data["dst_hi"], dst_lo=data["dst_lo"],
                protocol=data["proto"], dst_port=data["port"],
                src_asn=data["asn"], scanner_id=data["scanner"],
                payload_offsets=data["payload_offsets"],
                payload_blob=data["payload_blob"])
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile) as exc:
        raise StoreError(f"corpus segment {path} is unreadable: {exc}",
                         path=path, check="read") from exc


def corpus_digest(corpus: PacketCorpus) -> str:
    """Content hash of the packet columns of all four telescopes.

    Hashes the time-sorted column arrays directly rather than the npz
    files — ``savez_compressed`` embeds zip member timestamps, so two
    byte-identical *corpora* do not produce byte-identical *files*. Two
    corpora with the same packets always share a digest, which is what
    the resume- and fault-differential tests compare.
    """
    digest = hashlib.sha256()
    for telescope in TELESCOPE_NAMES:
        table = corpus.table(telescope).time_sorted()
        payload_offsets, blob = table.payload_blob()
        digest.update(telescope.encode())
        for column in (table.time, table.src_hi, table.src_lo,
                       table.dst_hi, table.dst_lo, table.protocol,
                       table.dst_port, table.src_asn, table.scanner_id,
                       payload_offsets):
            digest.update(np.ascontiguousarray(column).tobytes())
        digest.update(blob)
    return digest.hexdigest()
