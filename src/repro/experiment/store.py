"""Corpus persistence.

Saves a :class:`PacketCorpus` to a directory and loads it back, so
analyses can run on a previously simulated (or externally produced)
capture without re-running the simulation:

- ``meta.json`` — config, announcement schedule, AS registry records,
  RDNS entries, telescope prefixes;
- ``packets_<T>.npz`` — columnar packet arrays per telescope (128-bit
  addresses as two uint64 halves; payloads as one concatenated blob with
  offsets).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bgp.controller import AnnouncementCycle
from repro.core.columnar import PacketTable
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone
from repro.errors import AnalysisError
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus, TELESCOPE_NAMES
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRecord, ASRegistry, NetworkType

FORMAT_VERSION = 1


def save_corpus(corpus: PacketCorpus, path: str | Path) -> Path:
    """Write ``corpus`` to directory ``path`` (created if missing)."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    for telescope in TELESCOPE_NAMES:
        # the columnar table IS the on-disk layout: its arrays are written
        # directly, with no per-packet Python loop
        table = corpus.table(telescope)
        payload_offsets, blob = table.payload_blob()
        np.savez_compressed(
            directory / f"packets_{telescope}.npz",
            time=table.time, src_hi=table.src_hi, src_lo=table.src_lo,
            dst_hi=table.dst_hi, dst_lo=table.dst_lo,
            proto=table.protocol, port=table.dst_port,
            asn=table.src_asn, scanner=table.scanner_id,
            payload_offsets=payload_offsets, payload_blob=blob)

    # the resolver only answers point queries, so RDNS entries are
    # persisted for every observed source address
    rdns: dict[str, str] = {}
    for telescope in TELESCOPE_NAMES:
        for src in corpus.table(telescope).unique_source_addresses():
            name = corpus.rdns(src)
            if name:
                rdns[str(src)] = name

    meta = {
        "format_version": FORMAT_VERSION,
        "config": {
            "seed": corpus.config.seed,
            "scale": corpus.config.scale,
            "baseline_weeks": corpus.config.baseline_weeks,
            "cycle_weeks": corpus.config.cycle_weeks,
            "num_cycles": corpus.config.num_cycles,
            "num_tier1": corpus.config.num_tier1,
            "num_tier2": corpus.config.num_tier2,
            "num_stubs": corpus.config.num_stubs,
            "feed_delay": corpus.config.feed_delay,
        },
        "schedule": [
            {
                "index": cycle.index,
                "announce_time": cycle.announce_time,
                "withdraw_time": cycle.withdraw_time,
                "prefixes": [str(p) for p in cycle.prefixes],
                "new_prefixes": [str(p) for p in cycle.new_prefixes],
            }
            for cycle in corpus.schedule
        ],
        "registry": [
            {
                "asn": record.asn,
                "network_type": record.network_type.value,
                "country": record.country,
                "name": record.name,
                "rdns_domain": record.rdns_domain,
            }
            for record in corpus.registry.records()
        ],
        "rdns": rdns,
        "prefixes": {
            "t1": str(corpus.t1_prefix),
            "t2": str(corpus.t2_prefix),
            "t3": str(corpus.t3_prefix),
            "t4": str(corpus.t4_prefix),
        },
        "attractor_addr": str(corpus.attractor_addr),
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=1))
    return directory


def load_corpus(path: str | Path) -> PacketCorpus:
    """Load a corpus previously written by :func:`save_corpus`."""
    directory = Path(path)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise AnalysisError(f"no corpus at {directory} (missing meta.json)")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported corpus format {meta.get('format_version')!r}")

    config = ExperimentConfig(**meta["config"])
    schedule = [
        AnnouncementCycle(
            index=entry["index"],
            announce_time=entry["announce_time"],
            withdraw_time=entry["withdraw_time"],
            prefixes=tuple(Prefix.parse(p) for p in entry["prefixes"]),
            new_prefixes=tuple(Prefix.parse(p)
                               for p in entry["new_prefixes"]))
        for entry in meta["schedule"]
    ]
    from repro.scanners.registry import source_prefix_for_asn
    records = [
        ASRecord(asn=entry["asn"],
                 network_type=NetworkType(entry["network_type"]),
                 country=entry["country"], name=entry["name"],
                 source_prefix=source_prefix_for_asn(entry["asn"]),
                 rdns_domain=entry["rdns_domain"])
        for entry in meta["registry"]
    ]
    registry = ASRegistry.restore(records)

    rdns_zone = Zone(origin="rdns.")
    for src_text, name in meta["rdns"].items():
        rdns_zone.add_ptr(int(src_text), name)
    resolver = Resolver([rdns_zone])

    tables_by_telescope: dict[str, PacketTable] = {}
    for telescope in TELESCOPE_NAMES:
        with np.load(directory / f"packets_{telescope}.npz") as data:
            # materialize every column once — indexing the lazy npz
            # members re-decompresses the whole array per access.
            # Columns go straight into a PacketTable; Packet objects are
            # only built if an analysis asks for them.
            tables_by_telescope[telescope] = PacketTable.from_blob_arrays(
                time=data["time"],
                src_hi=data["src_hi"], src_lo=data["src_lo"],
                dst_hi=data["dst_hi"], dst_lo=data["dst_lo"],
                protocol=data["proto"], dst_port=data["port"],
                src_asn=data["asn"], scanner_id=data["scanner"],
                payload_offsets=data["payload_offsets"],
                payload_blob=data["payload_blob"])

    return PacketCorpus(
        config=config,
        packets_by_telescope={},
        tables_by_telescope=tables_by_telescope,
        schedule=schedule,
        registry=registry,
        resolver=resolver,
        t1_prefix=Prefix.parse(meta["prefixes"]["t1"]),
        t2_prefix=Prefix.parse(meta["prefixes"]["t2"]),
        t3_prefix=Prefix.parse(meta["prefixes"]["t3"]),
        t4_prefix=Prefix.parse(meta["prefixes"]["t4"]),
        attractor_addr=int(meta["attractor_addr"]))
