"""Corpus persistence: the out-of-core chunked columnar store.

Saves a :class:`PacketCorpus` to a directory and loads it back, so
analyses can run on a previously simulated (or externally produced)
capture without re-running the simulation.

Format version 2 (the default, DESIGN §9) is chunked and memory-mapped:

- ``meta.json`` — config, announcement schedule, AS registry records,
  RDNS entries, telescope prefixes, coverage gaps, and the chunk
  manifest (per-telescope chunk list with row counts, ``[t_min, t_max]``
  time footprints, byte sizes, and one sha256 per chunk);
- ``<T>/chunk_NNNN.<column>.npy`` — per-telescope, time-partitioned
  chunk files of raw contiguous column arrays written via
  :mod:`numpy.lib.format`, so they open with ``mmap_mode="r"`` —
  zero-copy across the shard pool and analysis worker processes.

Loading a v2 corpus is lazy: ``load_corpus`` reads only ``meta.json``
and hands each telescope a
:class:`~repro.core.columnar.ChunkedPacketTable`. A chunk's sha256 is
verified on first touch, and time-range queries (phase slicing) open
only the chunks whose footprint intersects the query — *predicate
pushdown*. Version 1 (one monolithic ``packets_<T>.npz`` per telescope)
loads eagerly exactly as before; ``migrate_store`` rewrites a v1
directory as v2.

Every on-disk failure (missing file, truncation, bit flips, unreadable
data) surfaces as :class:`repro.errors.StoreError` carrying the path and
the failed check. With ``strict=False`` a bad chunk is quarantined
instead of raising: it loads empty, its slice of the timeline is
recorded as a coverage gap, and a :class:`DegradationWarning` is emitted
— sibling chunks stay readable, so one flipped byte costs one chunk of
data, not the telescope (PR 5's quarantine semantics at chunk
granularity).
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.degrade import warn_degraded
from repro.bgp.controller import AnnouncementCycle
from repro.core.columnar import (ChunkedPacketTable, PacketTable, TableChunk,
                                 iter_row_chunks)
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone
from repro.errors import StoreError
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus, TELESCOPE_NAMES
from repro.net.prefix import Prefix
from repro.scanners.registry import ASRecord, ASRegistry, NetworkType

FORMAT_VERSION = 2

#: Default rows per chunk of the v2 layout. Small enough that a
#: phase-sliced query at paper scale opens a fraction of the corpus,
#: large enough that per-chunk overhead (11 files, one sha256) stays
#: negligible.
DEFAULT_CHUNK_ROWS = 65536

#: Canonical column order of one chunk — file naming, hashing, and
#: verification all walk this tuple, so a chunk's sha256 is well-defined.
CHUNK_COLUMNS = ("time", "src_hi", "src_lo", "dst_hi", "dst_lo", "proto",
                 "port", "asn", "scanner", "payload_offsets",
                 "payload_blob")

_HASH_BLOCK = 1 << 20


def _sha256_file(path: Path, hasher=None) -> str:
    """Streamed sha256 of a file in fixed-size blocks.

    Never holds more than one block in memory, unlike
    ``Path.read_bytes()`` which doubles the segment's footprint while
    hashing.
    """
    own = hasher is None
    if own:
        hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_HASH_BLOCK)
            if not block:
                break
            hasher.update(block)
    return hasher.hexdigest() if own else ""


class _HashingWriter:
    """File wrapper that hashes and counts every byte as it is written,
    so chunk checksums never require re-reading the file."""

    __slots__ = ("_fh", "hasher", "nbytes")

    def __init__(self, fh, hasher) -> None:
        self._fh = fh
        self.hasher = hasher
        self.nbytes = 0

    def write(self, data) -> int:
        self.hasher.update(data)
        self.nbytes += len(data)
        return self._fh.write(data)


def _gauge_inc(name: str, amount: float, **labels) -> None:
    recorder = obs.current()
    if recorder is not None:
        recorder.metrics.gauge(name, **labels).inc(amount)


# -- v2 chunk writer -------------------------------------------------------


def _chunk_arrays(table: PacketTable) -> dict[str, np.ndarray]:
    """The canonical column arrays of one chunk, keyed by file name."""
    payload_offsets, blob = table.payload_blob()
    return {
        "time": table.time, "src_hi": table.src_hi, "src_lo": table.src_lo,
        "dst_hi": table.dst_hi, "dst_lo": table.dst_lo,
        "proto": table.protocol, "port": table.dst_port,
        "asn": table.src_asn, "scanner": table.scanner_id,
        "payload_offsets": payload_offsets, "payload_blob": blob,
    }


def chunk_file(directory: Path, name: str, column: str) -> Path:
    return directory / f"{name}.{column}.npy"


def write_table_chunks(table: PacketTable, directory: str | Path,
                       chunk_rows: int = DEFAULT_CHUNK_ROWS) -> list[dict]:
    """Write a table as time-partitioned chunk files; returns the manifest.

    The table is (stably) time-sorted first, so consecutive row ranges
    are also time partitions and the manifest's ``[t_min, t_max]``
    footprints support pushdown. Each chunk's sha256 covers its column
    files in :data:`CHUNK_COLUMNS` order and is computed *while
    writing* — segments are never read back to hash them.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    table = table.time_sorted()
    manifest: list[dict] = []
    for index, chunk in enumerate(iter_row_chunks(table, chunk_rows)):
        name = f"chunk_{index:04d}"
        hasher = hashlib.sha256()
        nbytes = 0
        for column, array in _chunk_arrays(chunk).items():
            with open(chunk_file(directory, name, column), "wb") as fh:
                writer = _HashingWriter(fh, hasher)
                np.lib.format.write_array(
                    writer, np.ascontiguousarray(array), version=(1, 0))
                nbytes += writer.nbytes
        manifest.append({
            "name": name,
            "rows": len(chunk),
            "t_min": float(chunk.time[0]),
            "t_max": float(chunk.time[-1]),
            "bytes": nbytes,
            "sha256": hasher.hexdigest(),
        })
    return manifest


# -- v2 chunk reader -------------------------------------------------------


class _ChunkReader:
    """Lazy, verified access to one on-disk chunk.

    ``load()`` streams the chunk's sha256 on first touch (in
    :data:`CHUNK_COLUMNS` order, matching the writer), then memory-maps
    the column files. With ``strict=False`` a failed check quarantines
    the chunk: it loads empty, ``[gap_start, gap_end)`` is merged into
    the shared ``gaps`` dict, and a :class:`DegradationWarning` is
    emitted — siblings are unaffected.
    """

    __slots__ = ("directory", "telescope", "entry", "strict", "gaps",
                 "gap_window", "verified", "broken")

    def __init__(self, directory: Path, telescope: str, entry: dict,
                 strict: bool, gaps: dict,
                 gap_window: tuple[float, float]) -> None:
        self.directory = directory
        self.telescope = telescope
        self.entry = entry
        self.strict = strict
        self.gaps = gaps
        self.gap_window = gap_window
        self.verified = False
        self.broken = False

    def _paths(self) -> list[tuple[str, Path]]:
        return [(column, chunk_file(self.directory, self.entry["name"],
                                    column))
                for column in CHUNK_COLUMNS]

    def verify(self) -> None:
        """Stream the chunk's sha256 and compare with the manifest."""
        if self.verified or self.broken:
            return
        hasher = hashlib.sha256()
        for _, path in self._paths():
            if not path.exists():
                raise StoreError(f"missing corpus chunk file {path}",
                                 path=path, check="exists")
            _sha256_file(path, hasher)
        actual = hasher.hexdigest()
        expected = self.entry["sha256"]
        obs.add("store.chunks_verified_total", telescope=self.telescope)
        if actual != expected:
            path = self._paths()[0][1]
            raise StoreError(
                f"corpus chunk {self.entry['name']} of {self.telescope} "
                f"failed its sha256 check (stored {expected[:12]}…, "
                f"found {actual[:12]}…)", path=path, check="sha256")
        self.verified = True

    def quarantine(self, exc: StoreError) -> PacketTable:
        self.broken = True
        obs.add("store.chunks_quarantined_total", telescope=self.telescope)
        obs.event("store.quarantine", unit="chunk",
                  telescope=self.telescope, chunk=self.entry["name"],
                  check=exc.check, gap=list(self.gap_window))
        existing = self.gaps.get(self.telescope, ())
        self.gaps[self.telescope] = tuple(
            sorted(set(existing) | {self.gap_window}))
        warn_degraded(
            f"corpus chunk {self.entry['name']} of {self.telescope} "
            f"quarantined (failed {exc.check} check): "
            f"[{self.gap_window[0]:.0f}, {self.gap_window[1]:.0f}) "
            "becomes a coverage gap", artifact="load_corpus",
            telescope=self.telescope, reason=exc.check)
        return PacketTable.empty()

    def load(self) -> PacketTable:
        if self.broken:
            return PacketTable.empty()
        try:
            self.verify()
            arrays = {}
            for column, path in self._paths():
                try:
                    arrays[column] = np.load(path, mmap_mode="r")
                except (OSError, ValueError, KeyError, EOFError) as exc:
                    raise StoreError(
                        f"corpus chunk file {path} is unreadable: {exc}",
                        path=path, check="read") from exc
        except StoreError as exc:
            if self.strict:
                raise
            return self.quarantine(exc)
        obs.add("store.chunks_opened_total", telescope=self.telescope)
        _gauge_inc("store.bytes_mapped", self.entry["bytes"],
                   telescope=self.telescope)
        return PacketTable.from_blob_arrays(
            time=arrays["time"],
            src_hi=arrays["src_hi"], src_lo=arrays["src_lo"],
            dst_hi=arrays["dst_hi"], dst_lo=arrays["dst_lo"],
            protocol=arrays["proto"], dst_port=arrays["port"],
            src_asn=arrays["asn"], scanner_id=arrays["scanner"],
            payload_offsets=arrays["payload_offsets"],
            payload_blob=arrays["payload_blob"])


def open_table_chunks(directory: str | Path, manifest: list[dict],
                      telescope: str = "", strict: bool = True,
                      gaps: dict | None = None,
                      duration: float | None = None) -> ChunkedPacketTable:
    """A lazy :class:`ChunkedPacketTable` over a written chunk manifest.

    ``gaps``/``duration`` wire the lenient quarantine path: each chunk
    owns the slice of the timeline from its first timestamp to the next
    chunk's (the first chunk owns from 0, the last up to ``duration``),
    so quarantining it records exactly that window as a coverage gap and
    quarantining *every* chunk covers the whole run — matching v1's
    whole-telescope semantics when a telescope has one chunk.
    """
    directory = Path(directory)
    if gaps is None:
        gaps = {}
    chunks = []
    for index, entry in enumerate(manifest):
        gap_start = 0.0 if index == 0 else float(entry["t_min"])
        if index + 1 < len(manifest):
            gap_end = float(manifest[index + 1]["t_min"])
        else:
            gap_end = duration if duration is not None \
                else float(entry["t_max"])
        reader = _ChunkReader(directory, telescope, entry, strict, gaps,
                              (gap_start, gap_end))
        chunks.append(TableChunk(
            rows=int(entry["rows"]), t_min=float(entry["t_min"]),
            t_max=float(entry["t_max"]), loader=reader.load,
            nbytes=int(entry["bytes"])))
    return ChunkedPacketTable(chunks)


# -- corpus save/load ------------------------------------------------------


def save_corpus(corpus: PacketCorpus, path: str | Path,
                format_version: int = FORMAT_VERSION,
                chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Path:
    """Write ``corpus`` to directory ``path`` (created if missing).

    ``format_version=2`` (the default) writes the chunked mmap layout;
    ``format_version=1`` writes the legacy monolithic-npz layout — kept
    for differential tests and downgrade interop.
    """
    if format_version not in (1, 2):
        raise StoreError(f"cannot write corpus format {format_version!r}",
                         path=Path(path), check="format_version")
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    checksums: dict[str, str] = {}
    store: dict | None = None
    if format_version == 1:
        for telescope in TELESCOPE_NAMES:
            # the columnar table IS the on-disk layout: its arrays are
            # written directly, with no per-packet Python loop
            checksums[telescope] = save_segment(
                corpus.table(telescope),
                directory / f"packets_{telescope}.npz")
    else:
        with obs.span("store.write_chunks", chunk_rows=chunk_rows):
            store = {"chunk_rows": chunk_rows, "chunks": {}}
            for telescope in TELESCOPE_NAMES:
                store["chunks"][telescope] = write_table_chunks(
                    corpus.table(telescope), directory / telescope,
                    chunk_rows)

    # the resolver only answers point queries, so RDNS entries are
    # persisted for every observed source address — one batched pass
    # over the union of all telescopes' sources
    sources: set[int] = set()
    for telescope in TELESCOPE_NAMES:
        sources |= corpus.table(telescope).unique_source_addresses()
    rdns = {str(src): name
            for src, name in corpus.rdns_batch(sorted(sources)).items()}

    meta = {
        "format_version": format_version,
        "config": {
            "seed": corpus.config.seed,
            "scale": corpus.config.scale,
            "baseline_weeks": corpus.config.baseline_weeks,
            "cycle_weeks": corpus.config.cycle_weeks,
            "num_cycles": corpus.config.num_cycles,
            "num_tier1": corpus.config.num_tier1,
            "num_tier2": corpus.config.num_tier2,
            "num_stubs": corpus.config.num_stubs,
            "feed_delay": corpus.config.feed_delay,
        },
        "schedule": [
            {
                "index": cycle.index,
                "announce_time": cycle.announce_time,
                "withdraw_time": cycle.withdraw_time,
                "prefixes": [str(p) for p in cycle.prefixes],
                "new_prefixes": [str(p) for p in cycle.new_prefixes],
            }
            for cycle in corpus.schedule
        ],
        "registry": [
            {
                "asn": record.asn,
                "network_type": record.network_type.value,
                "country": record.country,
                "name": record.name,
                "rdns_domain": record.rdns_domain,
            }
            for record in corpus.registry.records()
        ],
        "rdns": rdns,
        "prefixes": {
            "t1": str(corpus.t1_prefix),
            "t2": str(corpus.t2_prefix),
            "t3": str(corpus.t3_prefix),
            "t4": str(corpus.t4_prefix),
        },
        "attractor_addr": str(corpus.attractor_addr),
        "coverage_gaps": {
            name: [[start, end] for start, end in windows]
            for name, windows in corpus.coverage_gaps.items()},
    }
    if format_version == 1:
        meta["checksums"] = checksums
    else:
        meta["store"] = store
    (directory / "meta.json").write_text(json.dumps(meta, indent=1))
    return directory


def load_corpus(path: str | Path, strict: bool = True,
                verify: str = "lazy") -> PacketCorpus:
    """Load a corpus previously written by :func:`save_corpus`.

    A v1 corpus loads eagerly, verifying every segment before use. A v2
    corpus loads *lazily*: only ``meta.json`` is read here, and each
    chunk's sha256 is checked on first touch (``verify="eager"``
    pre-verifies every chunk's hash up front without mapping any data).

    With ``strict=True`` (the default) a missing, truncated, or
    corrupted file raises :class:`StoreError` naming the path and the
    failed check — at load time for v1/eager, at first touch for lazy
    v2. With ``strict=False`` the bad unit is quarantined instead: a v1
    segment loads its telescope empty with a whole-run coverage gap; a
    v2 chunk loads empty with a gap covering only its slice of the
    timeline, leaving sibling chunks readable.
    """
    if verify not in ("lazy", "eager"):
        raise StoreError(f"unknown verify mode {verify!r}",
                         path=Path(path), check="verify")
    directory = Path(path)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StoreError(f"no corpus at {directory} (missing meta.json)",
                         path=meta_path, check="exists")
    try:
        meta = json.loads(meta_path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise StoreError(f"corpus metadata {meta_path} is unreadable: {exc}",
                         path=meta_path, check="json") from exc
    version = meta.get("format_version")
    if version not in (1, 2):
        raise StoreError(
            f"unsupported corpus format {version!r}",
            path=meta_path, check="format_version")

    config = ExperimentConfig(**meta["config"])
    schedule = [
        AnnouncementCycle(
            index=entry["index"],
            announce_time=entry["announce_time"],
            withdraw_time=entry["withdraw_time"],
            prefixes=tuple(Prefix.parse(p) for p in entry["prefixes"]),
            new_prefixes=tuple(Prefix.parse(p)
                               for p in entry["new_prefixes"]))
        for entry in meta["schedule"]
    ]
    from repro.scanners.registry import source_prefix_for_asn
    records = [
        ASRecord(asn=entry["asn"],
                 network_type=NetworkType(entry["network_type"]),
                 country=entry["country"], name=entry["name"],
                 source_prefix=source_prefix_for_asn(entry["asn"]),
                 rdns_domain=entry["rdns_domain"])
        for entry in meta["registry"]
    ]
    registry = ASRegistry.restore(records)

    rdns_zone = Zone(origin="rdns.")
    for src_text, name in meta["rdns"].items():
        rdns_zone.add_ptr(int(src_text), name)
    resolver = Resolver([rdns_zone])

    coverage_gaps = {
        name: tuple((float(start), float(end)) for start, end in windows)
        for name, windows in meta.get("coverage_gaps", {}).items()}

    if version == 1:
        tables = _load_tables_v1(directory, meta, config, strict,
                                 coverage_gaps)
    else:
        tables = _load_tables_v2(directory, meta, config, strict,
                                 coverage_gaps, verify)

    return PacketCorpus(
        config=config,
        packets_by_telescope={},
        tables_by_telescope=tables,
        schedule=schedule,
        registry=registry,
        resolver=resolver,
        t1_prefix=Prefix.parse(meta["prefixes"]["t1"]),
        t2_prefix=Prefix.parse(meta["prefixes"]["t2"]),
        t3_prefix=Prefix.parse(meta["prefixes"]["t3"]),
        t4_prefix=Prefix.parse(meta["prefixes"]["t4"]),
        attractor_addr=int(meta["attractor_addr"]),
        coverage_gaps=coverage_gaps)


def _load_tables_v1(directory: Path, meta: dict, config: ExperimentConfig,
                    strict: bool,
                    coverage_gaps: dict) -> dict[str, PacketTable]:
    """Eager verified load of the legacy monolithic-npz layout."""
    checksums = meta.get("checksums", {})
    tables: dict[str, PacketTable] = {}
    for telescope in TELESCOPE_NAMES:
        segment = directory / f"packets_{telescope}.npz"
        try:
            tables[telescope] = _load_segment(
                segment, checksums.get(telescope))
        except StoreError as exc:
            if strict:
                raise
            # quarantine: the telescope loads empty and its whole run
            # becomes a coverage gap so analyses normalize, not crash
            obs.add("store.segments_quarantined_total", telescope=telescope)
            obs.event("store.quarantine", unit="segment",
                      telescope=telescope, segment=segment.name,
                      check=exc.check)
            warn_degraded(
                f"corpus segment {segment.name} quarantined "
                f"(failed {exc.check} check): {telescope} loads empty",
                artifact="load_corpus", telescope=telescope,
                reason=exc.check)
            tables[telescope] = PacketTable.empty()
            coverage_gaps[telescope] = ((0.0, config.duration),)
    return tables


def _load_tables_v2(directory: Path, meta: dict, config: ExperimentConfig,
                    strict: bool, coverage_gaps: dict,
                    verify: str) -> dict[str, ChunkedPacketTable]:
    """Lazy chunk-manifest load of the v2 layout.

    ``coverage_gaps`` is the *live* dict handed to the corpus: a chunk
    quarantined on a later touch merges its gap window in place, so
    gap-aware analyses see it as soon as the quarantine happens.
    """
    store = meta.get("store")
    if not isinstance(store, dict) or "chunks" not in store:
        raise StoreError("v2 corpus metadata is missing its chunk "
                         "manifest", path=directory / "meta.json",
                         check="manifest")
    tables: dict[str, ChunkedPacketTable] = {}
    for telescope in TELESCOPE_NAMES:
        manifest = store["chunks"].get(telescope, [])
        table = open_table_chunks(
            directory / telescope, manifest, telescope=telescope,
            strict=strict, gaps=coverage_gaps, duration=config.duration)
        if verify == "eager":
            for chunk, entry in zip(table.chunks, manifest):
                try:
                    reader_load = chunk._loader
                    reader = reader_load.__self__
                    reader.verify()
                except StoreError as exc:
                    if strict:
                        raise
                    reader.quarantine(exc)
                    chunk.rows = 0
        tables[telescope] = table
    return tables


def migrate_store(src: str | Path, dst: str | Path,
                  chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Path:
    """Rewrite a saved corpus (v1 or v2) as a v2 chunked store at ``dst``.

    Loads strictly — a corrupted source fails the migration rather than
    silently shrinking the output — and returns the destination path.
    """
    src_dir, dst_dir = Path(src), Path(dst)
    if src_dir.resolve() == dst_dir.resolve():
        raise StoreError("migration source and destination are the same "
                         f"directory {src_dir}", path=dst_dir,
                         check="destination")
    corpus = load_corpus(src_dir, strict=True)
    return save_corpus(corpus, dst_dir, format_version=2,
                       chunk_rows=chunk_rows)


# -- v1 segment helpers (legacy layout + interop) --------------------------


def save_segment(table: PacketTable, path: Path,
                 compress: bool = True) -> str:
    """Write one ``packets_*.npz`` segment; returns its sha256 digest.

    The key layout is the store's canonical v1 one, so anything written
    here loads back through :func:`_load_segment` with full checksum
    verification. ``compress=False`` trades disk for speed. The digest
    is streamed in fixed-size blocks — the segment is never held in
    memory a second time just to hash it.
    """
    payload_offsets, blob = table.payload_blob()
    saver = np.savez_compressed if compress else np.savez
    saver(path,
          time=table.time, src_hi=table.src_hi, src_lo=table.src_lo,
          dst_hi=table.dst_hi, dst_lo=table.dst_lo,
          proto=table.protocol, port=table.dst_port,
          asn=table.src_asn, scanner=table.scanner_id,
          payload_offsets=payload_offsets, payload_blob=blob)
    return _sha256_file(Path(path))


def _load_segment(path: Path, expected_sha: str | None) -> PacketTable:
    """Read one verified ``packets_<T>.npz`` segment.

    All on-disk failure modes surface as :class:`StoreError` — checksum
    mismatch before any decompression, then any numpy/zip/OS exception
    from actually reading the arrays (truncated files, flipped bytes
    that survive the missing-checksum legacy path, bad members).
    """
    if not path.exists():
        raise StoreError(f"missing corpus segment {path}",
                         path=path, check="exists")
    if expected_sha is not None:
        actual = _sha256_file(path)
        if actual != expected_sha:
            raise StoreError(
                f"corpus segment {path} failed its sha256 check "
                f"(stored {expected_sha[:12]}…, found {actual[:12]}…)",
                path=path, check="sha256")
    try:
        with np.load(path) as data:
            # materialize every column once — indexing the lazy npz
            # members re-decompresses the whole array per access.
            # Columns go straight into a PacketTable; Packet objects are
            # only built if an analysis asks for them.
            return PacketTable.from_blob_arrays(
                time=data["time"],
                src_hi=data["src_hi"], src_lo=data["src_lo"],
                dst_hi=data["dst_hi"], dst_lo=data["dst_lo"],
                protocol=data["proto"], dst_port=data["port"],
                src_asn=data["asn"], scanner_id=data["scanner"],
                payload_offsets=data["payload_offsets"],
                payload_blob=data["payload_blob"])
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile) as exc:
        raise StoreError(f"corpus segment {path} is unreadable: {exc}",
                         path=path, check="read") from exc


def corpus_digest(corpus: PacketCorpus) -> str:
    """Content hash of the packet columns of all four telescopes.

    Hashes the time-sorted column arrays directly rather than the
    on-disk files — compressed containers embed timestamps, and the v2
    chunk layout depends on ``chunk_rows`` — so two corpora with the
    same packets always share a digest regardless of how (or whether)
    they were stored. Contiguous columns are hashed through their buffer
    directly; only a genuinely non-contiguous column pays a copy.
    """
    digest = hashlib.sha256()
    for telescope in TELESCOPE_NAMES:
        table = corpus.table(telescope).time_sorted()
        payload_offsets, blob = table.payload_blob()
        digest.update(telescope.encode())
        for column in (table.time, table.src_hi, table.src_lo,
                       table.dst_hi, table.dst_lo, table.protocol,
                       table.dst_port, table.src_asn, table.scanner_id,
                       payload_offsets):
            column = np.asarray(column)
            if not column.flags.c_contiguous:
                column = np.ascontiguousarray(column)
            digest.update(column)
        digest.update(np.asarray(blob))
    return digest.hexdigest()
