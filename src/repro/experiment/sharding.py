"""Sharded multi-process corpus builder (DESIGN §8).

Partitions the scanner population across worker processes and runs the
event loop per shard. Each worker owns:

- a **disjoint subset of scanners** — a deterministic cost-balanced
  LPT assignment (:func:`weighted_assignment`) every worker derives
  identically from its population replica; every scanner draws from its
  own named RNG stream (:meth:`repro.sim.rng.RngStreams.fresh`), so
  skipping the scanners of other shards does not perturb a single draw
  of the scanners kept;
- a **replica of the deployment** — rebuilt from ``(config.seed,
  config)`` with its own :class:`Simulator`. The routing data plane is
  driven by the static announcement schedule, so workers never run the
  BGP convergence flood: the coordinator simulates the fabric once (its
  replica with no scanners scheduled), records the collector journal,
  and ships it in the :class:`ShardTask` for the worker's collector to
  replay (:meth:`repro.bgp.collector.RouteCollector.arm_replay`) —
  reactive scanners and the hitlist see publication-identical feeds;
- its own **batched-emission pipeline** producing per-shard
  :class:`~repro.core.columnar.PacketTable` segments, spilled as
  store-layout v2 chunk files (:func:`repro.experiment.store.
  write_table_chunks` — time-sorted, sha256-while-writing, mmap-able)
  whose manifests travel back to the coordinator in the result dict.

The coordinator opens the spill manifests lazily
(:func:`open_shard_segments`) and merges them window-at-a-time with a
stable ``(time, scanner_id)`` lexsort per time window
(:func:`repro.experiment.corpus.merge_chunked_shards`), which
reproduces the unsharded table byte-for-byte for any shard count, any
partitioning, and any chunk size — without ever lexsorting the full
corpus in RAM — the differential tests in ``tests/test_sharding.py``
and ``tests/test_store_v2.py`` pin this with ``corpus_digest`` as the
oracle.

Workers are stateless: every task rebuilds its world from the picklable
:class:`ShardTask`, so any process pool (fresh, reused, fork or spawn)
executes it correctly. The pool plugs into
:func:`repro.analysis.parallel.fan_out` via its injected-executor path,
sharing one worker pool between the sharded builder and ``--jobs``
analysis fan-outs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Iterable, Sequence

from repro import obs
from repro.obs import events as obsevents
from repro.obs.metrics import _parse_key
from repro.analysis.parallel import fan_out
from repro.bgp.collector import CollectorEntry
from repro.bgp.messages import UpdateKind
from repro.core.columnar import ChunkedPacketTable, PacketTable
from repro.errors import ExperimentError
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import TELESCOPE_NAMES
from repro.experiment.store import (DEFAULT_CHUNK_ROWS, open_table_chunks,
                                    write_table_chunks)
from repro.faults import FaultInjector, FaultPlan
from repro.scanners.base import (ConstPackets, Scanner, ScannerContext,
                                 TemporalKind, UniformPackets)
from repro.scanners.population import PopulationInputs, build_population
from repro.scanners.registry import ASRegistry
from repro.sim.events import Simulator
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (T1_PREFIX, T2_PREFIX, T3_PREFIX,
                                        T4_PREFIX, build_deployment)

_log = obs.log.get_logger("sharding")


# -- partitioner -----------------------------------------------------------


def resolve_shards(spec: int | str) -> int:
    """Turn a ``--shards`` value (``N`` or ``"auto"``) into a count.

    ``auto`` uses one shard per CPU available to this process.
    """
    if isinstance(spec, str):
        if spec.strip().lower() == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # pragma: no cover - non-Linux
                return max(1, os.cpu_count() or 1)
        try:
            spec = int(spec)
        except ValueError:
            raise ExperimentError(
                f"invalid shard count {spec!r} (expected an integer "
                "or 'auto')") from None
    count = int(spec)
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    return count


def shard_of(scanner_id: int, num_shards: int) -> int:
    """The shard owning ``scanner_id`` under the simple modulo mapping.

    Plain modulo is total and stable by construction: independent of
    population size and build order, and it spreads each ID block
    (ordinary scanners from 1, the atlas fleet from 1_000_000, heavy
    hitters from 2_000_000) across all shards instead of clustering a
    whole class on one worker. The sharded builder itself balances by
    *estimated cost* instead (:func:`weighted_assignment`); modulo
    remains the partition for callers that only have IDs.
    """
    if num_shards < 1:
        raise ExperimentError(f"shard count must be >= 1, got {num_shards}")
    return scanner_id % num_shards


def partition(scanner_ids: Iterable[int],
              num_shards: int) -> list[list[int]]:
    """Split scanner IDs into ``num_shards`` disjoint, exhaustive lists."""
    shards: list[list[int]] = [[] for _ in range(resolve_shards(num_shards))]
    for scanner_id in scanner_ids:
        shards[shard_of(scanner_id, num_shards)].append(scanner_id)
    return shards


#: cost-model constants for :func:`scanner_weight` — packets-equivalent
#: fixed cost of firing and flushing one session, expected packets per
#: session when the sampler is opaque, the session multiplier for
#: scanners that split each firing into one session per announced
#: prefix, and the surcharge per *reaction* session (feed callback,
#: ad-hoc scheduling and a tiny batch of its own make a reaction
#: session dearer than a pre-scheduled one of the same size).
_SESSION_COST = 20.0
_DEFAULT_PACKETS = 8.0
_SPREAD_FACTOR = 6.0
_REACTION_EXTRA = 40.0


def scanner_weight(scanner: Scanner, duration: float,
                   announce_count: int = 0) -> float:
    """Deterministic static estimate of a scanner's simulate+flush cost.

    A pure function of the agent's construction parameters (temporal
    schedule, session-size sampler, activity window) plus the number of
    feed announcements a reactive scanner will see, so every worker
    computes the identical weight table without coordination. Duck-typed
    over the agent protocol: TGA agents carry ``period`` and
    ``probes_per_round`` instead of a :class:`TemporalBehavior`. The
    estimate only has to *rank* scanners well enough for load balancing;
    corpus bytes never depend on the partition (the canonical flush
    order and the merge lexsort are partition-agnostic).
    """
    active_start = getattr(scanner, "active_start", None)
    active_end = getattr(scanner, "active_end", None)
    start = 0.0 if active_start is None else max(0.0, active_start)
    end = duration if active_end is None else min(duration, active_end)
    span = max(0.0, end - start)
    temporal = getattr(scanner, "temporal", None)
    if temporal is None:
        # TGA-style agent: fixed probe rounds on a fixed period
        period = getattr(scanner, "period", 0.0)
        sessions = 1.0 + span / period if period > 0 else 1.0
        packets = float(getattr(scanner, "probes_per_round",
                                _DEFAULT_PACKETS))
        return sessions * (_SESSION_COST + packets)
    if temporal.kind is TemporalKind.ONE_OFF:
        sessions = 1.0 if span > 0 else 0.0
    elif temporal.kind is TemporalKind.PERIODIC:
        sessions = 1.0 + span / temporal.period if temporal.period > 0 else 1.0
    elif temporal.kind is TemporalKind.INTERMITTENT:
        sessions = 1.0 + span / temporal.mean_gap \
            if temporal.mean_gap > 0 else 1.0
    else:
        sessions = 0.0
    react_sessions = 0.0
    if getattr(scanner, "reaction_delay", None) is not None and duration > 0:
        # one extra session per feed announcement landing in the window
        react_sessions = announce_count * (span / duration)
    if getattr(scanner, "spread_prefix_sessions", False):
        sessions *= _SPREAD_FACTOR
    sampler = getattr(scanner, "packets_per_session", None)
    if isinstance(sampler, ConstPackets):
        packets = float(sampler.n)
    elif isinstance(sampler, UniformPackets):
        packets = (sampler.low + sampler.high) / 2.0
    else:
        packets = _DEFAULT_PACKETS
    return (sessions + react_sessions) * (_SESSION_COST + packets) \
        + react_sessions * _REACTION_EXTRA


def weighted_assignment(population: "Sequence[Scanner]", num_shards: int,
                        duration: float,
                        announce_count: int = 0) -> dict[int, int]:
    """LPT assignment of scanners to shards by estimated cost.

    Longest-processing-time greedy: place scanners in descending weight
    order onto the currently lightest shard. Ties break on ascending
    scanner ID (sort) and lowest shard index (``min``), making the
    assignment a pure function of ``(population, num_shards, duration,
    announce_count)`` — every worker derives the same table from its
    own population replica. The six heavy hitters own the majority of
    all packets, so cost-blind modulo placement regularly stacks two of
    them on one worker; LPT keeps the worst shard near the mean.
    """
    if num_shards < 1:
        raise ExperimentError(f"shard count must be >= 1, got {num_shards}")
    order = sorted(
        ((scanner_weight(s, duration, announce_count), s.scanner_id)
         for s in population),
        key=lambda pair: (-pair[0], pair[1]))
    loads = [0.0] * num_shards
    assign: dict[int, int] = {}
    for weight, scanner_id in order:
        shard = min(range(num_shards), key=loads.__getitem__)
        loads[shard] += weight
        assign[scanner_id] = shard
    return assign


# -- worker ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to rebuild and run its shard.

    Deliberately limited to picklable, value-semantic fields so the task
    crosses any process-pool boundary (fork or spawn) unchanged.
    """

    config: ExperimentConfig
    plan: FaultPlan | None
    shard: int
    num_shards: int
    spill_dir: str
    #: announcements of the recorded collector journal (the
    #: coordinator's recording pass) the worker replays instead of
    #: simulating the BGP flood itself — withdrawals are pruned because
    #: every subscriber a worker can host ignores them; ``None`` falls
    #: back to the self-contained mode where the worker runs the full
    #: fabric — slower, but needs no coordinator pass.
    feed: tuple[CollectorEntry, ...] | None = None
    #: run the worker under its own FlightRecorder and return a metrics
    #: snapshot; the coordinator turns this off when it has no recorder
    #: itself, sparing the workers the recording overhead.
    record_obs: bool = True
    #: rows per spill chunk — the coordinator's merge window granularity
    #: and the unit of lazy loading on its side.
    chunk_rows: int = DEFAULT_CHUNK_ROWS
    #: directory for per-shard telemetry spools (heartbeat/metric-delta
    #: events + the span-tree dump the coordinator merges into one
    #: Chrome trace); ``None`` disables spooling.
    obs_spool: str | None = None
    #: the campaign's run id, stamped on every spooled event record and
    #: onto the worker's log lines (``<run_id>/s<shard>``).
    run_id: str | None = None
    #: sim-seconds between worker heartbeat/metric-delta events
    #: (``None``/0 = no periodic beats, only start/end records).
    heartbeat_interval: float | None = None
    #: pid of the coordinator — a worker only reconfigures process-wide
    #: logging when it actually runs in a different process (the serial
    #: fallback path executes tasks inside the coordinator).
    coordinator_pid: int = 0


def run_shard(task: ShardTask) -> dict:
    """Worker entrypoint: build, simulate, flush, and spill one shard.

    Returns a plain dict (picklable) with the spill segment paths and
    their sha256 digests, emission totals, per-stage wall and CPU
    seconds, and the worker's metrics snapshot. CPU seconds are what the
    scaling bench aggregates — on a machine with fewer cores than
    shards, wall time includes time-slicing that says nothing about the
    per-shard work.
    """
    stage_wall: dict[str, float] = {}
    stage_cpu: dict[str, float] = {}
    last = [time.perf_counter(), time.process_time()]

    def stage(name: str) -> None:
        now_wall, now_cpu = time.perf_counter(), time.process_time()
        stage_wall[name] = now_wall - last[0]
        stage_cpu[name] = now_cpu - last[1]
        last[0], last[1] = now_wall, now_cpu

    # telemetry spooling: the worker's own event log (stamped shard=i)
    # plus, at the end, its full span tree — the coordinator tails the
    # former live and merges the latter into the single campaign trace.
    # The inherited process-wide event log (fork pool) or the live
    # coordinator one (serial fallback) is saved and restored, never
    # written to from shard code.
    previous_log = obsevents.current()
    event_log: obsevents.EventLog | None = None
    spooling = task.record_obs and task.obs_spool is not None
    if spooling:
        event_log = obsevents.EventLog(
            obsevents.spool_path(task.obs_spool, task.shard),
            run_id=task.run_id, shard=task.shard)
        obsevents.install(event_log)
        if task.run_id and os.getpid() != task.coordinator_pid:
            obs.log.configure(run_id=f"{task.run_id}/s{task.shard}")
    else:
        obsevents.uninstall()
    try:
        return _run_shard_body(task, stage, stage_wall, stage_cpu)
    finally:
        if event_log is not None:
            event_log.close()
        if previous_log is not None:
            obsevents.install(previous_log)
        else:
            obsevents.uninstall()


def _run_shard_body(task: ShardTask, stage, stage_wall: dict,
                    stage_cpu: dict) -> dict:
    config = task.config
    spooling = task.record_obs and task.obs_spool is not None
    with (obs.FlightRecorder() if task.record_obs
          else nullcontext()) as recorder:
        if recorder is not None and task.heartbeat_interval:
            recorder.heartbeat_interval = task.heartbeat_interval
        obsevents.emit("shard.start", pid=os.getpid(),
                       shards=task.num_shards)
        with obs.span("shard.run", shard=task.shard,
                      shards=task.num_shards):
            streams = RngStreams(config.seed)
            simulator = Simulator(shard=task.shard)
            deployment = build_deployment(
                streams,
                simulator=simulator,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay,
                replay_feed=task.feed)
            registry = ASRegistry()
            inputs = PopulationInputs(
                schedule=deployment.cycles(),
                announced=deployment.announced_t1_prefixes,
                t1_prefix=T1_PREFIX,
                t2_prefix=T2_PREFIX,
                t3_prefix=T3_PREFIX,
                t4_prefix=T4_PREFIX,
                attractor_addr=deployment.productive.attractor_addr,
                duration=config.duration)
            # the population build is replayed in full — its shared
            # assignment stream must see the same draw sequence as the
            # unsharded build — and only then thinned to this shard
            population = build_population(config.population, inputs,
                                          registry, streams)
            stage("build")

            context = ScannerContext(
                simulator=simulator,
                route=deployment.route,
                route_batch=deployment.route_batch,
                batch_emit=True,
                defer_batch=True,
                collector=deployment.collector,
                window_start=0.0,
                window_end=config.duration)
            announce_count = 0 if task.feed is None else sum(
                1 for e in task.feed if e.kind is UpdateKind.ANNOUNCE)
            assign = weighted_assignment(population, task.num_shards,
                                         config.duration, announce_count)
            mine = [s for s in population
                    if assign[s.scanner_id] == task.shard]
            for scanner in mine:
                scanner.start(context)
            if task.plan is not None:
                # with a recorded feed the flap's BGP side is already in
                # the journal; arm only the data-plane faults
                FaultInjector(task.plan, seed=config.seed).install(
                    deployment, control_plane=task.feed is None)
            stage("schedule")

            if recorder is not None and task.heartbeat_interval:
                recorder.attach(simulator, config.duration)
            try:
                simulator.run_until(config.duration)
            finally:
                if recorder is not None and task.heartbeat_interval:
                    recorder.detach(simulator)
            stage("simulate")

            context.flush_batches()
            stage("flush_batches")

            segments: dict[str, dict] = {}
            for name, telescope in deployment.telescopes.items():
                table = telescope.capture.table()
                chunk_dir = Path(task.spill_dir) / \
                    f"shard{task.shard:03d}" / name
                manifest = write_table_chunks(table, chunk_dir,
                                              task.chunk_rows)
                segments[name] = {"dir": str(chunk_dir),
                                  "manifest": manifest,
                                  "rows": len(table)}
            stage("spill")
        snapshot = recorder.metrics.snapshot() \
            if recorder is not None else {}
        if spooling and recorder is not None:
            # flush_batches/spill moved counters after the simulate-stage
            # detach; ship the remainder so the live deltas sum exactly
            # to the final snapshot
            recorder.emit_metric_deltas()
            obsevents.write_trace_spool(
                obsevents.trace_spool_path(task.obs_spool, task.shard),
                recorder.tracer.chrome_events(),
                recorder.tracer.anchor_wall(), task.shard)
        obsevents.emit("shard.end", pid=os.getpid(),
                       scanners=len(mine),
                       packets_emitted=context.packets_emitted,
                       stage_seconds=stage_wall)

    return {
        "shard": task.shard,
        "scanners": len(mine),
        "segments": segments,
        "packets_emitted": context.packets_emitted,
        "packets_unrouted": context.packets_unrouted,
        "stage_seconds": stage_wall,
        "stage_cpu_seconds": stage_cpu,
        "metrics": snapshot,
    }


# -- coordinator -----------------------------------------------------------


class SpoolTailer:
    """Tail shard-worker event spools into the coordinator's telemetry.

    A daemon thread polls each worker's spool file for complete lines
    (:func:`repro.obs.events.iter_complete_lines` — half-written records
    are never parsed), then for every new record:

    - forwards it into the coordinator's unified :class:`EventLog`
      (preserving the worker's timestamps and ``shard`` field), which
      also fans it out to listeners — that is how the live
      :class:`~repro.obs.server.StatusBoard` sees per-shard progress
      while workers are still running;
    - folds ``metrics.delta`` counter increments into the live
      coordinator registry under a ``shard=<i>`` label, so ``/metrics``
      moves during the simulate stage instead of jumping at merge time.

    ``stop()`` performs one final drain, so every record a worker wrote
    before exiting lands in the unified log even if it arrived between
    the last poll and shutdown. Counters folded live are exactly the
    worker's final snapshot (workers emit a last delta before exiting),
    so the coordinator's end-of-run fold skips counters for shards the
    tailer already consumed (``_fold_shard_obs(skip_counters=...)``).
    """

    def __init__(self, spool_dir: str | Path, num_shards: int,
                 event_log: "obsevents.EventLog | None" = None,
                 registry=None, poll_interval: float = 0.25) -> None:
        self.spool_dir = Path(spool_dir)
        self.num_shards = num_shards
        self.event_log = event_log
        self.registry = registry
        self.poll_interval = poll_interval
        self._offsets = {shard: 0 for shard in range(num_shards)}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: shards whose counter deltas were folded into the registry.
        self.folded_shards: set[int] = set()

    def start(self) -> "SpoolTailer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-spool-tailer", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.drain()  # pick up anything written after the last poll

    def __enter__(self) -> "SpoolTailer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.drain()

    def drain(self) -> int:
        """Consume all new complete records; returns how many."""
        consumed = 0
        for shard in range(self.num_shards):
            lines, offset = obsevents.iter_complete_lines(
                obsevents.spool_path(self.spool_dir, shard),
                self._offsets[shard])
            self._offsets[shard] = offset
            for line in lines:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                consumed += 1
                self._consume(shard, record)
        return consumed

    def _consume(self, shard: int, record: dict) -> None:
        if record.get("kind") == "metrics.delta" \
                and self.registry is not None:
            self.folded_shards.add(shard)
            for key, moved in (record.get("counters") or {}).items():
                name, labels = _parse_key(key)
                labels["shard"] = str(shard)
                try:
                    self.registry.counter(name, **labels).inc(float(moved))
                except (TypeError, ValueError):
                    pass
        if self.event_log is not None:
            self.event_log.forward(record)


def merge_shard_traces(recorder, spool_dir: str | Path,
                       num_shards: int) -> int:
    """Fold every worker's span-tree spool into ``recorder``'s trace.

    Worker spans keep their OS pid (labeled ``shard <i>`` via Chrome
    ``process_name`` metadata) and are shifted onto the coordinator's
    timeline using the difference of the two tracers' wall-clock anchors
    — so a span that ran at wall time T renders at the same instant in
    every process track. Returns the number of shards merged.
    """
    if recorder is None:
        return 0
    anchor = recorder.tracer.anchor_wall()
    merged = 0
    for shard in range(num_shards):
        payload = obsevents.read_trace_spool(
            obsevents.trace_spool_path(spool_dir, shard))
        if payload is None:
            continue
        shift_us = (float(payload.get("anchor_wall", anchor)) - anchor) * 1e6
        events = [dict(ev, ts=ev.get("ts", 0.0) + shift_us)
                  for ev in payload["events"]]
        recorder.add_foreign_events(
            events, pid=payload.get("pid"), name=f"shard {shard}")
        merged += 1
    return merged


def shard_pool(max_workers: int) -> ProcessPoolExecutor:
    """Process pool for shard workers.

    Prefers the fork start method (POSIX): workers inherit the parent's
    imported modules copy-on-write, so task startup is milliseconds
    instead of a fresh interpreter boot. Workers rebuild all *run* state
    from the task itself, so the pool is safely reusable across calls —
    hand it to :func:`repro.analysis.parallel.fan_out` or
    ``run_experiment(shard_executor=...)`` as often as needed.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def run_shards(config: ExperimentConfig,
               plan: FaultPlan | None,
               num_shards: int,
               spill_dir: str | Path,
               executor: Executor | None = None,
               feed: tuple[CollectorEntry, ...] | None = None,
               record_obs: bool = True,
               obs_spool: str | Path | None = None,
               run_id: str | None = None,
               heartbeat_interval: float | None = None) -> list[dict]:
    """Fan the shard tasks out and return worker results in shard order.

    ``feed`` is the recorded collector journal every worker replays
    (see :class:`ShardTask`). ``obs_spool``/``run_id``/
    ``heartbeat_interval`` arm worker-side telemetry spooling (see
    :class:`ShardTask`); start a :class:`SpoolTailer` over the same
    directory to consume it live. Uses :func:`fan_out` with an injected
    process pool, so shard workers get the same bounded-retry and
    serial-fallback treatment as analysis tasks (a shard whose worker
    dies twice reruns in the coordinator — slower, never wrong, and
    counted in ``analysis.fanout_serial_fallbacks_total``).
    """
    tasks = {
        f"shard-{index}": partial(run_shard, ShardTask(
            config=config, plan=plan, shard=index,
            num_shards=num_shards, spill_dir=str(spill_dir),
            feed=feed, record_obs=record_obs,
            obs_spool=str(obs_spool) if obs_spool is not None else None,
            run_id=run_id, heartbeat_interval=heartbeat_interval,
            coordinator_pid=os.getpid()))
        for index in range(num_shards)}
    pool = executor if executor is not None else shard_pool(num_shards)
    try:
        results = fan_out(tasks, jobs=num_shards, executor=pool)
    finally:
        if executor is None:
            pool.shutdown(wait=True)
    ordered = [results[f"shard-{index}"][1] for index in range(num_shards)]
    for res in ordered:
        _log.debug("shard %d: %d scanners, %d packets emitted",
                   res["shard"], res["scanners"], res["packets_emitted"])
    return ordered


def open_shard_segments(results: Sequence[dict]) \
        -> dict[str, list[ChunkedPacketTable]]:
    """Lazy verified view of every worker spill segment, in shard order.

    Returns each segment as a
    :class:`~repro.core.columnar.ChunkedPacketTable` over the worker's
    spill manifest: nothing is read here, and each chunk's sha256 is
    checked on first touch (strict — a chunk truncated or corrupted
    between spill and merge raises :class:`repro.errors.StoreError`
    instead of silently merging garbage). The window merge then maps
    only the chunks of the window it is currently merging.
    """
    segments: dict[str, list[ChunkedPacketTable]] = {
        name: [] for name in TELESCOPE_NAMES}
    for res in sorted(results, key=lambda r: r["shard"]):
        for name in TELESCOPE_NAMES:
            info = res["segments"][name]
            segments[name].append(open_table_chunks(
                Path(info["dir"]), info["manifest"], telescope=name,
                strict=True))
    return segments


def load_shard_segments(results: Sequence[dict]) \
        -> dict[str, list[PacketTable]]:
    """Eagerly materialized :func:`open_shard_segments` (verified)."""
    return {name: [table.materialize() for table in tables]
            for name, tables in open_shard_segments(results).items()}
