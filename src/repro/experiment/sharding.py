"""Sharded multi-process corpus builder (DESIGN §8).

Partitions the scanner population across worker processes and runs the
event loop per shard. Each worker owns:

- a **disjoint subset of scanners** — a deterministic cost-balanced
  LPT assignment (:func:`weighted_assignment`) every worker derives
  identically from its population replica; every scanner draws from its
  own named RNG stream (:meth:`repro.sim.rng.RngStreams.fresh`), so
  skipping the scanners of other shards does not perturb a single draw
  of the scanners kept;
- a **replica of the deployment** — rebuilt from ``(config.seed,
  config)`` with its own :class:`Simulator`. The routing data plane is
  driven by the static announcement schedule, so workers never run the
  BGP convergence flood: the coordinator simulates the fabric once (its
  replica with no scanners scheduled), records the collector journal,
  and ships it in the :class:`ShardTask` for the worker's collector to
  replay (:meth:`repro.bgp.collector.RouteCollector.arm_replay`) —
  reactive scanners and the hitlist see publication-identical feeds;
- its own **batched-emission pipeline** producing per-shard
  :class:`~repro.core.columnar.PacketTable` segments, spilled as
  store-layout v2 chunk files (:func:`repro.experiment.store.
  write_table_chunks` — time-sorted, sha256-while-writing, mmap-able)
  whose manifests travel back to the coordinator in the result dict.

The coordinator opens the spill manifests lazily
(:func:`open_shard_segments`) and merges them window-at-a-time with a
stable ``(time, scanner_id)`` lexsort per time window
(:func:`repro.experiment.corpus.merge_chunked_shards`), which
reproduces the unsharded table byte-for-byte for any shard count, any
partitioning, and any chunk size — without ever lexsorting the full
corpus in RAM — the differential tests in ``tests/test_sharding.py``
and ``tests/test_store_v2.py`` pin this with ``corpus_digest`` as the
oracle.

Workers are stateless: every task rebuilds its world from the picklable
:class:`ShardTask`, so any process pool (fresh, reused, fork or spawn)
executes it correctly, and a *retried* task re-executes byte-identically
— the :class:`ShardSupervisor` (DESIGN §11) leans on exactly that:
it detects crashed, hung, or pool-broken workers, retries them with
bounded attempts and exponential backoff, and either raises a
:class:`~repro.errors.ShardError` carrying the worker's captured stderr
or quarantines the shard as coverage gaps (``on_shard_failure=
"degrade"``). Completed shards are recorded in a crash-safe
:class:`ShardManifest`, which is how a coordinator kill resumes by
re-running only the missing shards.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import (Executor, FIRST_COMPLETED,
                                ProcessPoolExecutor, wait as futures_wait)
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro import obs
from repro.obs import events as obsevents
from repro.obs.metrics import _parse_key
from repro.bgp.collector import CollectorEntry
from repro.bgp.messages import UpdateKind
from repro.core.columnar import ChunkedPacketTable, PacketTable
from repro.errors import ExperimentError, ShardError
from repro.experiment.config import ExperimentConfig, RetryPolicy
from repro.experiment.corpus import TELESCOPE_NAMES
from repro.experiment.store import (DEFAULT_CHUNK_ROWS, open_table_chunks,
                                    write_table_chunks)
from repro.faults import FaultInjector, FaultPlan
from repro.scanners.base import (ConstPackets, Scanner, ScannerContext,
                                 TemporalKind, UniformPackets)
from repro.scanners.population import PopulationInputs, build_population
from repro.scanners.registry import ASRegistry
from repro.sim.events import Simulator
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (T1_PREFIX, T2_PREFIX, T3_PREFIX,
                                        T4_PREFIX, build_deployment)

_log = obs.log.get_logger("sharding")


# -- partitioner -----------------------------------------------------------


def resolve_shards(spec: int | str) -> int:
    """Turn a ``--shards`` value (``N`` or ``"auto"``) into a count.

    ``auto`` uses one shard per CPU available to this process.
    """
    if isinstance(spec, str):
        if spec.strip().lower() == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # pragma: no cover - non-Linux
                return max(1, os.cpu_count() or 1)
        try:
            spec = int(spec)
        except ValueError:
            raise ExperimentError(
                f"invalid shard count {spec!r} (expected an integer "
                "or 'auto')") from None
    count = int(spec)
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    return count


def shard_of(scanner_id: int, num_shards: int) -> int:
    """The shard owning ``scanner_id`` under the simple modulo mapping.

    Plain modulo is total and stable by construction: independent of
    population size and build order, and it spreads each ID block
    (ordinary scanners from 1, the atlas fleet from 1_000_000, heavy
    hitters from 2_000_000) across all shards instead of clustering a
    whole class on one worker. The sharded builder itself balances by
    *estimated cost* instead (:func:`weighted_assignment`); modulo
    remains the partition for callers that only have IDs.
    """
    if num_shards < 1:
        raise ExperimentError(f"shard count must be >= 1, got {num_shards}")
    return scanner_id % num_shards


def partition(scanner_ids: Iterable[int],
              num_shards: int) -> list[list[int]]:
    """Split scanner IDs into ``num_shards`` disjoint, exhaustive lists."""
    shards: list[list[int]] = [[] for _ in range(resolve_shards(num_shards))]
    for scanner_id in scanner_ids:
        shards[shard_of(scanner_id, num_shards)].append(scanner_id)
    return shards


#: cost-model constants for :func:`scanner_weight` — packets-equivalent
#: fixed cost of firing and flushing one session, expected packets per
#: session when the sampler is opaque, the session multiplier for
#: scanners that split each firing into one session per announced
#: prefix, and the surcharge per *reaction* session (feed callback,
#: ad-hoc scheduling and a tiny batch of its own make a reaction
#: session dearer than a pre-scheduled one of the same size).
_SESSION_COST = 20.0
_DEFAULT_PACKETS = 8.0
_SPREAD_FACTOR = 6.0
_REACTION_EXTRA = 40.0


def scanner_weight(scanner: Scanner, duration: float,
                   announce_count: int = 0) -> float:
    """Deterministic static estimate of a scanner's simulate+flush cost.

    A pure function of the agent's construction parameters (temporal
    schedule, session-size sampler, activity window) plus the number of
    feed announcements a reactive scanner will see, so every worker
    computes the identical weight table without coordination. Duck-typed
    over the agent protocol: TGA agents carry ``period`` and
    ``probes_per_round`` instead of a :class:`TemporalBehavior`. The
    estimate only has to *rank* scanners well enough for load balancing;
    corpus bytes never depend on the partition (the canonical flush
    order and the merge lexsort are partition-agnostic).
    """
    active_start = getattr(scanner, "active_start", None)
    active_end = getattr(scanner, "active_end", None)
    start = 0.0 if active_start is None else max(0.0, active_start)
    end = duration if active_end is None else min(duration, active_end)
    span = max(0.0, end - start)
    temporal = getattr(scanner, "temporal", None)
    if temporal is None:
        # TGA-style agent: fixed probe rounds on a fixed period
        period = getattr(scanner, "period", 0.0)
        sessions = 1.0 + span / period if period > 0 else 1.0
        packets = float(getattr(scanner, "probes_per_round",
                                _DEFAULT_PACKETS))
        return sessions * (_SESSION_COST + packets)
    if temporal.kind is TemporalKind.ONE_OFF:
        sessions = 1.0 if span > 0 else 0.0
    elif temporal.kind is TemporalKind.PERIODIC:
        sessions = 1.0 + span / temporal.period if temporal.period > 0 else 1.0
    elif temporal.kind is TemporalKind.INTERMITTENT:
        sessions = 1.0 + span / temporal.mean_gap \
            if temporal.mean_gap > 0 else 1.0
    else:
        sessions = 0.0
    react_sessions = 0.0
    if getattr(scanner, "reaction_delay", None) is not None and duration > 0:
        # one extra session per feed announcement landing in the window
        react_sessions = announce_count * (span / duration)
    if getattr(scanner, "spread_prefix_sessions", False):
        sessions *= _SPREAD_FACTOR
    sampler = getattr(scanner, "packets_per_session", None)
    if isinstance(sampler, ConstPackets):
        packets = float(sampler.n)
    elif isinstance(sampler, UniformPackets):
        packets = (sampler.low + sampler.high) / 2.0
    else:
        packets = _DEFAULT_PACKETS
    return (sessions + react_sessions) * (_SESSION_COST + packets) \
        + react_sessions * _REACTION_EXTRA


def weighted_assignment(population: "Sequence[Scanner]", num_shards: int,
                        duration: float,
                        announce_count: int = 0) -> dict[int, int]:
    """LPT assignment of scanners to shards by estimated cost.

    Longest-processing-time greedy: place scanners in descending weight
    order onto the currently lightest shard. Ties break on ascending
    scanner ID (sort) and lowest shard index (``min``), making the
    assignment a pure function of ``(population, num_shards, duration,
    announce_count)`` — every worker derives the same table from its
    own population replica. The six heavy hitters own the majority of
    all packets, so cost-blind modulo placement regularly stacks two of
    them on one worker; LPT keeps the worst shard near the mean.
    """
    if num_shards < 1:
        raise ExperimentError(f"shard count must be >= 1, got {num_shards}")
    order = sorted(
        ((scanner_weight(s, duration, announce_count), s.scanner_id)
         for s in population),
        key=lambda pair: (-pair[0], pair[1]))
    loads = [0.0] * num_shards
    assign: dict[int, int] = {}
    for weight, scanner_id in order:
        shard = min(range(num_shards), key=loads.__getitem__)
        loads[shard] += weight
        assign[scanner_id] = shard
    return assign


def shard_loads(population: "Sequence[Scanner]", assign: Mapping[int, int],
                num_shards: int, duration: float,
                announce_count: int = 0) -> list[float]:
    """Estimated cost per shard under ``assign`` (the LPT load table).

    The supervisor derives each shard's wall-clock timeout from these:
    ``shard_timeout`` budgets the *heaviest* shard, lighter shards get
    a proportional share (floored at half, since fixed per-worker setup
    cost dominates tiny shards).
    """
    loads = [0.0] * num_shards
    for scanner in population:
        loads[assign[scanner.scanner_id]] += scanner_weight(
            scanner, duration, announce_count)
    return loads


def derive_timeouts(loads: Sequence[float],
                    shard_timeout: float | None) -> dict[int, float] | None:
    """Per-shard timeouts from the LPT load table (None = no timeouts)."""
    if shard_timeout is None:
        return None
    peak = max(loads) if loads else 0.0
    if peak <= 0:
        return {shard: shard_timeout for shard in range(len(loads))}
    return {shard: shard_timeout * max(0.5, load / peak)
            for shard, load in enumerate(loads)}


def merge_windows(windows: Iterable[tuple[float, float]]) \
        -> tuple[tuple[float, float], ...]:
    """Union of half-open time windows, merged and sorted.

    Coverage-gap seconds are summed window-by-window downstream
    (:meth:`~repro.experiment.corpus.PacketCorpus.gap_seconds`), so
    overlapping windows must be merged before they are stored.
    """
    merged: list[list[float]] = []
    for start, end in sorted(windows):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return tuple((start, end) for start, end in merged)


def quarantine_windows(population: "Sequence[Scanner]",
                       assign: Mapping[int, int], shard: int,
                       duration: float) -> tuple[tuple[float, float], ...]:
    """Coverage-gap windows of a quarantined shard's scanner traffic.

    The union of the shard's scanners' activity windows, clamped to the
    campaign: inside these windows the corpus is missing whatever those
    scanners would have sent (to every telescope — sources spray all
    prefixes), so analyses must treat the time as uncovered rather than
    as genuinely quiet.
    """
    windows = []
    for scanner in population:
        if assign.get(scanner.scanner_id) != shard:
            continue
        start = getattr(scanner, "active_start", None)
        end = getattr(scanner, "active_end", None)
        start = 0.0 if start is None else max(0.0, float(start))
        end = duration if end is None else min(duration, float(end))
        if end > start:
            windows.append((start, end))
    return merge_windows(windows)


# -- worker ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to rebuild and run its shard.

    Deliberately limited to picklable, value-semantic fields so the task
    crosses any process-pool boundary (fork or spawn) unchanged.
    """

    config: ExperimentConfig
    plan: FaultPlan | None
    shard: int
    num_shards: int
    spill_dir: str
    #: announcements of the recorded collector journal (the
    #: coordinator's recording pass) the worker replays instead of
    #: simulating the BGP flood itself — withdrawals are pruned because
    #: every subscriber a worker can host ignores them; ``None`` falls
    #: back to the self-contained mode where the worker runs the full
    #: fabric — slower, but needs no coordinator pass.
    feed: tuple[CollectorEntry, ...] | None = None
    #: run the worker under its own FlightRecorder and return a metrics
    #: snapshot; the coordinator turns this off when it has no recorder
    #: itself, sparing the workers the recording overhead.
    record_obs: bool = True
    #: rows per spill chunk — the coordinator's merge window granularity
    #: and the unit of lazy loading on its side.
    chunk_rows: int = DEFAULT_CHUNK_ROWS
    #: directory for per-shard telemetry spools (heartbeat/metric-delta
    #: events + the span-tree dump the coordinator merges into one
    #: Chrome trace); ``None`` disables spooling.
    obs_spool: str | None = None
    #: the campaign's run id, stamped on every spooled event record and
    #: onto the worker's log lines (``<run_id>/s<shard>``).
    run_id: str | None = None
    #: sim-seconds between worker heartbeat/metric-delta events
    #: (``None``/0 = no periodic beats, only start/end records).
    heartbeat_interval: float | None = None
    #: pid of the coordinator — a worker only reconfigures process-wide
    #: logging when it actually runs in a different process (the serial
    #: fallback path executes tasks inside the coordinator).
    coordinator_pid: int = 0
    #: 1-based execution attempt, stamped by the supervisor on retries.
    #: Purely observational plus the gate for per-attempt process
    #: faults — the simulation itself never reads it, which is what
    #: makes a retried shard byte-identical to a first-try run.
    attempt: int = 1


def run_shard(task: ShardTask) -> dict:
    """Worker entrypoint: build, simulate, flush, and spill one shard.

    Returns a plain dict (picklable) with the spill segment paths and
    their sha256 digests, emission totals, per-stage wall and CPU
    seconds, and the worker's metrics snapshot. CPU seconds are what the
    scaling bench aggregates — on a machine with fewer cores than
    shards, wall time includes time-slicing that says nothing about the
    per-shard work.
    """
    stage_wall: dict[str, float] = {}
    stage_cpu: dict[str, float] = {}
    last = [time.perf_counter(), time.process_time()]

    def stage(name: str) -> None:
        now_wall, now_cpu = time.perf_counter(), time.process_time()
        stage_wall[name] = now_wall - last[0]
        stage_cpu[name] = now_cpu - last[1]
        last[0], last[1] = now_wall, now_cpu

    # telemetry spooling: the worker's own event log (stamped shard=i)
    # plus, at the end, its full span tree — the coordinator tails the
    # former live and merges the latter into the single campaign trace.
    # The inherited process-wide event log (fork pool) or the live
    # coordinator one (serial fallback) is saved and restored, never
    # written to from shard code.
    previous_log = obsevents.current()
    event_log: obsevents.EventLog | None = None
    spooling = task.record_obs and task.obs_spool is not None
    if spooling:
        event_log = obsevents.EventLog(
            obsevents.spool_path(task.obs_spool, task.shard),
            run_id=task.run_id, shard=task.shard)
        obsevents.install(event_log)
        if task.run_id and os.getpid() != task.coordinator_pid:
            obs.log.configure(run_id=f"{task.run_id}/s{task.shard}")
    else:
        obsevents.uninstall()
    try:
        return _run_shard_body(task, stage, stage_wall, stage_cpu)
    finally:
        if event_log is not None:
            event_log.close()
        if previous_log is not None:
            obsevents.install(previous_log)
        else:
            obsevents.uninstall()


def _run_shard_body(task: ShardTask, stage, stage_wall: dict,
                    stage_cpu: dict) -> dict:
    config = task.config
    spooling = task.record_obs and task.obs_spool is not None
    with (obs.FlightRecorder() if task.record_obs
          else nullcontext()) as recorder:
        if recorder is not None and task.heartbeat_interval:
            recorder.heartbeat_interval = task.heartbeat_interval
        obsevents.emit("shard.start", pid=os.getpid(),
                       shards=task.num_shards, attempt=task.attempt)
        with obs.span("shard.run", shard=task.shard,
                      shards=task.num_shards):
            streams = RngStreams(config.seed)
            simulator = Simulator(shard=task.shard)
            deployment = build_deployment(
                streams,
                simulator=simulator,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay,
                replay_feed=task.feed)
            registry = ASRegistry()
            inputs = PopulationInputs(
                schedule=deployment.cycles(),
                announced=deployment.announced_t1_prefixes,
                t1_prefix=T1_PREFIX,
                t2_prefix=T2_PREFIX,
                t3_prefix=T3_PREFIX,
                t4_prefix=T4_PREFIX,
                attractor_addr=deployment.productive.attractor_addr,
                duration=config.duration)
            # the population build is replayed in full — its shared
            # assignment stream must see the same draw sequence as the
            # unsharded build — and only then thinned to this shard
            population = build_population(config.population, inputs,
                                          registry, streams)
            stage("build")

            context = ScannerContext(
                simulator=simulator,
                route=deployment.route,
                route_batch=deployment.route_batch,
                batch_emit=True,
                defer_batch=True,
                collector=deployment.collector,
                window_start=0.0,
                window_end=config.duration)
            announce_count = 0 if task.feed is None else sum(
                1 for e in task.feed if e.kind is UpdateKind.ANNOUNCE)
            assign = weighted_assignment(population, task.num_shards,
                                         config.duration, announce_count)
            mine = [s for s in population
                    if assign[s.scanner_id] == task.shard]
            for scanner in mine:
                scanner.start(context)
            if task.plan is not None:
                # with a recorded feed the flap's BGP side is already in
                # the journal; arm only the data-plane faults
                injector = FaultInjector(task.plan, seed=config.seed)
                injector.install(deployment,
                                 control_plane=task.feed is None)
                injector.arm_process_faults(
                    simulator, shard=task.shard, duration=config.duration,
                    attempt=task.attempt,
                    coordinator_pid=task.coordinator_pid)
            stage("schedule")

            if recorder is not None and task.heartbeat_interval:
                recorder.attach(simulator, config.duration)
            try:
                simulator.run_until(config.duration)
            finally:
                if recorder is not None and task.heartbeat_interval:
                    recorder.detach(simulator)
            stage("simulate")

            context.flush_batches()
            stage("flush_batches")

            segments: dict[str, dict] = {}
            for name, telescope in deployment.telescopes.items():
                table = telescope.capture.table()
                chunk_dir = Path(task.spill_dir) / \
                    f"shard{task.shard:03d}" / name
                manifest = write_table_chunks(table, chunk_dir,
                                              task.chunk_rows)
                segments[name] = {"dir": str(chunk_dir),
                                  "manifest": manifest,
                                  "rows": len(table)}
            stage("spill")
        snapshot = recorder.metrics.snapshot() \
            if recorder is not None else {}
        if spooling and recorder is not None:
            # flush_batches/spill moved counters after the simulate-stage
            # detach; ship the remainder so the live deltas sum exactly
            # to the final snapshot
            recorder.emit_metric_deltas()
            obsevents.write_trace_spool(
                obsevents.trace_spool_path(task.obs_spool, task.shard),
                recorder.tracer.chrome_events(),
                recorder.tracer.anchor_wall(), task.shard)
        obsevents.emit("shard.end", pid=os.getpid(),
                       scanners=len(mine),
                       packets_emitted=context.packets_emitted,
                       stage_seconds=stage_wall)

    return {
        "shard": task.shard,
        "scanners": len(mine),
        "segments": segments,
        "packets_emitted": context.packets_emitted,
        "packets_unrouted": context.packets_unrouted,
        "stage_seconds": stage_wall,
        "stage_cpu_seconds": stage_cpu,
        "metrics": snapshot,
    }


def _arm_pdeathsig() -> None:
    """SIGKILL this worker when its parent dies (Linux only, best-effort).

    A SIGKILLed coordinator cannot reap its children; without this, an
    orphaned worker keeps spilling into a directory a resumed run is
    about to wipe and re-fill.
    """
    try:
        import ctypes
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG
    except Exception:  # pragma: no cover - non-glibc platform
        pass


def _worker_main(runner: Callable[[ShardTask], dict], task: ShardTask,
                 result_path: str, stderr_path: str) -> None:
    """Supervised-process entrypoint around :func:`run_shard`.

    Redirects the process's stderr fd to a per-shard capture file (so a
    crash traceback survives the process and can be surfaced in
    :class:`~repro.errors.ShardError`), then writes the result dict as
    JSON — atomically, so the supervisor can trust any result file it
    finds. An uncaught exception propagates: the traceback lands in the
    capture file and the nonzero exitcode is the failure signal.
    """
    _arm_pdeathsig()
    fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    os.dup2(fd, 2)
    os.close(fd)
    # rebind the Python-level stream too: a harness (pytest capture) may
    # have pointed sys.stderr at a private fd, and the interpreter's own
    # fatal-exception traceback goes through sys.stderr, not fd 2
    sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
    result = runner(task)
    tmp = result_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(result, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, result_path)


# -- coordinator -----------------------------------------------------------


class SpoolTailer:
    """Tail shard-worker event spools into the coordinator's telemetry.

    A daemon thread polls each worker's spool file for complete lines
    (:func:`repro.obs.events.iter_complete_lines` — half-written records
    are never parsed), then for every new record:

    - forwards it into the coordinator's unified :class:`EventLog`
      (preserving the worker's timestamps and ``shard`` field), which
      also fans it out to listeners — that is how the live
      :class:`~repro.obs.server.StatusBoard` sees per-shard progress
      while workers are still running;
    - folds ``metrics.delta`` counter increments into the live
      coordinator registry under a ``shard=<i>`` label, so ``/metrics``
      moves during the simulate stage instead of jumping at merge time.

    ``stop()`` performs one final drain, so every record a worker wrote
    before exiting lands in the unified log even if it arrived between
    the last poll and shutdown. Counters folded live are exactly the
    worker's final snapshot (workers emit a last delta before exiting),
    so the coordinator's end-of-run fold skips counters for shards the
    tailer already consumed (``_fold_shard_obs(skip_counters=...)``).
    Should the poll thread ever fail to stop within its grace period,
    the tailer degrades loudly — a warning log, a ``tailer.stalled``
    event, a ``tailer.stalled_total`` counter — and still attempts the
    final drain (with a bounded lock wait) instead of silently dropping
    whatever the workers spooled last.

    The supervisor calls :meth:`reset_shard` before re-executing a
    failed shard: the spool of the dead attempt is discarded, its
    tail offset rewinds, and every counter the tailer folded for that
    shard is zeroed (a Prometheus-style counter reset on worker
    restart), so the retry's deltas fold from a clean slate and the
    final figures match an unfaulted run.
    """

    def __init__(self, spool_dir: str | Path, num_shards: int,
                 event_log: "obsevents.EventLog | None" = None,
                 registry=None, poll_interval: float = 0.25) -> None:
        self.spool_dir = Path(spool_dir)
        self.num_shards = num_shards
        self.event_log = event_log
        self.registry = registry
        self.poll_interval = poll_interval
        self._offsets = {shard: 0 for shard in range(num_shards)}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        #: shards whose counter deltas were folded into the registry.
        self.folded_shards: set[int] = set()
        #: per-shard counter keys folded so far (undone on reset_shard).
        self._folded_keys: dict[int, set[str]] = {}

    def start(self) -> "SpoolTailer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-spool-tailer", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
            if thread.is_alive():
                # the poll thread is wedged (most likely inside a drain
                # on pathological I/O). Don't drop the remaining spool
                # records silently: say so, count it, and try a final
                # drain with a bounded lock wait.
                _log.warning(
                    "spool tailer thread failed to stop within 10s; "
                    "live telemetry is degraded (final records may "
                    "arrive late or fold at merge time)")
                obs.add("tailer.stalled_total")
                obsevents.emit("tailer.stalled", shards=self.num_shards)
                self.drain(lock_timeout=1.0)
                return
        self.drain()  # pick up anything written after the last poll

    def __enter__(self) -> "SpoolTailer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.drain()

    def drain(self, lock_timeout: float | None = None) -> int:
        """Consume all new complete records; returns how many.

        ``lock_timeout`` bounds the wait for the internal lock (used by
        the stalled-shutdown path); ``None`` waits indefinitely.
        """
        if not self._lock.acquire(
                timeout=-1 if lock_timeout is None else lock_timeout):
            return 0
        try:
            consumed = 0
            for shard in range(self.num_shards):
                lines, offset = obsevents.iter_complete_lines(
                    obsevents.spool_path(self.spool_dir, shard),
                    self._offsets[shard])
                self._offsets[shard] = offset
                for line in lines:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    consumed += 1
                    self._consume(shard, record)
            return consumed
        finally:
            self._lock.release()

    def reset_shard(self, shard: int) -> None:
        """Discard everything tailed from ``shard`` ahead of a retry."""
        with self._lock:
            self._offsets[shard] = 0
            for key in self._folded_keys.pop(shard, set()):
                name, labels = _parse_key(key)
                labels["shard"] = str(shard)
                self.registry.counter(name, **labels).reset()
            self.folded_shards.discard(shard)
            for path in (obsevents.spool_path(self.spool_dir, shard),
                         obsevents.trace_spool_path(self.spool_dir, shard)):
                try:
                    Path(path).unlink()
                except FileNotFoundError:
                    pass

    def _consume(self, shard: int, record: dict) -> None:
        if record.get("kind") == "metrics.delta" \
                and self.registry is not None:
            self.folded_shards.add(shard)
            for key, moved in (record.get("counters") or {}).items():
                name, labels = _parse_key(key)
                labels["shard"] = str(shard)
                try:
                    self.registry.counter(name, **labels).inc(float(moved))
                except (TypeError, ValueError):
                    continue
                self._folded_keys.setdefault(shard, set()).add(key)
        if self.event_log is not None:
            self.event_log.forward(record)


def merge_shard_traces(recorder, spool_dir: str | Path,
                       num_shards: int) -> int:
    """Fold every worker's span-tree spool into ``recorder``'s trace.

    Worker spans keep their OS pid (labeled ``shard <i>`` via Chrome
    ``process_name`` metadata) and are shifted onto the coordinator's
    timeline using the difference of the two tracers' wall-clock anchors
    — so a span that ran at wall time T renders at the same instant in
    every process track. Returns the number of shards merged.
    """
    if recorder is None:
        return 0
    anchor = recorder.tracer.anchor_wall()
    merged = 0
    for shard in range(num_shards):
        payload = obsevents.read_trace_spool(
            obsevents.trace_spool_path(spool_dir, shard))
        if payload is None:
            continue
        shift_us = (float(payload.get("anchor_wall", anchor)) - anchor) * 1e6
        events = [dict(ev, ts=ev.get("ts", 0.0) + shift_us)
                  for ev in payload["events"]]
        recorder.add_foreign_events(
            events, pid=payload.get("pid"), name=f"shard {shard}")
        merged += 1
    return merged


# -- supervision -----------------------------------------------------------


#: File name of the completed-shards manifest inside a checkpoint dir.
MANIFEST_NAME = "shards.json"

#: File name of the sharded-run setup snapshot inside a checkpoint dir:
#: the pickled ``(config, plan, num_shards)`` a resumed coordinator
#: needs to re-derive the run deterministically (checkpoint file
#: format — magic + sha256 + pickle). Its presence is how
#: ``resume_experiment`` recognizes a sharded checkpoint directory.
SETUP_NAME = "shards.setup.rpck"


class ShardManifest:
    """Crash-safe record of a sharded run's completed shards.

    One JSON file (``shards.json``) in the spill root, rewritten
    atomically (tmp + fsync + rename) after every shard completion, so
    it is never observed torn. After a coordinator crash,
    :meth:`restorable` returns the completed shard results whose spill
    segments are still intact on disk — those shards are skipped by the
    resumed run; everything else re-executes.

    Format::

        {"format_version": 1, "num_shards": N,
         "completed": {"<shard>": <run_shard result dict>, ...}}
    """

    FORMAT_VERSION = 1

    def __init__(self, path: str | Path, num_shards: int,
                 completed: dict[int, dict] | None = None) -> None:
        self.path = Path(path)
        self.num_shards = num_shards
        self.completed: dict[int, dict] = dict(completed or {})

    @classmethod
    def open(cls, directory: str | Path, num_shards: int) -> "ShardManifest":
        """Load the manifest of ``directory``, or start a fresh one.

        A manifest that does not parse, has the wrong format version, or
        was written for a different shard count is ignored (with a
        warning): the shards it recorded are not trusted and the run
        starts from zero completed — always safe, merely slower.
        """
        path = Path(directory) / MANIFEST_NAME
        if path.exists():
            try:
                raw = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                raw = None
            if isinstance(raw, dict) \
                    and raw.get("format_version") == cls.FORMAT_VERSION \
                    and raw.get("num_shards") == num_shards \
                    and isinstance(raw.get("completed"), dict):
                return cls(path, num_shards,
                           {int(k): v for k, v in raw["completed"].items()})
            _log.warning("ignoring unusable shard manifest %s", path)
        return cls(path, num_shards)

    def record(self, shard: int, result: dict) -> Path:
        """Durably mark ``shard`` completed with its worker result."""
        self.completed[shard] = result
        payload = json.dumps({
            "format_version": self.FORMAT_VERSION,
            "num_shards": self.num_shards,
            "completed": {str(k): v
                          for k, v in sorted(self.completed.items())},
        }, indent=1)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        obs.event("shard.manifest", shard=shard,
                  completed=len(self.completed))
        return self.path

    def restorable(self, spill_root: str | Path) -> dict[int, dict]:
        """Completed results whose spill chunks still exist, re-anchored.

        Segment directories are re-derived from ``spill_root`` (the
        canonical ``<root>/shardNNN/<telescope>`` layout) rather than
        trusted from the stored absolute paths, so a moved checkpoint
        directory restores correctly. A shard with any missing chunk
        file is dropped — it simply re-runs.
        """
        spill_root = Path(spill_root)
        good: dict[int, dict] = {}
        for shard, result in sorted(self.completed.items()):
            segments: dict[str, dict] = {}
            intact = True
            for name, info in (result.get("segments") or {}).items():
                chunk_dir = spill_root / f"shard{shard:03d}" / name
                manifest = info.get("manifest") or []
                if not all(
                        (chunk_dir / f"{c['name']}.time.npy").exists()
                        for c in manifest):
                    intact = False
                    break
                segments[name] = dict(info, dir=str(chunk_dir))
            if intact and set(segments) == set(TELESCOPE_NAMES):
                good[shard] = dict(result, segments=segments,
                                   restored=True)
            else:
                _log.warning(
                    "shard %d recorded complete but its spill segments "
                    "are gone or partial; it will re-run", shard)
        return good


def _stderr_tail(path: Path, limit: int = 2048) -> str:
    """The last ``limit`` bytes of a worker's captured stderr."""
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - limit))
            return fh.read().decode("utf-8", errors="replace").strip()
    except OSError:
        return ""


@dataclass
class _ShardState:
    """Supervisor-side lifecycle of one shard."""

    task: ShardTask
    attempt: int = 0  # attempts started so far
    process: "multiprocessing.process.BaseProcess | None" = None
    started_at: float = 0.0
    last_progress: float = 0.0
    spool_size: int = -1
    not_before: float = 0.0  # monotonic instant the next attempt may start
    done: bool = False
    quarantined: bool = False
    restored: bool = False
    result: dict | None = None
    last_cause: str = ""
    stderr_tail: str = ""


class ShardSupervisor:
    """Run shard tasks under failure detection, bounded retry, and
    graceful degradation (DESIGN §11).

    Two backends share one policy engine:

    - **process backend** (default, ``executor=None``): one supervised
      ``multiprocessing.Process`` per shard. The supervisor polls for
      exits (a missing result file or nonzero exitcode is a failure,
      with the worker's captured stderr tail as the diagnosis) and
      enforces per-shard wall-clock timeouts derived from the LPT cost
      model — a shard whose telemetry spool stops growing for its
      budget is declared hung and SIGKILLed. Workers arm
      ``PR_SET_PDEATHSIG`` so a SIGKILLed coordinator cannot leak
      orphans into a spill directory a resumed run will reuse.
    - **executor backend** (an injected pool): failures surface as
      future exceptions (including ``BrokenProcessPool``, which breaks
      the pool permanently — later attempts run serially in the
      coordinator). Hang timeouts are not enforced here: a pool gives
      no handle to kill one worker.

    Either way a failed shard is retried up to
    ``policy.max_attempts`` times with exponential backoff, its spill
    and telemetry remnants wiped first so the re-execution is
    byte-identical to a first try. A shard that exhausts its budget
    raises :class:`~repro.errors.ShardError` (strict) or is quarantined
    (``on_failure="degrade"``) for the driver to turn into coverage
    gaps. Progress is narrated as ``shard.retry`` / ``shard.timeout`` /
    ``shard.quarantined`` / ``shard.skipped`` events and
    ``sharding.*_total`` counters.
    """

    def __init__(self, tasks: Mapping[int, ShardTask], *,
                 policy: "RetryPolicy | Mapping | None" = None,
                 timeouts: Mapping[int, float] | None = None,
                 on_failure: str = "raise",
                 executor: Executor | None = None,
                 tailer: SpoolTailer | None = None,
                 completed: Mapping[int, dict] | None = None,
                 on_complete: "Callable[[int, dict], None] | None" = None,
                 runner: "Callable[[ShardTask], dict]" = run_shard,
                 max_workers: int | None = None,
                 poll_interval: float = 0.05) -> None:
        self.policy = RetryPolicy.of(policy)
        self.timeouts = dict(timeouts) if timeouts is not None else None
        self.on_failure = on_failure
        self.executor = executor
        self.tailer = tailer
        self.on_complete = on_complete
        self.runner = runner
        self.max_workers = max_workers or len(tasks) or 1
        self.poll_interval = poll_interval
        self.retries = 0
        self.quarantined: list[int] = []
        self._states = {shard: _ShardState(task=task)
                        for shard, task in sorted(tasks.items())}
        for shard, result in (completed or {}).items():
            state = self._states.get(shard)
            if state is None:
                continue
            state.done = True
            state.restored = True
            state.result = dict(result, restored=True)
        spills = {Path(t.spill_dir) for t in tasks.values()}
        if len(spills) != 1:
            raise ExperimentError(
                f"supervised shard tasks must share one spill dir, "
                f"got {sorted(map(str, spills))}")
        self.spill_dir = spills.pop()

    # -- shared bookkeeping ------------------------------------------------

    def run(self) -> list[dict | None]:
        """Execute every shard; results in shard order (None =
        quarantined)."""
        for shard, state in self._states.items():
            if state.restored:
                _log.info("shard %d restored from manifest, skipping",
                          shard)
                obsevents.emit("shard.skipped", shard=shard)
        pending = [s for s in self._states.values() if not s.done]
        if pending:
            if self.executor is not None:
                self._run_executor(pending)
            else:
                self._run_processes(pending)
        return [state.result
                for _, state in sorted(self._states.items())]

    def _result_path(self, shard: int) -> Path:
        return self.spill_dir / f"shard{shard:03d}.result.json"

    def _stderr_path(self, shard: int) -> Path:
        return self.spill_dir / f"shard{shard:03d}.stderr"

    def _shard_timeout(self, state: _ShardState) -> float | None:
        if self.timeouts is None:
            return None
        base = self.timeouts.get(state.task.shard)
        if base is None:
            return None
        return base * (self.policy.timeout_factor ** (state.attempt - 1))

    def _cleanup_attempt(self, state: _ShardState) -> None:
        """Wipe every remnant of a failed attempt before re-executing."""
        shard = state.task.shard
        shutil.rmtree(self.spill_dir / f"shard{shard:03d}",
                      ignore_errors=True)
        for path in (self._result_path(shard),):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        if self.tailer is not None:
            self.tailer.reset_shard(shard)
        state.spool_size = -1

    def _succeed(self, state: _ShardState, result: dict) -> None:
        result = dict(result, attempts=state.attempt)
        state.result = result
        state.done = True
        if self.on_complete is not None:
            self.on_complete(state.task.shard, result)

    def _fail(self, state: _ShardState, cause: str,
              stderr_tail: str = "") -> None:
        """One attempt failed: schedule a retry or exhaust the budget."""
        shard = state.task.shard
        state.last_cause = cause
        state.stderr_tail = stderr_tail or state.stderr_tail
        if state.attempt >= self.policy.max_attempts:
            self._exhaust(state)
            return
        delay = self.policy.delay(state.attempt)
        self.retries += 1
        obs.add("sharding.retries_total")
        obsevents.emit("shard.retry", shard=shard, attempt=state.attempt,
                       cause=cause, delay=round(delay, 3))
        _log.warning(
            "shard %d attempt %d failed (%s); retrying in %.2fs%s",
            shard, state.attempt, cause, delay,
            f"\n  worker stderr tail:\n{state.stderr_tail}"
            if state.stderr_tail else "")
        self._cleanup_attempt(state)
        state.not_before = time.monotonic() + delay

    def _exhaust(self, state: _ShardState) -> None:
        shard = state.task.shard
        if self.on_failure == "degrade":
            state.quarantined = True
            state.done = True
            state.result = None
            self.quarantined.append(shard)
            obs.add("sharding.quarantined_total")
            obsevents.emit("shard.quarantined", shard=shard,
                           attempts=state.attempt, cause=state.last_cause)
            _log.error(
                "shard %d quarantined after %d attempts (%s): its "
                "scanners' traffic becomes coverage gaps",
                shard, state.attempt, state.last_cause)
            return
        self._kill_all()
        message = (f"shard {shard} failed terminally after "
                   f"{state.attempt} attempt(s): {state.last_cause}")
        if state.stderr_tail:
            message += f"\nworker stderr tail:\n{state.stderr_tail}"
        raise ShardError(message, shard=shard, attempt=state.attempt,
                         cause=state.last_cause,
                         stderr_tail=state.stderr_tail)

    def _kill_all(self) -> None:
        for state in self._states.values():
            proc = state.process
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join()
            state.process = None

    # -- process backend ---------------------------------------------------

    def _launch(self, state: _ShardState) -> None:
        shard = state.task.shard
        state.attempt += 1
        task = replace(state.task, attempt=state.attempt)
        result_path = self._result_path(shard)
        stderr_path = self._stderr_path(shard)
        for path in (result_path, stderr_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        proc = ctx.Process(
            target=_worker_main,
            args=(self.runner, task, str(result_path), str(stderr_path)),
            name=f"repro-shard-{shard}", daemon=True)
        proc.start()
        now = time.monotonic()
        state.process = proc
        state.started_at = now
        state.last_progress = now
        state.spool_size = -1
        _log.debug("shard %d attempt %d launched (pid %d)",
                   shard, state.attempt, proc.pid)

    def _progressed(self, state: _ShardState) -> bool:
        """Has the shard's telemetry spool grown since the last check?"""
        spool = state.task.obs_spool
        if spool is None:
            return False
        try:
            size = os.path.getsize(
                obsevents.spool_path(spool, state.task.shard))
        except OSError:
            return False
        if size != state.spool_size:
            state.spool_size = size
            return True
        return False

    def _reap(self, state: _ShardState) -> None:
        """A worker process exited: classify success or failure."""
        proc = state.process
        proc.join()
        state.process = None
        exitcode = proc.exitcode
        result_path = self._result_path(state.task.shard)
        if result_path.exists():
            try:
                self._succeed(state,
                              json.loads(result_path.read_text()))
                return
            except (OSError, json.JSONDecodeError):
                cause = "unreadable result file"
        elif exitcode == 0:
            cause = "exited 0 without a result"
        else:
            cause = f"exitcode {exitcode}"
        self._fail(state, cause,
                   _stderr_tail(self._stderr_path(state.task.shard)))

    def _run_processes(self, pending: list[_ShardState]) -> None:
        states = pending
        try:
            while True:
                now = time.monotonic()
                active = [s for s in states if not s.done]
                if not active:
                    return
                running = [s for s in active if s.process is not None]
                for state in active:
                    if state.process is not None \
                            or state.not_before > now:
                        continue
                    if len(running) >= self.max_workers:
                        break
                    self._launch(state)
                    running.append(state)
                moved = False
                for state in running:
                    proc = state.process
                    if proc is None:
                        continue
                    if proc.exitcode is not None:
                        self._reap(state)
                        moved = True
                        continue
                    timeout = self._shard_timeout(state)
                    if timeout is None:
                        continue
                    if self._progressed(state):
                        state.last_progress = now
                    elif now - state.last_progress > timeout:
                        self._timeout(state, timeout)
                        moved = True
                if not moved:
                    time.sleep(self.poll_interval)
        except BaseException:
            self._kill_all()
            raise

    def _timeout(self, state: _ShardState, timeout: float) -> None:
        shard = state.task.shard
        obs.add("sharding.timeouts_total")
        obsevents.emit("shard.timeout", shard=shard,
                       attempt=state.attempt,
                       timeout=round(timeout, 3))
        _log.warning("shard %d attempt %d exceeded its %.1fs budget "
                     "without progress; killing worker pid %d",
                     shard, state.attempt, timeout, state.process.pid)
        state.process.kill()
        state.process.join()
        state.process = None
        self._fail(state, "timeout")

    # -- executor backend --------------------------------------------------

    def _run_executor(self, pending: list[_ShardState]) -> None:
        pool_broken = False

        def submit(state: _ShardState):
            nonlocal pool_broken
            state.attempt += 1
            task = replace(state.task, attempt=state.attempt)
            if not pool_broken and state.attempt < self.policy.max_attempts \
                    or state.attempt == 1:
                try:
                    return self.executor.submit(self.runner, task)
                except Exception as exc:
                    pool_broken = True
                    self._fail(state, f"{type(exc).__name__}: {exc}")
                    return None
            # last-resort attempt: run the shard inside the coordinator
            # (slower, never wrong) — mirrors fan_out's serial fallback
            obs.add("sharding.serial_fallbacks_total")
            _log.warning("shard %d attempt %d running serially in the "
                         "coordinator", state.task.shard, state.attempt)
            try:
                self._succeed(state, self.runner(task))
            except Exception:
                self._fail(state, "serial execution failed",
                           traceback.format_exc(limit=16).strip())
            return None

        futures: dict = {}
        for state in pending:
            future = submit(state)
            if future is not None:
                futures[future] = state
        while futures or any(not s.done for s in pending):
            if not futures:
                # every remaining shard is between attempts
                for state in pending:
                    if not state.done:
                        self._await_backoff(state)
                        future = submit(state)
                        if future is not None:
                            futures[future] = state
                continue
            done, _ = futures_wait(list(futures),
                                   return_when=FIRST_COMPLETED)
            for future in done:
                state = futures.pop(future)
                try:
                    self._succeed(state, future.result())
                    continue
                except ShardError:
                    raise
                except Exception as exc:
                    cause = type(exc).__name__
                    if "Broken" in cause:
                        pool_broken = True
                    detail = "".join(traceback.format_exception(
                        exc)).strip()
                    self._fail(state, cause, detail[-2048:])
                if not state.done:
                    self._await_backoff(state)
                    future = submit(state)
                    if future is not None:
                        futures[future] = state

    @staticmethod
    def _await_backoff(state: _ShardState) -> None:
        remaining = state.not_before - time.monotonic()
        if remaining > 0:
            time.sleep(remaining)


def shard_pool(max_workers: int) -> ProcessPoolExecutor:
    """Process pool for shard workers.

    Prefers the fork start method (POSIX): workers inherit the parent's
    imported modules copy-on-write, so task startup is milliseconds
    instead of a fresh interpreter boot. Workers rebuild all *run* state
    from the task itself, so the pool is safely reusable across calls —
    hand it to :func:`repro.analysis.parallel.fan_out` or
    ``run_experiment(shard_executor=...)`` as often as needed.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def run_shards(config: ExperimentConfig,
               plan: FaultPlan | None,
               num_shards: int,
               spill_dir: str | Path,
               executor: Executor | None = None,
               feed: tuple[CollectorEntry, ...] | None = None,
               record_obs: bool = True,
               obs_spool: str | Path | None = None,
               run_id: str | None = None,
               heartbeat_interval: float | None = None,
               timeouts: Mapping[int, float] | None = None,
               tailer: SpoolTailer | None = None,
               completed: Mapping[int, dict] | None = None,
               on_complete: "Callable[[int, dict], None] | None" = None) \
        -> list[dict | None]:
    """Fan the shard tasks out under supervision; results in shard order.

    ``feed`` is the recorded collector journal every worker replays
    (see :class:`ShardTask`). ``obs_spool``/``run_id``/
    ``heartbeat_interval`` arm worker-side telemetry spooling (see
    :class:`ShardTask`); start a :class:`SpoolTailer` over the same
    directory to consume it live and pass it in as ``tailer`` so a
    retried shard's live-folded counters reset cleanly. All execution
    goes through the :class:`ShardSupervisor` — by default its process
    backend (one supervised worker process per shard, crash/hang
    detection and bounded retries per ``config.retry_policy``);
    ``executor`` switches to the injected-pool backend. ``completed``
    pre-seeds manifest-restored shards (skipped, not re-run) and
    ``on_complete`` fires per fresh completion (the driver records the
    manifest there). A quarantined shard's slot holds ``None``.
    """
    tasks = {
        index: ShardTask(
            config=config, plan=plan, shard=index,
            num_shards=num_shards, spill_dir=str(spill_dir),
            feed=feed, record_obs=record_obs,
            obs_spool=str(obs_spool) if obs_spool is not None else None,
            run_id=run_id, heartbeat_interval=heartbeat_interval,
            coordinator_pid=os.getpid())
        for index in range(num_shards)}
    supervisor = ShardSupervisor(
        tasks, policy=config.retry_policy, timeouts=timeouts,
        on_failure=config.on_shard_failure, executor=executor,
        tailer=tailer, completed=completed, on_complete=on_complete)
    ordered = supervisor.run()
    for res in ordered:
        if res is None:
            continue
        _log.debug("shard %d: %d scanners, %d packets emitted",
                   res["shard"], res["scanners"], res["packets_emitted"])
    return ordered


def open_shard_segments(results: Sequence[dict]) \
        -> dict[str, list[ChunkedPacketTable]]:
    """Lazy verified view of every worker spill segment, in shard order.

    Returns each segment as a
    :class:`~repro.core.columnar.ChunkedPacketTable` over the worker's
    spill manifest: nothing is read here, and each chunk's sha256 is
    checked on first touch (strict — a chunk truncated or corrupted
    between spill and merge raises :class:`repro.errors.StoreError`
    instead of silently merging garbage). The window merge then maps
    only the chunks of the window it is currently merging.
    """
    segments: dict[str, list[ChunkedPacketTable]] = {
        name: [] for name in TELESCOPE_NAMES}
    for res in sorted((r for r in results if r is not None),
                      key=lambda r: r["shard"]):
        for name in TELESCOPE_NAMES:
            info = res["segments"][name]
            segments[name].append(open_table_chunks(
                Path(info["dir"]), info["manifest"], telescope=name,
                strict=True))
    return segments


def load_shard_segments(results: Sequence[dict]) \
        -> dict[str, list[PacketTable]]:
    """Eagerly materialized :func:`open_shard_segments` (verified)."""
    return {name: [table.materialize() for table in tables]
            for name, tables in open_shard_segments(results).items()}
