"""Experiment driver: build, run, collect.

``run_experiment(config)`` performs the whole measurement campaign:

1. build the deployment (§3: BGP fabric, telescopes, collector, hitlist),
2. build the calibrated scanner population,
3. register RDNS entries for fixed-source scanners,
4. schedule every scanner and run the simulator to the horizon,
5. package the captures into a :class:`PacketCorpus`.

Each stage runs inside a ``driver.*`` tracing span. When a
:class:`repro.obs.FlightRecorder` is installed the spans land in its
trace (nested under ``driver.run_experiment``, with ``sim.run_until``
below ``driver.simulate``) and the simulator heartbeat is attached;
otherwise a private throwaway tracer measures the same stages so
:attr:`ExperimentResult.stage_seconds` is always populated.
"""

from __future__ import annotations

import math
import tempfile
import time as _time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.bgp.messages import UpdateKind
from repro.errors import ExperimentError
from repro.experiment import checkpoint as ckpt
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus, merge_chunked_shards
from repro.faults import FaultInjector, FaultPlan
from repro.scanners.base import (Scanner, ScannerContext, SourceModel,
                                 batch_emit_default)
from repro.scanners.population import (PopulationInputs, build_population)
from repro.scanners.registry import ASRegistry
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (Deployment, T1_PREFIX, T2_PREFIX,
                                        T3_PREFIX, T4_PREFIX,
                                        build_deployment)


@dataclass
class ExperimentResult:
    """Corpus plus ground truth and infrastructure handles."""

    corpus: PacketCorpus
    deployment: Deployment
    population: list[Scanner]
    context: ScannerContext
    wall_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: CPU (process) seconds of coordinator stages that matter for
    #: scaling accounting — currently only ``record_timeline`` of a
    #: sharded build; empty for unsharded runs.
    stage_cpu_seconds: dict[str, float] = field(default_factory=dict)
    #: per-worker results of a sharded build (segment row counts, wall
    #: and CPU seconds per worker stage) — ``None`` for unsharded runs.
    shard_stats: list[dict] | None = field(default=None, repr=False)
    _scanner_index: dict[int, Scanner] | None = field(
        default=None, repr=False, compare=False)

    def scanner_by_id(self, scanner_id: int) -> Scanner | None:
        if self._scanner_index is None:
            self._scanner_index = {s.scanner_id: s for s in self.population}
        return self._scanner_index.get(scanner_id)

    def ground_truth_temporal(self) -> dict[int, str]:
        """scanner_id -> generative temporal kind (validation only)."""
        return {s.scanner_id: s.temporal.kind.value for s in self.population}

    def ground_truth_network(self) -> dict[int, str]:
        return {s.scanner_id: s.truth_network_class
                for s in self.population if s.truth_network_class}


#: Stage names, in execution order, as they appear in ``stage_seconds``
#: and as ``driver.<stage>`` tracing spans. When a fault plan is armed an
#: extra ``install_faults`` stage runs (and is timed) between
#: ``schedule_scanners`` and ``simulate``. A sharded run (``shards=``)
#: replaces ``simulate`` and ``flush_batches`` with a coordinator
#: ``record_timeline`` stage (the infrastructure-only recording pass)
#: followed by one ``shard_simulate`` stage covering the whole worker
#: fan-out; the per-worker breakdown lands in
#: :attr:`ExperimentResult.shard_stats`.
STAGES = ("build_deployment", "build_population", "schedule_scanners",
          "simulate", "flush_batches", "package_corpus")

#: Default sim-time between checkpoints: one simulated week.
DEFAULT_CHECKPOINT_INTERVAL = 7 * 86400.0

#: Default wall-clock overhead budget for checkpointing: snapshot writes
#: may consume at most this fraction of the run's wall time; boundaries
#: that would exceed it are skipped (the corpus is unaffected — only the
#: set of persisted restart points shrinks).
DEFAULT_CHECKPOINT_BUDGET = 0.05

_log = obs.log.get_logger("driver")


def run_experiment(config: ExperimentConfig | None = None,
                   registry: ASRegistry | None = None,
                   faults: FaultInjector | FaultPlan | None = None,
                   checkpoint_dir: str | Path | None = None,
                   checkpoint_interval: float | None = None,
                   checkpoint_keep: int = 2,
                   checkpoint_budget: float | None = DEFAULT_CHECKPOINT_BUDGET,
                   after_checkpoint=None,
                   shards: int | str | None = None,
                   shard_executor=None) -> ExperimentResult:
    """Run one full measurement campaign and return its result.

    ``faults`` arms a :class:`repro.faults.FaultPlan` (or a prebuilt
    injector) on the deployment before the simulation starts; an empty
    plan leaves the run byte-identical to a fault-free one.

    ``checkpoint_dir`` enables crash-safe snapshots every
    ``checkpoint_interval`` simulated seconds (default one week); a
    killed run continues from the newest valid snapshot via
    :func:`resume_experiment` and produces a corpus identical to the
    uninterrupted run. ``checkpoint_budget`` caps snapshot overhead at
    that fraction of wall time (boundaries over budget are skipped;
    ``None`` writes every boundary). ``after_checkpoint`` is called with
    each written path (test hook).

    ``shards`` (an int or ``"auto"``) partitions the scanner population
    across that many worker processes, each running its own event loop
    against a replica of the deployment; the merged corpus is
    byte-identical to the unsharded build (DESIGN §8). Sharding requires
    the batched emission path and is mutually exclusive with
    ``checkpoint_dir`` — worker event loops have no shared barrier to
    snapshot at, so combining the two raises :class:`ExperimentError`
    rather than silently corrupting restart points. ``shard_executor``
    injects a reusable process pool (see
    :func:`repro.experiment.sharding.shard_pool`).
    """
    started = _time.monotonic()
    if config is None:
        config = ExperimentConfig()
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    stage_seconds: dict[str, float] = {}

    if shards is not None:
        from repro.experiment import sharding
        num_shards = sharding.resolve_shards(shards)
        if checkpoint_dir is not None:
            raise ExperimentError(
                f"cannot checkpoint a sharded run (shards={num_shards}): "
                "the worker event loops have no shared epoch barrier to "
                "snapshot at — drop checkpoint_dir, or run with "
                "shards=None to checkpoint")
        return _run_sharded(config, registry, faults, num_shards,
                            shard_executor, tracer, recorder, started)

    with tracer.span("driver.run_experiment",
                     seed=config.seed, scale=config.scale):
        streams = RngStreams(config.seed)
        with tracer.span("driver.build_deployment") as sp:
            deployment = build_deployment(
                streams,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay)
        stage_seconds["build_deployment"] = sp.duration
        if registry is None:
            registry = ASRegistry()

        inputs = PopulationInputs(
            schedule=deployment.cycles(),
            announced=deployment.announced_t1_prefixes,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            duration=config.duration)
        with tracer.span("driver.build_population") as sp:
            population = build_population(config.population, inputs,
                                          registry, streams)
        stage_seconds["build_population"] = sp.duration

        batch_emit = config.batch_emit if config.batch_emit is not None \
            else batch_emit_default()
        context = ScannerContext(
            simulator=deployment.simulator,
            route=deployment.route,
            route_batch=deployment.route_batch,
            batch_emit=batch_emit,
            defer_batch=batch_emit,
            collector=deployment.collector,
            window_start=0.0,
            window_end=config.duration)

        with tracer.span("driver.schedule_scanners",
                         scanners=len(population)) as sp:
            for scanner in population:
                _register_rdns(deployment, scanner)
                scanner.start(context)
        stage_seconds["schedule_scanners"] = sp.duration

        injector: FaultInjector | None = None
        if faults is not None:
            injector = faults if isinstance(faults, FaultInjector) \
                else FaultInjector(faults, seed=config.seed)
            with tracer.span("driver.install_faults") as sp:
                injector.install(deployment)
            stage_seconds["install_faults"] = sp.duration

        manager: ckpt.CheckpointManager | None = None
        if checkpoint_dir is not None:
            manager = ckpt.CheckpointManager(
                Path(checkpoint_dir),
                checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL,
                keep=checkpoint_keep, after_write=after_checkpoint,
                overhead_budget=checkpoint_budget)
            # initial restart point, outside the simulate stage: resume
            # skips the build stages entirely, and its measured cost
            # seeds the overhead-budget projection for the simulate loop
            with tracer.span("driver.checkpoint_setup") as sp:
                _write_snapshot(config, registry, deployment, population,
                                context, injector, manager, stage_seconds)
            stage_seconds["checkpoint_setup"] = sp.duration

        return _finish_run(config, registry, deployment, population,
                           context, injector, manager, stage_seconds,
                           tracer, recorder, started)


def _run_sharded(config, registry, faults, num_shards, shard_executor,
                 tracer, recorder, started) -> ExperimentResult:
    """Coordinator side of a sharded build (DESIGN §8).

    Builds its own deployment/population replica for the corpus metadata
    and the result's ground-truth handles, then simulates it once with
    *no scanners scheduled* — the recording pass. Only infrastructure
    events run (BGP flood, announcement schedule, fault flaps), and the
    collector journal they produce is the routing timeline the workers
    replay instead of each re-running the convergence flood. All packet
    emission happens in the shard workers, whose spilled segments are
    merged (verified) at ``package_corpus``.
    """
    from repro.experiment import sharding

    batch_emit = config.batch_emit if config.batch_emit is not None \
        else batch_emit_default()
    if not batch_emit:
        raise ExperimentError(
            "sharded runs require the batched emission path — "
            "config.batch_emit must not be False (and REPRO_LEGACY_EMIT "
            "must not force the per-packet oracle)")
    plan = faults.plan if isinstance(faults, FaultInjector) else faults

    stage_seconds: dict[str, float] = {}
    with tracer.span("driver.run_experiment", seed=config.seed,
                     scale=config.scale, shards=num_shards):
        streams = RngStreams(config.seed)
        with tracer.span("driver.build_deployment") as sp:
            deployment = build_deployment(
                streams,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay)
        stage_seconds["build_deployment"] = sp.duration
        if registry is None:
            registry = ASRegistry()

        inputs = PopulationInputs(
            schedule=deployment.cycles(),
            announced=deployment.announced_t1_prefixes,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            duration=config.duration)
        with tracer.span("driver.build_population") as sp:
            population = build_population(config.population, inputs,
                                          registry, streams)
        stage_seconds["build_population"] = sp.duration

        context = ScannerContext(
            simulator=deployment.simulator,
            route=deployment.route,
            route_batch=deployment.route_batch,
            batch_emit=True,
            defer_batch=True,
            collector=deployment.collector,
            window_start=0.0,
            window_end=config.duration)

        # the coordinator replica never runs: scanners are registered
        # (RDNS for the corpus resolver) but not started
        with tracer.span("driver.schedule_scanners",
                         scanners=len(population), sharded=True) as sp:
            for scanner in population:
                _register_rdns(deployment, scanner)
        stage_seconds["schedule_scanners"] = sp.duration

        injector: FaultInjector | None = None
        if plan is not None:
            injector = faults if isinstance(faults, FaultInjector) \
                else FaultInjector(plan, seed=config.seed)
            with tracer.span("driver.install_faults") as sp:
                # arms blackout windows on the coordinator captures so
                # coverage gaps package correctly; the flap events fire
                # during the recording pass below, baking the fault's
                # BGP activity into the recorded timeline
                injector.install(deployment)
            stage_seconds["install_faults"] = sp.duration

        # recording pass: with no scanners scheduled, only the
        # infrastructure events run. Its collector journal is the
        # routing timeline the workers replay (DESIGN §8), so the BGP
        # convergence flood is simulated exactly once per campaign.
        with tracer.span("driver.record_timeline") as sp:
            cpu_before = _time.process_time()
            deployment.simulator.run_until(config.duration)
            stage_cpu = {"record_timeline":
                         _time.process_time() - cpu_before}
            # ship announcements only: every feed subscriber a worker can
            # host (reactive scanners, the hitlist service) returns
            # immediately on non-ANNOUNCE entries, so replaying withdrawals
            # would schedule thousands of per-worker no-op events
            feed = tuple(e for e in deployment.collector.journal
                         if e.kind is UpdateKind.ANNOUNCE)
        stage_seconds["record_timeline"] = sp.duration

        with tempfile.TemporaryDirectory(prefix="repro-shards-") as spill:
            with tracer.span("driver.shard_simulate",
                             shards=num_shards) as sp:
                shard_results = sharding.run_shards(
                    config, plan, num_shards, spill,
                    executor=shard_executor, feed=feed,
                    record_obs=recorder is not None)
            stage_seconds["shard_simulate"] = sp.duration
            _fold_shard_obs(recorder, shard_results)
            context.packets_emitted = sum(
                r["packets_emitted"] for r in shard_results)
            context.packets_unrouted = sum(
                r["packets_unrouted"] for r in shard_results)

            with tracer.span("driver.package_corpus",
                             shards=num_shards) as sp:
                # window-at-a-time merge over the lazily opened spill
                # manifests: every window is fully materialized before
                # the spill directory is cleaned up, but the coordinator
                # never holds the concatenated corpus AND a lexsorted
                # copy of it at once
                tables = merge_chunked_shards(
                    sharding.open_shard_segments(shard_results))
                corpus = PacketCorpus(
                    config=config,
                    packets_by_telescope=None,
                    tables_by_telescope=tables,
                    schedule=deployment.cycles(),
                    registry=registry,
                    resolver=deployment.resolver,
                    t1_prefix=T1_PREFIX,
                    t2_prefix=T2_PREFIX,
                    t3_prefix=T3_PREFIX,
                    t4_prefix=T4_PREFIX,
                    attractor_addr=deployment.productive.attractor_addr,
                    coverage_gaps={
                        name: tuple(telescope.capture.blackout_windows)
                        for name, telescope in deployment.telescopes.items()
                        if telescope.capture.blackout_windows})
            stage_seconds["package_corpus"] = sp.duration

    return ExperimentResult(
        corpus=corpus, deployment=deployment, population=population,
        context=context, wall_seconds=_time.monotonic() - started,
        stage_seconds=stage_seconds, stage_cpu_seconds=stage_cpu,
        shard_stats=[{k: v for k, v in res.items() if k != "metrics"}
                     for res in shard_results])


def _fold_shard_obs(recorder, shard_results) -> None:
    """Surface worker metrics and timings in the coordinator registry.

    Every folded series gains a ``shard=<i>`` label, so worker counters
    stay attributable and never collide with the coordinator's own.
    """
    if recorder is None:
        return
    for res in shard_results:
        recorder.metrics.merge_snapshot(res["metrics"], shard=res["shard"])
        for stage, seconds in res["stage_seconds"].items():
            recorder.metrics.gauge("shard.stage_seconds", stage=stage,
                                   shard=res["shard"]).set(seconds)


def resume_experiment(checkpoint_dir: str | Path,
                      after_checkpoint=None) -> ExperimentResult:
    """Continue a killed campaign from its newest valid checkpoint.

    Restores the whole simulation graph (clock, pending events, RNG
    streams, partial captures, deferred batches) and runs it to the
    horizon, continuing to checkpoint at the original cadence. The
    resulting corpus is byte-identical to the one an uninterrupted run
    would have produced.
    """
    started = _time.monotonic()
    path, state = ckpt.latest_checkpoint(checkpoint_dir)
    config = state["config"]
    deployment = state["deployment"]
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    manager = ckpt.CheckpointManager(
        Path(checkpoint_dir),
        state.get("checkpoint_interval", DEFAULT_CHECKPOINT_INTERVAL),
        keep=state.get("checkpoint_keep", 2),
        after_write=after_checkpoint,
        overhead_budget=state.get("checkpoint_budget",
                                  DEFAULT_CHECKPOINT_BUDGET))
    manager.seed_cost(state.get("checkpoint_last_cost", 0.0))
    obs.add("checkpoint.resumes_total")
    _log.info("resuming from %s at t=%.0f (horizon %.0f)", path.name,
              deployment.simulator.now, config.duration)
    with tracer.span("driver.resume_experiment",
                     sim_time=deployment.simulator.now,
                     checkpoint=path.name):
        return _finish_run(config, state["registry"], deployment,
                           state["population"], state["context"],
                           state.get("faults"), manager,
                           dict(state.get("stage_seconds", {})),
                           tracer, recorder, started)


def _finish_run(config, registry, deployment, population, context,
                injector, manager, stage_seconds, tracer, recorder,
                started) -> ExperimentResult:
    """Simulate to the horizon, flush, and package — shared by fresh
    runs and resumed ones."""
    batch_emit = context.batch_emit
    if recorder is not None:
        recorder.attach(deployment.simulator, config.duration)
    try:
        with tracer.span("driver.simulate", horizon=config.duration) as sp:
            if manager is None:
                deployment.simulator.run_until(config.duration)
            else:
                _simulate_with_checkpoints(
                    config, registry, deployment, population, context,
                    injector, manager, stage_seconds)
    finally:
        if recorder is not None:
            recorder.detach(deployment.simulator)
    stage_seconds["simulate"] = \
        stage_seconds.get("simulate", 0.0) + sp.duration
    if manager is not None:
        # wall seconds spent on snapshots inside the simulate stage
        # (included in the simulate figure above); the overhead budget
        # keeps this share small
        stage_seconds["checkpoint"] = manager.window_spent

    if batch_emit:
        # sessions only *resolved* during the run materialize now, one
        # cross-session kernel call per scanner
        with tracer.span("driver.flush_batches") as sp:
            context.flush_batches()
        stage_seconds["flush_batches"] = sp.duration

    with tracer.span("driver.package_corpus") as sp:
        # batch runs package columns only — Packet objects materialize
        # lazily if an analysis asks for them
        packets_by = None if batch_emit else {
            name: telescope.capture.packets()
            for name, telescope in deployment.telescopes.items()}
        corpus = PacketCorpus(
            config=config,
            packets_by_telescope=packets_by,
            tables_by_telescope={
                name: telescope.capture.table()
                for name, telescope in deployment.telescopes.items()},
            schedule=deployment.cycles(),
            registry=registry,
            resolver=deployment.resolver,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            coverage_gaps={
                name: tuple(telescope.capture.blackout_windows)
                for name, telescope in deployment.telescopes.items()
                if telescope.capture.blackout_windows})
    stage_seconds["package_corpus"] = sp.duration

    return ExperimentResult(
        corpus=corpus, deployment=deployment, population=population,
        context=context, wall_seconds=_time.monotonic() - started,
        stage_seconds=stage_seconds)


def _simulate_with_checkpoints(config, registry, deployment, population,
                               context, injector, manager,
                               stage_seconds) -> None:
    """Run to the horizon in checkpoint-interval chunks.

    Chunking never reorders events — the queue's (time, seq) heap order
    is global — so a checkpointed run executes the exact same event
    sequence as a single ``run_until`` to the horizon. Snapshots land on
    interval multiples; none is written at the horizon itself (the run
    is already complete there).

    Boundaries the overhead budget rejects are skipped (counted as
    ``checkpoint.skipped_total``); a skip only thins the set of restart
    points, never the event sequence.
    """
    simulator = deployment.simulator
    duration = config.duration
    interval = manager.interval
    manager.begin_budget_window()
    wall_start = _time.perf_counter()
    while True:
        boundary = interval * (math.floor(simulator.now / interval) + 1)
        target = min(duration, boundary)
        simulator.run_until(target)
        if target >= duration:
            return
        if not manager.should_write(_time.perf_counter() - wall_start):
            obs.add("checkpoint.skipped_total")
            continue
        _write_snapshot(config, registry, deployment, population,
                        context, injector, manager, stage_seconds)


def _write_snapshot(config, registry, deployment, population, context,
                    injector, manager, stage_seconds) -> None:
    """Persist the live graph plus the manager's resume metadata."""
    with ckpt.pickling_guard(deployment):
        state = ckpt.build_state(config, registry, deployment,
                                 population, context, stage_seconds)
        state["faults"] = injector
        state["checkpoint_interval"] = manager.interval
        state["checkpoint_keep"] = manager.keep
        state["checkpoint_budget"] = manager.overhead_budget
        state["checkpoint_last_cost"] = manager._last_cost
        manager.write(state, deployment.simulator.now)


def _register_rdns(deployment: Deployment, scanner: Scanner) -> None:
    """Publish the scanner's PTR record if it advertises one."""
    if not scanner.rdns_name:
        return
    if scanner.source_model is not SourceModel.FIXED:
        return  # rotating sources have no stable reverse entry
    deployment.rdns_zone.add_ptr(scanner.source_address(), scanner.rdns_name)
