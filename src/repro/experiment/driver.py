"""Experiment driver: build, run, collect.

``run_experiment(config)`` performs the whole measurement campaign:

1. build the deployment (§3: BGP fabric, telescopes, collector, hitlist),
2. build the calibrated scanner population,
3. register RDNS entries for fixed-source scanners,
4. schedule every scanner and run the simulator to the horizon,
5. package the captures into a :class:`PacketCorpus`.

Each stage runs inside a ``driver.*`` tracing span. When a
:class:`repro.obs.FlightRecorder` is installed the spans land in its
trace (nested under ``driver.run_experiment``, with ``sim.run_until``
below ``driver.simulate``) and the simulator heartbeat is attached;
otherwise a private throwaway tracer measures the same stages so
:attr:`ExperimentResult.stage_seconds` is always populated.
"""

from __future__ import annotations

import math
import shutil
import tempfile
import time as _time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.obs import events as obsevents
from repro.obs import ledger as obsledger
from repro.bgp.messages import UpdateKind
from repro.errors import ExperimentError
from repro.experiment import checkpoint as ckpt
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus, merge_chunked_shards
from repro.faults import FaultInjector, FaultPlan
from repro.scanners.base import (Scanner, ScannerContext, SourceModel,
                                 batch_emit_default)
from repro.scanners.population import (PopulationInputs, build_population)
from repro.scanners.registry import ASRegistry
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (Deployment, T1_PREFIX, T2_PREFIX,
                                        T3_PREFIX, T4_PREFIX,
                                        build_deployment)


@dataclass
class ExperimentResult:
    """Corpus plus ground truth and infrastructure handles."""

    corpus: PacketCorpus
    deployment: Deployment
    population: list[Scanner]
    context: ScannerContext
    wall_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: CPU (process) seconds of coordinator stages that matter for
    #: scaling accounting — currently only ``record_timeline`` of a
    #: sharded build; empty for unsharded runs.
    stage_cpu_seconds: dict[str, float] = field(default_factory=dict)
    #: per-worker results of a sharded build (segment row counts, wall
    #: and CPU seconds per worker stage) — ``None`` for unsharded runs.
    shard_stats: list[dict] | None = field(default=None, repr=False)
    #: shards that exhausted their retry budget under
    #: ``on_shard_failure="degrade"`` — their scanners' traffic is
    #: missing from the corpus and recorded as coverage gaps.
    quarantined_shards: tuple[int, ...] = ()
    _scanner_index: dict[int, Scanner] | None = field(
        default=None, repr=False, compare=False)

    def scanner_by_id(self, scanner_id: int) -> Scanner | None:
        if self._scanner_index is None:
            self._scanner_index = {s.scanner_id: s for s in self.population}
        return self._scanner_index.get(scanner_id)

    def ground_truth_temporal(self) -> dict[int, str]:
        """scanner_id -> generative temporal kind (validation only)."""
        return {s.scanner_id: s.temporal.kind.value for s in self.population}

    def ground_truth_network(self) -> dict[int, str]:
        return {s.scanner_id: s.truth_network_class
                for s in self.population if s.truth_network_class}


#: Stage names, in execution order, as they appear in ``stage_seconds``
#: and as ``driver.<stage>`` tracing spans. When a fault plan is armed an
#: extra ``install_faults`` stage runs (and is timed) between
#: ``schedule_scanners`` and ``simulate``. A sharded run (``shards=``)
#: replaces ``simulate`` and ``flush_batches`` with a coordinator
#: ``record_timeline`` stage (the infrastructure-only recording pass)
#: followed by one ``shard_simulate`` stage covering the whole worker
#: fan-out; the per-worker breakdown lands in
#: :attr:`ExperimentResult.shard_stats`.
STAGES = ("build_deployment", "build_population", "schedule_scanners",
          "simulate", "flush_batches", "package_corpus")

#: Default sim-time between checkpoints: one simulated week.
DEFAULT_CHECKPOINT_INTERVAL = 7 * 86400.0

#: Default wall-clock overhead budget for checkpointing: snapshot writes
#: may consume at most this fraction of the run's wall time; boundaries
#: that would exceed it are skipped (the corpus is unaffected — only the
#: set of persisted restart points shrinks).
DEFAULT_CHECKPOINT_BUDGET = 0.05

_log = obs.log.get_logger("driver")


@contextmanager
def _stage(tracer, name, stage_seconds, **attrs):
    """One driver stage: a tracing span bracketed by run events.

    Accumulates into ``stage_seconds[name]`` (the simulate stage of a
    resumed run adds to the pre-crash figure restored from the
    checkpoint). Event emission is a no-op unless an
    :class:`~repro.obs.events.EventLog` is installed.
    """
    obs.event("stage.start", stage=name, **attrs)
    with tracer.span(f"driver.{name}", **attrs) as sp:
        yield sp
    stage_seconds[name] = stage_seconds.get(name, 0.0) + sp.duration
    obs.event("stage.end", stage=name, seconds=round(sp.duration, 4))


def _record_run(result: "ExperimentResult", config, run_id, ledger_dir,
                fault_plan=None, shards=None) -> None:
    """Emit the ``run.end`` event and persist the ledger manifest."""
    corpus = result.corpus
    obs.event("run.end", wall_seconds=round(result.wall_seconds, 3),
              packets=corpus.total_packets(), scanners=len(result.population))
    if ledger_dir is None:
        return
    from repro.experiment.store import corpus_digest
    recorder = obs.current()
    event_log = obsevents.current()
    manifest = obsledger.build_manifest(
        run_id=run_id or (event_log.run_id if event_log is not None
                          else obsevents.new_run_id()),
        config=config,
        stage_seconds=result.stage_seconds,
        wall_seconds=result.wall_seconds,
        stage_cpu_seconds=result.stage_cpu_seconds,
        shards=shards,
        corpus_summary={
            "total_packets": corpus.total_packets(),
            "telescopes": {name: len(corpus.table(name))
                           for name in corpus.tables_by_telescope}},
        corpus_digest=corpus_digest(corpus),
        coverage_gaps=corpus.coverage_gaps,
        fault_plan=(obsledger.config_to_dict(fault_plan)
                    if fault_plan is not None else None),
        metrics=(recorder.metrics.snapshot()
                 if recorder is not None else None),
        events_file=(str(event_log.path)
                     if event_log is not None else None))
    path = obsledger.write_manifest(ledger_dir, manifest)
    _log.info("run %s recorded in ledger: %s", manifest["run_id"], path)


def run_experiment(config: ExperimentConfig | None = None,
                   registry: ASRegistry | None = None,
                   faults: FaultInjector | FaultPlan | None = None,
                   checkpoint_dir: str | Path | None = None,
                   checkpoint_interval: float | None = None,
                   checkpoint_keep: int = 2,
                   checkpoint_budget: float | None = DEFAULT_CHECKPOINT_BUDGET,
                   after_checkpoint=None,
                   shards: int | str | None = None,
                   shard_executor=None,
                   run_id: str | None = None,
                   ledger_dir: str | Path | None = None) -> ExperimentResult:
    """Run one full measurement campaign and return its result.

    ``faults`` arms a :class:`repro.faults.FaultPlan` (or a prebuilt
    injector) on the deployment before the simulation starts; an empty
    plan leaves the run byte-identical to a fault-free one.

    ``checkpoint_dir`` enables crash-safe snapshots every
    ``checkpoint_interval`` simulated seconds (default one week); a
    killed run continues from the newest valid snapshot via
    :func:`resume_experiment` and produces a corpus identical to the
    uninterrupted run. ``checkpoint_budget`` caps snapshot overhead at
    that fraction of wall time (boundaries over budget are skipped;
    ``None`` writes every boundary). ``after_checkpoint`` is called with
    each written path (test hook).

    ``shards`` (an int or ``"auto"``) partitions the scanner population
    across that many worker processes, each running its own event loop
    against a replica of the deployment; the merged corpus is
    byte-identical to the unsharded build (DESIGN §8). Sharding
    requires the batched emission path. Workers run under the
    :class:`~repro.experiment.sharding.ShardSupervisor`: crashed or
    hung workers are retried per ``config.retry_policy`` (with
    per-shard timeouts derived from ``config.shard_timeout`` and the
    LPT cost model), and ``config.on_shard_failure`` picks between a
    terminal :class:`~repro.errors.ShardError` and quarantining the
    shard as coverage gaps. Combined with ``checkpoint_dir``, shard
    completions persist to a crash-safe ``shards.json`` manifest plus
    on-disk spill segments, and :func:`resume_experiment` re-runs only
    the shards that had not completed (DESIGN §11). ``shard_executor``
    injects a reusable process pool (see
    :func:`repro.experiment.sharding.shard_pool`) — supervision then
    loses hang timeouts (a pool gives no per-worker kill handle) but
    keeps retry and serial-fallback behavior.

    ``ledger_dir`` records the run in the durable run ledger
    (:mod:`repro.obs.ledger`): a ``run.json`` manifest with config and
    git digests, per-stage timings, the final metrics snapshot and the
    corpus digest, browsable with ``repro runs list|show|compare``.
    ``run_id`` names the ledger entry (defaults to the installed event
    log's run id, else a fresh one).
    """
    started = _time.monotonic()
    if config is None:
        config = ExperimentConfig()
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    stage_seconds: dict[str, float] = {}
    plan = faults.plan if isinstance(faults, FaultInjector) else faults
    obs.event("run.start", seed=config.seed, scale=config.scale,
              duration=config.duration,
              shards=shards if shards is not None else None,
              faults=plan is not None)

    if shards is not None:
        from repro.experiment import sharding
        num_shards = sharding.resolve_shards(shards)
        result = _run_sharded(config, registry, faults, num_shards,
                              shard_executor, tracer, recorder, started,
                              run_id=run_id,
                              checkpoint_dir=checkpoint_dir,
                              after_checkpoint=after_checkpoint)
        _record_run(result, config, run_id, ledger_dir,
                    fault_plan=plan, shards=num_shards)
        return result

    with tracer.span("driver.run_experiment",
                     seed=config.seed, scale=config.scale):
        streams = RngStreams(config.seed)
        with _stage(tracer, "build_deployment", stage_seconds):
            deployment = build_deployment(
                streams,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay)
        if registry is None:
            registry = ASRegistry()

        inputs = PopulationInputs(
            schedule=deployment.cycles(),
            announced=deployment.announced_t1_prefixes,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            duration=config.duration)
        with _stage(tracer, "build_population", stage_seconds):
            population = build_population(config.population, inputs,
                                          registry, streams)

        batch_emit = config.batch_emit if config.batch_emit is not None \
            else batch_emit_default()
        context = ScannerContext(
            simulator=deployment.simulator,
            route=deployment.route,
            route_batch=deployment.route_batch,
            batch_emit=batch_emit,
            defer_batch=batch_emit,
            collector=deployment.collector,
            window_start=0.0,
            window_end=config.duration)

        with _stage(tracer, "schedule_scanners", stage_seconds,
                    scanners=len(population)):
            for scanner in population:
                _register_rdns(deployment, scanner)
                scanner.start(context)

        injector: FaultInjector | None = None
        if faults is not None:
            injector = faults if isinstance(faults, FaultInjector) \
                else FaultInjector(faults, seed=config.seed)
            with _stage(tracer, "install_faults", stage_seconds):
                injector.install(deployment)

        manager: ckpt.CheckpointManager | None = None
        if checkpoint_dir is not None:
            manager = ckpt.CheckpointManager(
                Path(checkpoint_dir),
                checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL,
                keep=checkpoint_keep, after_write=after_checkpoint,
                overhead_budget=checkpoint_budget)
            # initial restart point, outside the simulate stage: resume
            # skips the build stages entirely, and its measured cost
            # seeds the overhead-budget projection for the simulate loop
            with _stage(tracer, "checkpoint_setup", stage_seconds):
                _write_snapshot(config, registry, deployment, population,
                                context, injector, manager, stage_seconds)

        result = _finish_run(config, registry, deployment, population,
                             context, injector, manager, stage_seconds,
                             tracer, recorder, started)
    _record_run(result, config, run_id, ledger_dir, fault_plan=plan)
    return result


def _run_sharded(config, registry, faults, num_shards, shard_executor,
                 tracer, recorder, started,
                 run_id: str | None = None,
                 checkpoint_dir: str | Path | None = None,
                 after_checkpoint=None,
                 resume: bool = False) -> ExperimentResult:
    """Coordinator side of a sharded build (DESIGN §8, §11).

    Builds its own deployment/population replica for the corpus metadata
    and the result's ground-truth handles, then simulates it once with
    *no scanners scheduled* — the recording pass. Only infrastructure
    events run (BGP flood, announcement schedule, fault flaps), and the
    collector journal they produce is the routing timeline the workers
    replay instead of each re-running the convergence flood. All packet
    emission happens in the shard workers, whose spilled segments are
    merged (verified) at ``package_corpus``.

    With ``checkpoint_dir`` the spill lives inside the checkpoint
    directory instead of a temp dir, a setup snapshot plus a
    ``shards.json`` manifest persist alongside it, and ``resume=True``
    (from :func:`resume_experiment`) skips manifest-recorded shards
    whose spill segments are intact — the recording pass itself is
    deterministic and cheap, so it simply re-runs.
    """
    from repro.experiment import sharding

    batch_emit = config.batch_emit if config.batch_emit is not None \
        else batch_emit_default()
    if not batch_emit:
        raise ExperimentError(
            "sharded runs require the batched emission path — "
            "config.batch_emit must not be False (and REPRO_LEGACY_EMIT "
            "must not force the per-packet oracle)")
    plan = faults.plan if isinstance(faults, FaultInjector) else faults

    stage_seconds: dict[str, float] = {}
    with tracer.span("driver.run_experiment", seed=config.seed,
                     scale=config.scale, shards=num_shards):
        streams = RngStreams(config.seed)
        with _stage(tracer, "build_deployment", stage_seconds):
            deployment = build_deployment(
                streams,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay)
        if registry is None:
            registry = ASRegistry()

        inputs = PopulationInputs(
            schedule=deployment.cycles(),
            announced=deployment.announced_t1_prefixes,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            duration=config.duration)
        with _stage(tracer, "build_population", stage_seconds):
            population = build_population(config.population, inputs,
                                          registry, streams)

        context = ScannerContext(
            simulator=deployment.simulator,
            route=deployment.route,
            route_batch=deployment.route_batch,
            batch_emit=True,
            defer_batch=True,
            collector=deployment.collector,
            window_start=0.0,
            window_end=config.duration)

        # the coordinator replica never runs: scanners are registered
        # (RDNS for the corpus resolver) but not started
        with _stage(tracer, "schedule_scanners", stage_seconds,
                    scanners=len(population), sharded=True):
            for scanner in population:
                _register_rdns(deployment, scanner)

        injector: FaultInjector | None = None
        if plan is not None:
            injector = faults if isinstance(faults, FaultInjector) \
                else FaultInjector(plan, seed=config.seed)
            with _stage(tracer, "install_faults", stage_seconds):
                # arms blackout windows on the coordinator captures so
                # coverage gaps package correctly; the flap events fire
                # during the recording pass below, baking the fault's
                # BGP activity into the recorded timeline
                injector.install(deployment)

        # recording pass: with no scanners scheduled, only the
        # infrastructure events run. Its collector journal is the
        # routing timeline the workers replay (DESIGN §8), so the BGP
        # convergence flood is simulated exactly once per campaign.
        with _stage(tracer, "record_timeline", stage_seconds):
            cpu_before = _time.process_time()
            deployment.simulator.run_until(config.duration)
            stage_cpu = {"record_timeline":
                         _time.process_time() - cpu_before}
            # ship announcements only: every feed subscriber a worker can
            # host (reactive scanners, the hitlist service) returns
            # immediately on non-ANNOUNCE entries, so replaying withdrawals
            # would schedule thousands of per-worker no-op events
            feed = tuple(e for e in deployment.collector.journal
                         if e.kind is UpdateKind.ANNOUNCE)

        # the LPT assignment and load table: the supervisor's per-shard
        # timeouts scale with estimated load, and a quarantined shard's
        # coverage gaps are derived from the scanners assigned to it
        assign = sharding.weighted_assignment(
            population, num_shards, config.duration, len(feed))
        loads = sharding.shard_loads(population, assign, num_shards,
                                     config.duration, len(feed))
        timeouts = sharding.derive_timeouts(loads, config.shard_timeout)

        manifest = None
        completed: dict[int, dict] = {}
        on_complete = None
        if checkpoint_dir is not None:
            ckpt_root = Path(checkpoint_dir)
            spill_root = ckpt_root / "shards"
            if not resume:
                # a fresh run never trusts leftover sharded state in
                # its directory (symmetric with unsharded semantics:
                # only resume_experiment continues a previous run)
                shutil.rmtree(spill_root, ignore_errors=True)
                (ckpt_root / sharding.MANIFEST_NAME).unlink(
                    missing_ok=True)
            spill_root.mkdir(parents=True, exist_ok=True)
            ckpt.write_state(ckpt_root / sharding.SETUP_NAME, {
                "format_version": ckpt.FORMAT_VERSION,
                "config": config, "plan": plan,
                "num_shards": num_shards})
            manifest = sharding.ShardManifest.open(ckpt_root, num_shards)
            if resume:
                completed = manifest.restorable(spill_root)
                _log.info("resuming sharded run: %d/%d shards restored "
                          "from manifest", len(completed), num_shards)
                # wipe the crashed run's remnants for every shard that
                # re-executes — partial spills, worker result/stderr
                # files, and telemetry spools the tailer would otherwise
                # re-fold from offset zero
                spool_root = spill_root / "obs"
                for shard in range(num_shards):
                    if shard in completed:
                        continue
                    shutil.rmtree(spill_root / f"shard{shard:03d}",
                                  ignore_errors=True)
                    for stale in (
                            spill_root / f"shard{shard:03d}.result.json",
                            spill_root / f"shard{shard:03d}.stderr",
                            Path(obsevents.spool_path(spool_root, shard)),
                            Path(obsevents.trace_spool_path(spool_root,
                                                            shard))):
                        try:
                            stale.unlink()
                        except FileNotFoundError:
                            pass

            def on_complete(shard: int, result: dict,
                            _manifest=manifest) -> None:
                path = _manifest.record(shard, result)
                if after_checkpoint is not None:
                    after_checkpoint(path)

            spill_ctx = nullcontext(str(spill_root))
        else:
            spill_ctx = tempfile.TemporaryDirectory(prefix="repro-shards-")

        event_log = obsevents.current()
        with spill_ctx as spill:
            # worker telemetry spools live beside the spill chunks; the
            # tailer streams them into the unified event log + live
            # registry while workers run
            spool = None
            tailer = None
            if recorder is not None and event_log is not None:
                spool = Path(spill) / "obs"
                spool.mkdir(exist_ok=True)
                tailer = sharding.SpoolTailer(
                    spool, num_shards, event_log=event_log,
                    registry=recorder.metrics)
                tailer.start()
            try:
                with _stage(tracer, "shard_simulate", stage_seconds,
                            shards=num_shards):
                    shard_results = sharding.run_shards(
                        config, plan, num_shards, spill,
                        executor=shard_executor, feed=feed,
                        record_obs=recorder is not None,
                        obs_spool=spool,
                        run_id=(event_log.run_id
                                if event_log is not None else run_id),
                        heartbeat_interval=(recorder.heartbeat_interval
                                            if recorder is not None
                                            else None),
                        timeouts=timeouts, tailer=tailer,
                        completed=completed, on_complete=on_complete)
            finally:
                if tailer is not None:
                    tailer.stop()
            quarantined = tuple(
                shard for shard, res in enumerate(shard_results)
                if res is None)
            live_results = [r for r in shard_results if r is not None]
            _fold_shard_obs(
                recorder, live_results,
                skip_counter_shards=(tailer.folded_shards
                                     if tailer is not None else ()))
            if recorder is not None and spool is not None:
                sharding.merge_shard_traces(recorder, spool, num_shards)
            context.packets_emitted = sum(
                r["packets_emitted"] for r in live_results)
            context.packets_unrouted = sum(
                r["packets_unrouted"] for r in live_results)

            with _stage(tracer, "package_corpus", stage_seconds,
                        shards=num_shards):
                # window-at-a-time merge over the lazily opened spill
                # manifests: every window is fully materialized before
                # the spill directory is cleaned up, but the coordinator
                # never holds the concatenated corpus AND a lexsorted
                # copy of it at once
                tables = merge_chunked_shards(
                    sharding.open_shard_segments(live_results))
                # coverage gaps: blackout windows, plus — for every
                # quarantined shard — the activity envelope of the
                # scanners whose traffic is now missing (all telescopes)
                gap_windows = {
                    name: list(telescope.capture.blackout_windows)
                    for name, telescope in deployment.telescopes.items()}
                for shard in quarantined:
                    windows = sharding.quarantine_windows(
                        population, assign, shard, config.duration)
                    for name in gap_windows:
                        gap_windows[name].extend(windows)
                corpus = PacketCorpus(
                    config=config,
                    packets_by_telescope=None,
                    tables_by_telescope=tables,
                    schedule=deployment.cycles(),
                    registry=registry,
                    resolver=deployment.resolver,
                    t1_prefix=T1_PREFIX,
                    t2_prefix=T2_PREFIX,
                    t3_prefix=T3_PREFIX,
                    t4_prefix=T4_PREFIX,
                    attractor_addr=deployment.productive.attractor_addr,
                    coverage_gaps={
                        name: sharding.merge_windows(windows)
                        for name, windows in gap_windows.items()
                        if windows})

    return ExperimentResult(
        corpus=corpus, deployment=deployment, population=population,
        context=context, wall_seconds=_time.monotonic() - started,
        stage_seconds=stage_seconds, stage_cpu_seconds=stage_cpu,
        shard_stats=[{k: v for k, v in res.items() if k != "metrics"}
                     if res is not None else
                     {"shard": shard, "quarantined": True}
                     for shard, res in enumerate(shard_results)],
        quarantined_shards=quarantined)


def _fold_shard_obs(recorder, shard_results,
                    skip_counter_shards=()) -> None:
    """Surface worker metrics and timings in the coordinator registry.

    Every folded series gains a ``shard=<i>`` label, so worker counters
    stay attributable and never collide with the coordinator's own.
    ``skip_counter_shards`` names shards whose counters the live
    :class:`~repro.experiment.sharding.SpoolTailer` already streamed in
    (workers emit a final ``metrics.delta`` before exiting, so the live
    folds sum exactly to the snapshot) — folding the snapshot again
    would double-count them; gauges and histograms are not streamed and
    always fold here.
    """
    if recorder is None:
        return
    skip = set(skip_counter_shards)
    for res in shard_results:
        snapshot = res["metrics"]
        if res["shard"] in skip:
            snapshot = {k: v for k, v in snapshot.items()
                        if k != "counters"}
        recorder.metrics.merge_snapshot(snapshot, shard=res["shard"])
        for stage, seconds in res["stage_seconds"].items():
            recorder.metrics.gauge("shard.stage_seconds", stage=stage,
                                   shard=res["shard"]).set(seconds)


def resume_experiment(checkpoint_dir: str | Path,
                      after_checkpoint=None,
                      run_id: str | None = None,
                      ledger_dir: str | Path | None = None) \
        -> ExperimentResult:
    """Continue a killed campaign from its newest valid checkpoint.

    Restores the whole simulation graph (clock, pending events, RNG
    streams, partial captures, deferred batches) and runs it to the
    horizon, continuing to checkpoint at the original cadence. The
    resulting corpus is byte-identical to the one an uninterrupted run
    would have produced.

    A *sharded* checkpoint directory (recognized by its setup snapshot,
    see :data:`repro.experiment.sharding.SETUP_NAME`) resumes at shard
    granularity instead: the coordinator's recording pass re-runs
    deterministically, shards recorded complete in ``shards.json`` are
    restored from their on-disk spill segments, and only the missing
    shards execute — with the same byte-identical corpus guarantee.
    """
    started = _time.monotonic()
    from repro.experiment import sharding
    if (Path(checkpoint_dir) / sharding.SETUP_NAME).exists():
        return _resume_sharded(checkpoint_dir, after_checkpoint,
                               run_id, ledger_dir, started)
    path, state = ckpt.latest_checkpoint(checkpoint_dir)
    config = state["config"]
    deployment = state["deployment"]
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    manager = ckpt.CheckpointManager(
        Path(checkpoint_dir),
        state.get("checkpoint_interval", DEFAULT_CHECKPOINT_INTERVAL),
        keep=state.get("checkpoint_keep", 2),
        after_write=after_checkpoint,
        overhead_budget=state.get("checkpoint_budget",
                                  DEFAULT_CHECKPOINT_BUDGET))
    manager.seed_cost(state.get("checkpoint_last_cost", 0.0))
    obs.add("checkpoint.resumes_total")
    obs.event("run.resume", checkpoint=path.name,
              sim_time=deployment.simulator.now,
              horizon=config.duration)
    _log.info("resuming from %s at t=%.0f (horizon %.0f)", path.name,
              deployment.simulator.now, config.duration)
    with tracer.span("driver.resume_experiment",
                     sim_time=deployment.simulator.now,
                     checkpoint=path.name):
        result = _finish_run(config, state["registry"], deployment,
                             state["population"], state["context"],
                             state.get("faults"), manager,
                             dict(state.get("stage_seconds", {})),
                             tracer, recorder, started)
    injector = state.get("faults")
    _record_run(result, config, run_id, ledger_dir,
                fault_plan=injector.plan if injector is not None else None)
    return result


def _resume_sharded(checkpoint_dir, after_checkpoint, run_id, ledger_dir,
                    started) -> ExperimentResult:
    """Shard-granular resume of a killed sharded campaign.

    Everything a worker needs is a pure function of ``(config, plan,
    num_shards)``, so the coordinator re-derives the deployment replica
    and the recorded routing timeline instead of unpickling a live
    graph; the ``shards.json`` manifest then decides which shards are
    already done.
    """
    from repro.experiment import sharding
    state = ckpt.read_checkpoint(
        Path(checkpoint_dir) / sharding.SETUP_NAME)
    config = state["config"]
    plan = state["plan"]
    num_shards = state["num_shards"]
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    obs.add("checkpoint.resumes_total")
    obs.event("run.resume", checkpoint=sharding.SETUP_NAME,
              shards=num_shards, horizon=config.duration)
    _log.info("resuming sharded run from %s (%d shards, horizon %.0f)",
              checkpoint_dir, num_shards, config.duration)
    result = _run_sharded(config, None, plan, num_shards, None,
                          tracer, recorder, started, run_id=run_id,
                          checkpoint_dir=checkpoint_dir,
                          after_checkpoint=after_checkpoint,
                          resume=True)
    _record_run(result, config, run_id, ledger_dir,
                fault_plan=plan, shards=num_shards)
    return result


def _finish_run(config, registry, deployment, population, context,
                injector, manager, stage_seconds, tracer, recorder,
                started) -> ExperimentResult:
    """Simulate to the horizon, flush, and package — shared by fresh
    runs and resumed ones."""
    batch_emit = context.batch_emit
    if recorder is not None:
        recorder.attach(deployment.simulator, config.duration)
    try:
        with _stage(tracer, "simulate", stage_seconds,
                    horizon=config.duration):
            if manager is None:
                deployment.simulator.run_until(config.duration)
            else:
                _simulate_with_checkpoints(
                    config, registry, deployment, population, context,
                    injector, manager, stage_seconds)
    finally:
        if recorder is not None:
            recorder.detach(deployment.simulator)
    if manager is not None:
        # wall seconds spent on snapshots inside the simulate stage
        # (included in the simulate figure above); the overhead budget
        # keeps this share small
        stage_seconds["checkpoint"] = manager.window_spent

    if batch_emit:
        # sessions only *resolved* during the run materialize now, one
        # cross-session kernel call per scanner
        with _stage(tracer, "flush_batches", stage_seconds):
            context.flush_batches()

    with _stage(tracer, "package_corpus", stage_seconds):
        # batch runs package columns only — Packet objects materialize
        # lazily if an analysis asks for them
        packets_by = None if batch_emit else {
            name: telescope.capture.packets()
            for name, telescope in deployment.telescopes.items()}
        corpus = PacketCorpus(
            config=config,
            packets_by_telescope=packets_by,
            tables_by_telescope={
                name: telescope.capture.table()
                for name, telescope in deployment.telescopes.items()},
            schedule=deployment.cycles(),
            registry=registry,
            resolver=deployment.resolver,
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            coverage_gaps={
                name: tuple(telescope.capture.blackout_windows)
                for name, telescope in deployment.telescopes.items()
                if telescope.capture.blackout_windows})

    return ExperimentResult(
        corpus=corpus, deployment=deployment, population=population,
        context=context, wall_seconds=_time.monotonic() - started,
        stage_seconds=stage_seconds)


def _simulate_with_checkpoints(config, registry, deployment, population,
                               context, injector, manager,
                               stage_seconds) -> None:
    """Run to the horizon in checkpoint-interval chunks.

    Chunking never reorders events — the queue's (time, seq) heap order
    is global — so a checkpointed run executes the exact same event
    sequence as a single ``run_until`` to the horizon. Snapshots land on
    interval multiples; none is written at the horizon itself (the run
    is already complete there).

    Boundaries the overhead budget rejects are skipped (counted as
    ``checkpoint.skipped_total``); a skip only thins the set of restart
    points, never the event sequence.
    """
    simulator = deployment.simulator
    duration = config.duration
    interval = manager.interval
    manager.begin_budget_window()
    wall_start = _time.perf_counter()
    while True:
        boundary = interval * (math.floor(simulator.now / interval) + 1)
        target = min(duration, boundary)
        simulator.run_until(target)
        if target >= duration:
            return
        if not manager.should_write(_time.perf_counter() - wall_start):
            obs.add("checkpoint.skipped_total")
            continue
        _write_snapshot(config, registry, deployment, population,
                        context, injector, manager, stage_seconds)


def _write_snapshot(config, registry, deployment, population, context,
                    injector, manager, stage_seconds) -> None:
    """Persist the live graph plus the manager's resume metadata."""
    with ckpt.pickling_guard(deployment):
        state = ckpt.build_state(config, registry, deployment,
                                 population, context, stage_seconds)
        state["faults"] = injector
        state["checkpoint_interval"] = manager.interval
        state["checkpoint_keep"] = manager.keep
        state["checkpoint_budget"] = manager.overhead_budget
        state["checkpoint_last_cost"] = manager._last_cost
        manager.write(state, deployment.simulator.now)


def _register_rdns(deployment: Deployment, scanner: Scanner) -> None:
    """Publish the scanner's PTR record if it advertises one."""
    if not scanner.rdns_name:
        return
    if scanner.source_model is not SourceModel.FIXED:
        return  # rotating sources have no stable reverse entry
    deployment.rdns_zone.add_ptr(scanner.source_address(), scanner.rdns_name)
