"""Experiment driver: build, run, collect.

``run_experiment(config)`` performs the whole measurement campaign:

1. build the deployment (§3: BGP fabric, telescopes, collector, hitlist),
2. build the calibrated scanner population,
3. register RDNS entries for fixed-source scanners,
4. schedule every scanner and run the simulator to the horizon,
5. package the captures into a :class:`PacketCorpus`.

Each stage runs inside a ``driver.*`` tracing span. When a
:class:`repro.obs.FlightRecorder` is installed the spans land in its
trace (nested under ``driver.run_experiment``, with ``sim.run_until``
below ``driver.simulate``) and the simulator heartbeat is attached;
otherwise a private throwaway tracer measures the same stages so
:attr:`ExperimentResult.stage_seconds` is always populated.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro import obs
from repro.experiment.config import ExperimentConfig
from repro.experiment.corpus import PacketCorpus
from repro.scanners.base import (Scanner, ScannerContext, SourceModel,
                                 batch_emit_default)
from repro.scanners.population import (PopulationInputs, build_population)
from repro.scanners.registry import ASRegistry
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (Deployment, T1_PREFIX, T2_PREFIX,
                                        T3_PREFIX, T4_PREFIX,
                                        build_deployment)


@dataclass
class ExperimentResult:
    """Corpus plus ground truth and infrastructure handles."""

    corpus: PacketCorpus
    deployment: Deployment
    population: list[Scanner]
    context: ScannerContext
    wall_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    _scanner_index: dict[int, Scanner] | None = field(
        default=None, repr=False, compare=False)

    def scanner_by_id(self, scanner_id: int) -> Scanner | None:
        if self._scanner_index is None:
            self._scanner_index = {s.scanner_id: s for s in self.population}
        return self._scanner_index.get(scanner_id)

    def ground_truth_temporal(self) -> dict[int, str]:
        """scanner_id -> generative temporal kind (validation only)."""
        return {s.scanner_id: s.temporal.kind.value for s in self.population}

    def ground_truth_network(self) -> dict[int, str]:
        return {s.scanner_id: s.truth_network_class
                for s in self.population if s.truth_network_class}


#: Stage names, in execution order, as they appear in ``stage_seconds``
#: and as ``driver.<stage>`` tracing spans.
STAGES = ("build_deployment", "build_population", "schedule_scanners",
          "simulate", "flush_batches", "package_corpus")


def run_experiment(config: ExperimentConfig | None = None,
                   registry: ASRegistry | None = None) -> ExperimentResult:
    """Run one full measurement campaign and return its result."""
    started = _time.monotonic()
    if config is None:
        config = ExperimentConfig()
    recorder = obs.current()
    tracer = recorder.tracer if recorder is not None else obs.Tracer()
    stage_seconds: dict[str, float] = {}

    with tracer.span("driver.run_experiment",
                     seed=config.seed, scale=config.scale):
        streams = RngStreams(config.seed)
        with tracer.span("driver.build_deployment") as sp:
            deployment = build_deployment(
                streams,
                baseline_weeks=config.baseline_weeks,
                cycle_weeks=config.cycle_weeks,
                num_cycles=config.num_cycles,
                num_tier1=config.num_tier1,
                num_tier2=config.num_tier2,
                num_stubs=config.num_stubs,
                feed_delay=config.feed_delay)
        stage_seconds["build_deployment"] = sp.duration
        if registry is None:
            registry = ASRegistry()

        inputs = PopulationInputs(
            schedule=deployment.cycles(),
            announced=lambda: deployment.announced_t1_prefixes(),
            t1_prefix=T1_PREFIX,
            t2_prefix=T2_PREFIX,
            t3_prefix=T3_PREFIX,
            t4_prefix=T4_PREFIX,
            attractor_addr=deployment.productive.attractor_addr,
            duration=config.duration)
        with tracer.span("driver.build_population") as sp:
            population = build_population(config.population, inputs,
                                          registry, streams)
        stage_seconds["build_population"] = sp.duration

        batch_emit = config.batch_emit if config.batch_emit is not None \
            else batch_emit_default()
        context = ScannerContext(
            simulator=deployment.simulator,
            route=deployment.route,
            route_batch=deployment.route_batch,
            batch_emit=batch_emit,
            defer_batch=batch_emit,
            collector=deployment.collector,
            window_start=0.0,
            window_end=config.duration)

        with tracer.span("driver.schedule_scanners",
                         scanners=len(population)) as sp:
            for scanner in population:
                _register_rdns(deployment, scanner)
                scanner.start(context)
        stage_seconds["schedule_scanners"] = sp.duration

        if recorder is not None:
            recorder.attach(deployment.simulator, config.duration)
        try:
            with tracer.span("driver.simulate",
                             horizon=config.duration) as sp:
                deployment.simulator.run_until(config.duration)
        finally:
            if recorder is not None:
                recorder.detach(deployment.simulator)
        stage_seconds["simulate"] = sp.duration

        if batch_emit:
            # sessions only *resolved* during the run materialize now, one
            # cross-session kernel call per scanner
            with tracer.span("driver.flush_batches") as sp:
                context.flush_batches()
            stage_seconds["flush_batches"] = sp.duration

        with tracer.span("driver.package_corpus") as sp:
            # batch runs package columns only — Packet objects materialize
            # lazily if an analysis asks for them
            packets_by = None if batch_emit else {
                name: telescope.capture.packets()
                for name, telescope in deployment.telescopes.items()}
            corpus = PacketCorpus(
                config=config,
                packets_by_telescope=packets_by,
                tables_by_telescope={
                    name: telescope.capture.table()
                    for name, telescope in deployment.telescopes.items()},
                schedule=deployment.cycles(),
                registry=registry,
                resolver=deployment.resolver,
                t1_prefix=T1_PREFIX,
                t2_prefix=T2_PREFIX,
                t3_prefix=T3_PREFIX,
                t4_prefix=T4_PREFIX,
                attractor_addr=deployment.productive.attractor_addr)
        stage_seconds["package_corpus"] = sp.duration

    return ExperimentResult(
        corpus=corpus, deployment=deployment, population=population,
        context=context, wall_seconds=_time.monotonic() - started,
        stage_seconds=stage_seconds)


def _register_rdns(deployment: Deployment, scanner: Scanner) -> None:
    """Publish the scanner's PTR record if it advertises one."""
    if not scanner.rdns_name:
        return
    if scanner.source_model is not SourceModel.FIXED:
        return  # rotating sources have no stable reverse entry
    deployment.rdns_zone.add_ptr(scanner.source_address(), scanner.rdns_name)
