"""Crash-safe experiment checkpoints.

A checkpoint is one file holding the *entire* live simulation graph —
clock, event queue (all callbacks are picklable partials/bound methods by
construction), RNG streams, BGP fabric, captures with their partial
columnar builders, scanner agents and their pending deferred batches —
pickled in a single graph so object identity survives the round trip.

File format::

    MAGIC (8 bytes) | sha256(payload) (32 bytes) | payload (pickle)

Writes are atomic: the payload goes to a ``.tmp`` sibling, is fsynced,
and only then renamed over the final name, so a crash mid-write can never
leave a truncated file under a checkpoint name. Readers verify the magic
and the content checksum and raise :class:`repro.errors.CheckpointError`
(a :class:`~repro.errors.StoreError`) on any mismatch; resume picks the
newest checkpoint that passes verification, quarantining broken ones by
skipping them with a warning.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.errors import CheckpointError

MAGIC = b"RPCKPT01"
FORMAT_VERSION = 1

log = obs.log.get_logger("checkpoint")


def checkpoint_name(sim_time: float) -> str:
    """Canonical file name; lexicographic order == sim-time order."""
    return f"ckpt_{int(sim_time):015d}.rpck"


def write_state(path: str | Path, state: dict) -> Path:
    """Atomically persist ``state`` in checkpoint format at ``path``.

    The shared primitive under :func:`write_checkpoint` and the sharded
    setup snapshot: magic + sha256 + pickle, written to a ``.tmp``
    sibling, fsynced, then renamed into place.
    """
    final = Path(path)
    final.parent.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    tmp = final.with_suffix(".tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(digest)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    obs.observe("checkpoint.bytes", len(payload))
    return final


def write_checkpoint(directory: str | Path, state: dict,
                     sim_time: float) -> Path:
    """Atomically persist ``state`` as the checkpoint for ``sim_time``."""
    final = write_state(Path(directory) / checkpoint_name(sim_time), state)
    obs.add("checkpoint.writes_total")
    obs.event("checkpoint.write", path=final.name, sim_time=sim_time,
              bytes=final.stat().st_size - len(MAGIC) - 32)
    return final


def read_checkpoint(path: str | Path) -> dict:
    """Load and verify one checkpoint file.

    Raises :class:`CheckpointError` carrying the path and the failed
    check when the file is missing, truncated, tampered with, or not a
    checkpoint at all.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}",
                              path=path, check="exists")
    blob = path.read_bytes()
    if len(blob) < len(MAGIC) + 32:
        raise CheckpointError(
            f"checkpoint {path} is truncated ({len(blob)} bytes)",
            path=path, check="length")
    if blob[:len(MAGIC)] != MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint "
                              f"(bad magic)", path=path, check="magic")
    digest = blob[len(MAGIC):len(MAGIC) + 32]
    payload = blob[len(MAGIC) + 32:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(
            f"checkpoint {path} failed its content checksum",
            path=path, check="sha256")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # unpickling raises a zoo of types
        raise CheckpointError(
            f"checkpoint {path} does not unpickle: {exc}",
            path=path, check="pickle") from exc
    if not isinstance(state, dict) \
            or state.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has unsupported format "
            f"{state.get('format_version') if isinstance(state, dict) else '?'!r}",
            path=path, check="format_version")
    obs.add("checkpoint.reads_total")
    return state


def list_checkpoints(directory: str | Path) -> list[Path]:
    """All checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("ckpt_*.rpck"))


def latest_checkpoint(directory: str | Path) -> tuple[Path, dict]:
    """The newest checkpoint that passes verification.

    Corrupt or truncated checkpoints are skipped (newest first) with a
    warning — a crash can race the retention sweep but never the atomic
    write, so an older valid snapshot is the correct fallback. Raises
    :class:`CheckpointError` when none survives.
    """
    candidates = list_checkpoints(directory)
    if not candidates:
        raise CheckpointError(f"no checkpoints in {directory}",
                              path=Path(directory), check="exists")
    for path in reversed(candidates):
        try:
            return path, read_checkpoint(path)
        except CheckpointError as exc:
            log.warning("skipping unusable checkpoint %s (%s)",
                        path.name, exc.check)
            obs.add("checkpoint.quarantined_total")
            obs.event("checkpoint.quarantine", path=path.name,
                      check=exc.check)
    raise CheckpointError(
        f"all {len(candidates)} checkpoints in {directory} are corrupt",
        path=Path(directory), check="sha256")


@dataclass
class CheckpointManager:
    """Drives periodic snapshots of a running experiment.

    ``interval`` is simulated seconds between snapshots. ``keep`` bounds
    disk usage: after each write, older checkpoints beyond the newest
    ``keep`` are deleted. ``after_write`` is a post-write hook (used by
    the kill-resume tests to die at a precise point); it is never
    pickled because the manager itself stays outside the simulation
    graph.

    ``overhead_budget`` caps the wall-clock share of a budget window
    (the simulate stage) that snapshot writes may consume (e.g. ``0.05``
    = 5%). Serializing the whole live graph costs the same no matter how
    little sim time passed, so a fixed sim-time cadence would dominate
    short or fast runs; instead :meth:`should_write` lets the driver
    skip a boundary whenever the window's cumulative snapshot time plus
    one projected write (the last measured cost — the driver seeds it
    with a pre-simulate setup snapshot, so the projection is informed
    from the first boundary) would exceed half the budget; the half
    leaves headroom for cost variance. Skipping a snapshot never changes
    simulation state, so the corpus stays byte-identical regardless of
    which boundaries were persisted. ``None`` disables the guard (every
    boundary is written).
    """

    directory: Path
    interval: float
    keep: int = 2
    after_write: Callable[[Path], None] | None = None
    overhead_budget: float | None = None
    written: int = field(default=0, init=False)
    #: cumulative wall seconds spent inside :meth:`write`
    spent_seconds: float = field(default=0.0, init=False)
    _last_cost: float = field(default=0.0, init=False)
    _window_base: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.interval <= 0:
            raise CheckpointError(
                f"checkpoint interval must be > 0, got {self.interval}")
        if self.keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {self.keep}")

    def begin_budget_window(self) -> None:
        """Start a fresh budget accounting window (e.g. the simulate
        stage); snapshots written before it no longer count against the
        window's budget, but their cost still informs the projection."""
        self._window_base = self.spent_seconds

    @property
    def window_spent(self) -> float:
        """Wall seconds spent on snapshots inside the current window."""
        return self.spent_seconds - self._window_base

    def seed_cost(self, last_cost: float) -> None:
        """Prime the cost projection (restored from checkpoint state)."""
        self._last_cost = max(0.0, last_cost)

    def should_write(self, wall_elapsed: float) -> bool:
        """Whether a snapshot at this boundary fits the overhead budget."""
        if self.overhead_budget is None or self.written == 0:
            return True
        projected = self.window_spent + self._last_cost
        return projected <= 0.5 * self.overhead_budget * wall_elapsed

    def write(self, state: dict, sim_time: float) -> Path:
        started = _time.perf_counter()
        with obs.span("checkpoint.write", sim_time=sim_time):
            path = write_checkpoint(self.directory, state, sim_time)
        self._last_cost = _time.perf_counter() - started
        self.spent_seconds += self._last_cost
        self.written += 1
        self._sweep()
        log.debug("checkpoint %s written (%d so far)", path.name,
                  self.written)
        if self.after_write is not None:
            self.after_write(path)
        return path

    def _sweep(self) -> None:
        stale = list_checkpoints(self.directory)[:-self.keep]
        for path in stale:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass


@contextmanager
def pickling_guard(deployment):
    """Temporarily drop unpicklable per-run attachments.

    The flight-recorder heartbeat holds thread locks and the captures
    cache bound obs counters owned by the active recorder; both rebind
    lazily after a restore, so they are cleared for the duration of the
    pickle and put back so the live run keeps its hot-path caches.
    """
    simulator = deployment.simulator
    saved_beat = simulator.heartbeat
    saved_caches = [
        (t.capture, t.capture._obs_counter, t.capture._obs_owner)
        for t in deployment.telescopes.values()]
    simulator.heartbeat = None
    for capture, _, _ in saved_caches:
        capture._obs_counter = None
        capture._obs_owner = None
    try:
        yield
    finally:
        simulator.heartbeat = saved_beat
        for capture, counter, owner in saved_caches:
            capture._obs_counter = counter
            capture._obs_owner = owner


def build_state(config, registry, deployment, population, context,
                stage_seconds: dict[str, float]) -> dict:
    """Assemble the one-graph checkpoint payload."""
    return {
        "format_version": FORMAT_VERSION,
        "sim_time": deployment.simulator.now,
        "config": config,
        "registry": registry,
        "deployment": deployment,
        "population": population,
        "context": context,
        "stage_seconds": dict(stage_seconds),
    }
