"""Source aggregation levels (§3.3).

Scan sources can be inspected as full addresses (/128), aggregated per
subnet (/64, revealing scanners that rotate addresses), or per routed
prefix (/48). The paper analyzes /128 and /64 throughout and shows their
divergence in Figure 4.
"""

from __future__ import annotations

import enum

from repro.errors import AnalysisError


class AggregationLevel(enum.IntEnum):
    """Prefix length used to identify a scan source."""

    ADDR = 128
    SUBNET = 64
    PREFIX = 48


def source_key(src: int, level: AggregationLevel = AggregationLevel.ADDR) \
        -> int:
    """Collapse a source address to its aggregation key.

    The key is the address right-shifted so that equal keys mean "same
    aggregated source"; shifting (instead of masking) keeps keys small.
    """
    if level is AggregationLevel.ADDR:
        return src
    if level is AggregationLevel.SUBNET:
        return src >> 64
    if level is AggregationLevel.PREFIX:
        return src >> 80
    raise AnalysisError(f"unsupported aggregation level {level!r}")


def distinct_sources(srcs, level: AggregationLevel) -> set[int]:
    """Set of aggregated source keys for an iterable of addresses."""
    return {source_key(s, level) for s in srcs}
