"""Protocol and port statistics (§4.2, Tables 2 and 4)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.sessions import Session
from repro.errors import AnalysisError
from repro.telescope.packet import (Packet, Protocol, is_traceroute_port)

#: Pseudo-port bucketing the whole default traceroute range, as the paper
#: aggregates "Traceroute¹" into a single Table 4 row.
TRACEROUTE_BUCKET = -1


@dataclass(frozen=True, slots=True)
class ProtocolStats:
    """Packets / sessions / sources per transport protocol (Table 2)."""

    packets: dict[Protocol, int]
    sessions: dict[Protocol, int]
    sources: dict[Protocol, int]
    total_packets: int
    total_sessions: int
    total_sources: int

    def packet_share(self, protocol: Protocol) -> float:
        return self.packets.get(protocol, 0) / self.total_packets \
            if self.total_packets else 0.0

    def session_share(self, protocol: Protocol) -> float:
        return self.sessions.get(protocol, 0) / self.total_sessions \
            if self.total_sessions else 0.0

    def source_share(self, protocol: Protocol) -> float:
        return self.sources.get(protocol, 0) / self.total_sources \
            if self.total_sources else 0.0


def protocol_stats(packets: list[Packet],
                   sessions: list[Session]) -> ProtocolStats:
    """Compute the Table 2 statistics.

    Session/source shares may exceed 100% in total because multi-protocol
    scanners count once per protocol, as in the paper.
    """
    if not packets:
        raise AnalysisError("no packets")
    packet_counts: dict[Protocol, int] = Counter()
    for p in packets:
        packet_counts[p.protocol] += 1
    session_counts: dict[Protocol, int] = Counter()
    source_sets: dict[Protocol, set[int]] = {}
    all_sources: set[int] = set()
    for session in sessions:
        protocols = session.protocols()
        for protocol in protocols:
            session_counts[protocol] += 1
            source_sets.setdefault(protocol, set()).add(session.source)
        all_sources.add(session.source)
    return ProtocolStats(
        packets=dict(packet_counts),
        sessions=dict(session_counts),
        sources={k: len(v) for k, v in source_sets.items()},
        total_packets=len(packets),
        total_sessions=len(sessions),
        total_sources=len(all_sources))


def bucket_port(protocol: Protocol, port: int) -> int:
    """Collapse UDP traceroute ports into one bucket (Table 4 footnote)."""
    if protocol is Protocol.UDP and is_traceroute_port(port):
        return TRACEROUTE_BUCKET
    return port


def top_ports(sessions: list[Session], protocol: Protocol,
              n: int = 5) -> list[tuple[int, int, float]]:
    """Top destination ports by session count (Table 4).

    Each port counts once per session in which it occurs. Returns
    ``(port, session_count, share_of_protocol_sessions)``; the traceroute
    range appears as :data:`TRACEROUTE_BUCKET`.
    """
    port_sessions: Counter = Counter()
    protocol_sessions = 0
    for session in sessions:
        ports = {bucket_port(protocol, p.dst_port)
                 for p in session.packets if p.protocol is protocol}
        if not ports:
            continue
        protocol_sessions += 1
        for port in ports:
            port_sessions[port] += 1
    if protocol_sessions == 0:
        return []
    return [(port, count, count / protocol_sessions)
            for port, count in port_sessions.most_common(n)]


def distinct_ports(sessions: list[Session], protocol: Protocol) -> int:
    """Number of distinct ports hit at least once (traceroute bucketed)."""
    seen: set[int] = set()
    for session in sessions:
        for p in session.packets:
            if p.protocol is protocol:
                seen.add(bucket_port(protocol, p.dst_port))
    return len(seen)
