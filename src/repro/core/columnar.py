"""Columnar packet engine: structure-of-arrays storage + vectorized paths.

The object pipeline walks one Python :class:`~repro.telescope.packet.Packet`
per captured probe, which caps tractable corpora around 1e6 packets. The
paper's dataset is 51M packets, so the shared hot paths (sessionization,
source aggregation, phase slicing) run here against a
:class:`PacketTable` — per-telescope NumPy columns for arrival time, the
two 64-bit halves of the source/destination addresses, protocol, port,
origin ASN and an interned payload id.

Key equivalences with the object path (checked by the differential tests
in ``tests/test_core_columnar.py``):

- source aggregation (§3.3) is a shift on the ``src_hi`` column —
  ``/64`` keys are ``src_hi`` itself, ``/48`` keys are ``src_hi >> 16``;
- sessionization is one stable ``lexsort`` by (source key, time) plus a
  boundary scan ``(gap >= timeout) | (key changed)`` — identical cuts to
  the per-source Python loop in :func:`repro.core.sessions.sessionize`;
- phase slicing is a ``searchsorted`` on the time-sorted table.

:class:`Session` objects produced here carry a :class:`PacketSlice` — a
lazy sequence that materializes ``Packet`` objects only when a downstream
classifier actually touches them, reusing the corpus' existing objects
when the table was built from one.
"""

from __future__ import annotations

import gc
from typing import Iterator, Sequence

import numpy as np

from repro import obs
from repro.core.aggregation import AggregationLevel
from repro.core.sessions import DEFAULT_TIMEOUT, Session, SessionSet
from repro.errors import AnalysisError
from repro.telescope.packet import Packet, Protocol

_MASK64 = (1 << 64) - 1

#: ``payload_id`` value for packets without a payload.
NO_PAYLOAD = -1


class PacketTable:
    """Structure-of-arrays packet store for one telescope.

    All columns have equal length; row ``i`` is one captured packet.
    Payload bytes are interned: ``payload_id[i]`` indexes into
    :attr:`payloads` (or is :data:`NO_PAYLOAD`), so identical probe
    payloads are stored once.
    """

    __slots__ = ("time", "src_hi", "src_lo", "dst_hi", "dst_lo",
                 "protocol", "dst_port", "src_asn", "scanner_id",
                 "payload_id", "payloads", "_objects", "_time_sorted")

    def __init__(self, time: np.ndarray, src_hi: np.ndarray,
                 src_lo: np.ndarray, dst_hi: np.ndarray,
                 dst_lo: np.ndarray, protocol: np.ndarray,
                 dst_port: np.ndarray, src_asn: np.ndarray,
                 scanner_id: np.ndarray, payload_id: np.ndarray,
                 payloads: list[bytes],
                 objects: list[Packet] | None = None) -> None:
        n = len(time)
        for name, column in (("src_hi", src_hi), ("src_lo", src_lo),
                             ("dst_hi", dst_hi), ("dst_lo", dst_lo),
                             ("protocol", protocol), ("dst_port", dst_port),
                             ("src_asn", src_asn),
                             ("scanner_id", scanner_id),
                             ("payload_id", payload_id)):
            if len(column) != n:
                raise AnalysisError(
                    f"column {name} has {len(column)} rows, expected {n}")
        if objects is not None and len(objects) != n:
            raise AnalysisError(
                f"object backing has {len(objects)} rows, expected {n}")
        self.time = time
        self.src_hi = src_hi
        self.src_lo = src_lo
        self.dst_hi = dst_hi
        self.dst_lo = dst_lo
        self.protocol = protocol
        self.dst_port = dst_port
        self.src_asn = src_asn
        self.scanner_id = scanner_id
        self.payload_id = payload_id
        self.payloads = payloads
        self._objects = objects
        self._time_sorted: bool | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "PacketTable":
        u64 = np.empty(0, dtype=np.uint64)
        return cls(time=np.empty(0, dtype=np.float64),
                   src_hi=u64, src_lo=u64.copy(),
                   dst_hi=u64.copy(), dst_lo=u64.copy(),
                   protocol=np.empty(0, dtype=np.uint8),
                   dst_port=np.empty(0, dtype=np.uint16),
                   src_asn=np.empty(0, dtype=np.uint32),
                   scanner_id=np.empty(0, dtype=np.int64),
                   payload_id=np.empty(0, dtype=np.int64),
                   payloads=[], objects=[])

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketTable":
        """Build the columns in one pass over a packet sequence."""
        n = len(packets)
        time = np.empty(n, dtype=np.float64)
        src_hi = np.empty(n, dtype=np.uint64)
        src_lo = np.empty(n, dtype=np.uint64)
        dst_hi = np.empty(n, dtype=np.uint64)
        dst_lo = np.empty(n, dtype=np.uint64)
        protocol = np.empty(n, dtype=np.uint8)
        dst_port = np.empty(n, dtype=np.uint16)
        src_asn = np.empty(n, dtype=np.uint32)
        scanner_id = np.empty(n, dtype=np.int64)
        payload_id = np.full(n, NO_PAYLOAD, dtype=np.int64)
        payloads: list[bytes] = []
        interned: dict[bytes, int] = {}
        for i, p in enumerate(packets):
            time[i] = p.time
            src = p.src
            src_hi[i] = src >> 64
            src_lo[i] = src & _MASK64
            dst = p.dst
            dst_hi[i] = dst >> 64
            dst_lo[i] = dst & _MASK64
            protocol[i] = int(p.protocol)
            dst_port[i] = p.dst_port
            src_asn[i] = p.src_asn
            scanner_id[i] = p.scanner_id
            if p.payload:
                pid = interned.get(p.payload)
                if pid is None:
                    pid = len(payloads)
                    interned[p.payload] = pid
                    payloads.append(p.payload)
                payload_id[i] = pid
        return cls(time=time, src_hi=src_hi, src_lo=src_lo, dst_hi=dst_hi,
                   dst_lo=dst_lo, protocol=protocol, dst_port=dst_port,
                   src_asn=src_asn, scanner_id=scanner_id,
                   payload_id=payload_id, payloads=payloads,
                   objects=packets if isinstance(packets, list)
                   else list(packets))

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.time)

    # -- row materialization ----------------------------------------------

    def packet(self, i: int) -> Packet:
        """The ``Packet`` object for row ``i`` (reused if available)."""
        if self._objects is not None:
            return self._objects[i]
        return self._build_packet(i)

    def to_packets(self) -> list[Packet]:
        """Materialize (and cache) all rows as ``Packet`` objects."""
        if self._objects is None:
            self._objects = [self._build_packet(i) for i in range(len(self))]
        return self._objects

    def _build_packet(self, i: int) -> Packet:
        pid = int(self.payload_id[i])
        return Packet(
            time=float(self.time[i]),
            src=(int(self.src_hi[i]) << 64) | int(self.src_lo[i]),
            dst=(int(self.dst_hi[i]) << 64) | int(self.dst_lo[i]),
            protocol=Protocol(int(self.protocol[i])),
            dst_port=int(self.dst_port[i]),
            payload=self.payloads[pid] if pid != NO_PAYLOAD else None,
            src_asn=int(self.src_asn[i]),
            scanner_id=int(self.scanner_id[i]))

    # -- time ordering and phase slicing ----------------------------------

    @property
    def is_time_sorted(self) -> bool:
        if self._time_sorted is None:
            t = self.time
            self._time_sorted = bool(len(t) < 2 or np.all(t[1:] >= t[:-1]))
        return self._time_sorted

    def time_sorted(self) -> "PacketTable":
        """This table, stably reordered by arrival time if necessary."""
        if self.is_time_sorted:
            return self
        order = np.argsort(self.time, kind="stable")
        return self.take(order)

    def take(self, indices: np.ndarray) -> "PacketTable":
        """A new table holding the given rows, in the given order."""
        objects = None
        if self._objects is not None:
            objects = [self._objects[i] for i in indices.tolist()]
        return PacketTable(
            time=self.time[indices], src_hi=self.src_hi[indices],
            src_lo=self.src_lo[indices], dst_hi=self.dst_hi[indices],
            dst_lo=self.dst_lo[indices], protocol=self.protocol[indices],
            dst_port=self.dst_port[indices], src_asn=self.src_asn[indices],
            scanner_id=self.scanner_id[indices],
            payload_id=self.payload_id[indices],
            payloads=self.payloads, objects=objects)

    def slice_time(self, start: float, end: float) -> "PacketTable":
        """Rows with ``start <= time < end`` (table must be time-sorted)."""
        if not self.is_time_sorted:
            raise AnalysisError("slice_time requires a time-sorted table")
        with obs.span("columnar.phase_slice", packets=len(self),
                      start=start, end=end) as sp:
            lo = int(np.searchsorted(self.time, start, side="left"))
            hi = int(np.searchsorted(self.time, end, side="left"))
            sp.set(rows=hi - lo)
            return self._row_slice(lo, hi)

    def _row_slice(self, lo: int, hi: int) -> "PacketTable":
        objects = self._objects[lo:hi] if self._objects is not None else None
        table = PacketTable(
            time=self.time[lo:hi], src_hi=self.src_hi[lo:hi],
            src_lo=self.src_lo[lo:hi], dst_hi=self.dst_hi[lo:hi],
            dst_lo=self.dst_lo[lo:hi], protocol=self.protocol[lo:hi],
            dst_port=self.dst_port[lo:hi], src_asn=self.src_asn[lo:hi],
            scanner_id=self.scanner_id[lo:hi],
            payload_id=self.payload_id[lo:hi],
            payloads=self.payloads, objects=objects)
        table._time_sorted = self._time_sorted
        return table

    # -- vectorized source aggregation ------------------------------------

    def source_key_columns(self, level: AggregationLevel) \
            -> tuple[np.ndarray | None, np.ndarray]:
        """(hi, lo) key columns; ``hi`` is None when one column suffices.

        Keys mirror :func:`repro.core.aggregation.source_key`: the address
        right-shifted to the aggregation boundary.
        """
        if level is AggregationLevel.ADDR:
            return self.src_hi, self.src_lo
        if level is AggregationLevel.SUBNET:
            return None, self.src_hi
        if level is AggregationLevel.PREFIX:
            return None, self.src_hi >> np.uint64(16)
        raise AnalysisError(f"unsupported aggregation level {level!r}")

    def distinct_sources(self, level: AggregationLevel) -> set[int]:
        """Aggregated source keys present in the table."""
        with obs.span("columnar.aggregate", level=level.name,
                      packets=len(self)) as sp:
            key_hi, key_lo = self.source_key_columns(level)
            if key_hi is None:
                sources = set(np.unique(key_lo).tolist())
            else:
                pairs = np.unique(
                    np.stack((key_hi, key_lo), axis=1), axis=0)
                sources = {(int(hi) << 64) | int(lo)
                           for hi, lo in pairs.tolist()}
            sp.set(sources=len(sources))
            return sources

    def unique_source_addresses(self) -> set[int]:
        """Distinct 128-bit source addresses (no object materialization)."""
        return self.distinct_sources(AggregationLevel.ADDR)

    # -- persistence helpers ----------------------------------------------

    def payload_blob(self) -> tuple[np.ndarray, np.ndarray]:
        """(offsets, blob) in the per-packet concatenated store layout."""
        n = len(self)
        offsets = np.zeros(n + 1, dtype=np.int64)
        chunks: list[bytes] = []
        total = 0
        ids = self.payload_id.tolist()
        for i, pid in enumerate(ids):
            if pid != NO_PAYLOAD:
                payload = self.payloads[pid]
                chunks.append(payload)
                total += len(payload)
            offsets[i + 1] = total
        blob = np.frombuffer(b"".join(chunks), dtype=np.uint8) \
            if chunks else np.empty(0, dtype=np.uint8)
        return offsets, blob

    @classmethod
    def from_blob_arrays(cls, time, src_hi, src_lo, dst_hi, dst_lo,
                         protocol, dst_port, src_asn, scanner_id,
                         payload_offsets, payload_blob) -> "PacketTable":
        """Build a table from the store's per-packet blob layout."""
        n = len(time)
        payload_id = np.full(n, NO_PAYLOAD, dtype=np.int64)
        payloads: list[bytes] = []
        interned: dict[bytes, int] = {}
        lengths = np.diff(payload_offsets)
        blob = payload_blob.tobytes()
        for i in np.flatnonzero(lengths > 0).tolist():
            payload = blob[int(payload_offsets[i]):
                           int(payload_offsets[i + 1])]
            pid = interned.get(payload)
            if pid is None:
                pid = len(payloads)
                interned[payload] = pid
                payloads.append(payload)
            payload_id[i] = pid
        return cls(time=np.asarray(time, dtype=np.float64),
                   src_hi=np.asarray(src_hi, dtype=np.uint64),
                   src_lo=np.asarray(src_lo, dtype=np.uint64),
                   dst_hi=np.asarray(dst_hi, dtype=np.uint64),
                   dst_lo=np.asarray(dst_lo, dtype=np.uint64),
                   protocol=np.asarray(protocol, dtype=np.uint8),
                   dst_port=np.asarray(dst_port, dtype=np.uint16),
                   src_asn=np.asarray(src_asn, dtype=np.uint32),
                   scanner_id=np.asarray(scanner_id, dtype=np.int64),
                   payload_id=payload_id, payloads=payloads)


#: Column names of one packet batch, in canonical order.
BATCH_COLUMNS = ("time", "src_hi", "src_lo", "dst_hi", "dst_lo",
                 "protocol", "dst_port", "src_asn", "scanner_id")

_BATCH_DTYPES = (np.float64, np.uint64, np.uint64, np.uint64, np.uint64,
                 np.uint8, np.uint16, np.uint32, np.int64)


class PacketTableBuilder:
    """Append-only columnar accumulator behind the batch emission path.

    Batches land in capacity-doubling buffers, so appending a session's
    packet train costs a handful of vectorized copies and no Python
    ``Packet`` objects. Payload bytes are interned on arrival; a batch
    passes its payloads as a local side list plus per-row local ids and
    the builder remaps them into the shared pool.

    :meth:`snapshot` exposes the current contents as a
    :class:`PacketTable` of zero-copy views; later appends grow into
    fresh buffers and never mutate rows a snapshot already exposed.
    """

    __slots__ = ("_columns", "_payload_id", "_n", "_capacity",
                 "payloads", "_interned")

    def __init__(self) -> None:
        self._columns: list[np.ndarray] | None = None
        self._payload_id: np.ndarray | None = None
        self._n = 0
        self._capacity = 0
        self.payloads: list[bytes] = []
        self._interned: dict[bytes, int] = {}

    def __len__(self) -> int:
        return self._n

    def _grow(self, needed: int) -> None:
        capacity = max(1024, self._capacity * 2, self._n + needed)
        grown = [np.empty(capacity, dtype=dtype) for dtype in _BATCH_DTYPES]
        payload_id = np.full(capacity, NO_PAYLOAD, dtype=np.int64)
        if self._columns is not None:
            for old, new in zip(self._columns, grown):
                new[:self._n] = old[:self._n]
            payload_id[:self._n] = self._payload_id[:self._n]
        self._columns = grown
        self._payload_id = payload_id
        self._capacity = capacity

    def append(self, time, src_hi, src_lo, dst_hi, dst_lo, protocol,
               dst_port, src_asn, scanner_id,
               payload_id: np.ndarray | None = None,
               payloads: list[bytes] | None = None) -> int:
        """Append one batch of equal-length columns; returns its size."""
        n = len(time)
        if n == 0:
            return 0
        if self._n + n > self._capacity:
            self._grow(n)
        lo, hi = self._n, self._n + n
        for column, batch in zip(self._columns,
                                 (time, src_hi, src_lo, dst_hi, dst_lo,
                                  protocol, dst_port, src_asn, scanner_id)):
            column[lo:hi] = batch
        if payload_id is None or payloads is None:
            self._payload_id[lo:hi] = NO_PAYLOAD
        else:
            remap = np.empty(len(payloads) + 1, dtype=np.int64)
            remap[0] = NO_PAYLOAD
            for local, payload in enumerate(payloads):
                shared = self._interned.get(payload)
                if shared is None:
                    shared = len(self.payloads)
                    self._interned[payload] = shared
                    self.payloads.append(payload)
                remap[local + 1] = shared
            # local ids are 0..len-1 or NO_PAYLOAD (-1); shift by one so a
            # single fancy-index resolves both cases
            self._payload_id[lo:hi] = remap[payload_id + 1]
        self._n = hi
        return n

    def snapshot(self) -> PacketTable:
        """Zero-copy :class:`PacketTable` view of the rows appended so far."""
        if self._columns is None:
            return PacketTable.empty()
        n = self._n
        cols = [column[:n] for column in self._columns]
        return PacketTable(
            time=cols[0], src_hi=cols[1], src_lo=cols[2], dst_hi=cols[3],
            dst_lo=cols[4], protocol=cols[5], dst_port=cols[6],
            src_asn=cols[7], scanner_id=cols[8],
            payload_id=self._payload_id[:n], payloads=self.payloads)


class TableChunk:
    """One lazily-loadable row range of a :class:`ChunkedPacketTable`.

    Carries the row count and the ``[t_min, t_max]`` time footprint from
    the chunk manifest so callers can reason about the chunk — decide
    whether a query touches it, sum row counts — without loading a byte.
    ``loader`` produces the chunk's :class:`PacketTable` on first touch
    (the store's loader verifies the chunk's sha256 there and may
    quarantine it, returning an empty table); the result is cached so a
    chunk is opened at most once per process.
    """

    __slots__ = ("rows", "t_min", "t_max", "nbytes", "_loader", "_table")

    def __init__(self, rows: int, t_min: float, t_max: float, loader,
                 nbytes: int = 0,
                 table: PacketTable | None = None) -> None:
        self.rows = rows
        self.t_min = t_min
        self.t_max = t_max
        self.nbytes = nbytes
        self._loader = loader
        self._table = table

    @classmethod
    def from_table(cls, table: PacketTable) -> "TableChunk":
        """An already-materialized chunk (used by the shard merge)."""
        n = len(table)
        t_min = float(table.time[0]) if n else 0.0
        t_max = float(table.time[-1]) if n else 0.0
        return cls(rows=n, t_min=t_min, t_max=t_max, loader=None,
                   table=table)

    @property
    def loaded(self) -> bool:
        return self._table is not None

    def load(self) -> PacketTable:
        if self._table is None:
            self._table = self._loader()
            if len(self._table) != self.rows:
                # quarantined (or otherwise degraded) chunk: advertise
                # the real row count from now on
                self.rows = len(self._table)
        return self._table


class ChunkedPacketTable:
    """Lazy, time-partitioned packet table over out-of-core chunks.

    The v2 corpus store (DESIGN §9) and the shard-merge path hand
    analyses one of these instead of a fully materialized
    :class:`PacketTable`. Chunks partition the row range of a
    time-sorted table, so:

    - ``len`` and the time footprint come from the manifest — no I/O;
    - :meth:`slice_time` is *predicate pushdown*: only the chunks whose
      ``[t_min, t_max]`` footprint intersects the query range are
      opened, verified, and concatenated — sibling chunks are never
      touched;
    - every other ``PacketTable`` attribute delegates to
      :meth:`materialize`, which concatenates all chunks on first use
      (full-phase sessionization needs every row anyway).

    Bytes accounting (:attr:`bytes_total` / :meth:`bytes_opened`) feeds
    the ``store.*`` metrics and the out-of-core benchmark's
    touched-bytes criterion.
    """

    def __init__(self, chunks: Sequence[TableChunk]) -> None:
        self.chunks = list(chunks)
        self._materialized: PacketTable | None = None

    def __len__(self) -> int:
        return sum(chunk.rows for chunk in self.chunks)

    # -- time ordering and pushdown slicing --------------------------------

    @property
    def is_time_sorted(self) -> bool:
        """True by construction: chunks are written from a time-sorted
        table and partition its row range in order."""
        return True

    def time_sorted(self) -> "ChunkedPacketTable":
        return self

    def materialize(self) -> PacketTable:
        """The full table, concatenated from all chunks (cached)."""
        if self._materialized is None:
            with obs.span("columnar.materialize_chunks",
                          chunks=len(self.chunks)):
                self._materialized = concat_tables(
                    [chunk.load() for chunk in self.chunks])
            self._materialized._time_sorted = True
        return self._materialized

    def intersecting_chunks(self, start: float,
                            end: float) -> list[TableChunk]:
        """Chunks whose time footprint intersects ``[start, end)``."""
        return [chunk for chunk in self.chunks
                if chunk.rows and chunk.t_min < end and chunk.t_max >= start]

    def slice_time(self, start: float, end: float) -> PacketTable:
        """Rows with ``start <= time < end``, touching only the chunks
        that can contain them.

        Equivalent to ``materialize().slice_time(start, end)`` — chunks
        partition a time-sorted table, so slicing each intersecting
        chunk and concatenating the pieces yields the identical rows in
        the identical order — but chunks outside the range stay closed.
        """
        if self._materialized is not None:
            return self._materialized.slice_time(start, end)
        selected = self.intersecting_chunks(start, end)
        with obs.span("columnar.pushdown_slice", start=start, end=end,
                      chunks=len(selected), of=len(self.chunks)) as sp:
            parts = [chunk.load().slice_time(start, end)
                     for chunk in selected]
            table = concat_tables(parts)
            table._time_sorted = True
            sp.set(rows=len(table))
            return table

    # -- accounting --------------------------------------------------------

    @property
    def bytes_total(self) -> int:
        """On-disk bytes of all chunks (0 for in-memory chunk sources)."""
        return sum(chunk.nbytes for chunk in self.chunks)

    def bytes_opened(self) -> int:
        """On-disk bytes of the chunks that have actually been loaded."""
        return sum(chunk.nbytes for chunk in self.chunks if chunk.loaded)

    # -- PacketTable delegation --------------------------------------------

    def __getattr__(self, name: str):
        # any column or method not defined here comes from the fully
        # materialized table; this is what full-phase analyses hit
        return getattr(self.materialize(), name)

    def __repr__(self) -> str:
        opened = sum(1 for chunk in self.chunks if chunk.loaded)
        return (f"ChunkedPacketTable({len(self)} rows, "
                f"{opened}/{len(self.chunks)} chunks open)")


def iter_row_chunks(table: PacketTable,
                    chunk_rows: int) -> Iterator[PacketTable]:
    """Split a table into consecutive row-range views of ``chunk_rows``.

    Views share the parent's buffers (``_row_slice``), so splitting costs
    no copies; a time-sorted parent yields time-partitioned chunks.
    """
    if chunk_rows < 1:
        raise AnalysisError(f"chunk_rows must be >= 1, got {chunk_rows}")
    n = len(table)
    for lo in range(0, n, chunk_rows):
        yield table._row_slice(lo, min(lo + chunk_rows, n))


def concat_tables(tables: Sequence[PacketTable]) -> PacketTable:
    """Concatenate tables row-wise, re-interning payloads into one pool."""
    tables = [t for t in tables if len(t)]
    if not tables:
        return PacketTable.empty()
    if len(tables) == 1:
        return tables[0]
    payloads: list[bytes] = []
    interned: dict[bytes, int] = {}
    payload_ids = []
    for table in tables:
        remap = np.empty(len(table.payloads) + 1, dtype=np.int64)
        remap[0] = NO_PAYLOAD
        for local, payload in enumerate(table.payloads):
            shared = interned.get(payload)
            if shared is None:
                shared = len(payloads)
                interned[payload] = shared
                payloads.append(payload)
            remap[local + 1] = shared
        payload_ids.append(remap[table.payload_id + 1])
    return PacketTable(
        time=np.concatenate([t.time for t in tables]),
        src_hi=np.concatenate([t.src_hi for t in tables]),
        src_lo=np.concatenate([t.src_lo for t in tables]),
        dst_hi=np.concatenate([t.dst_hi for t in tables]),
        dst_lo=np.concatenate([t.dst_lo for t in tables]),
        protocol=np.concatenate([t.protocol for t in tables]),
        dst_port=np.concatenate([t.dst_port for t in tables]),
        src_asn=np.concatenate([t.src_asn for t in tables]),
        scanner_id=np.concatenate([t.scanner_id for t in tables]),
        payload_id=np.concatenate(payload_ids),
        payloads=payloads)


class PacketSlice:
    """Lazy, immutable sequence of table rows behaving like list[Packet].

    ``Session.packets`` points at one of these: length, truthiness and
    equality are cheap; iterating or indexing materializes ``Packet``
    objects (reusing the table's object backing when present). Rows are
    ``order[lo:hi]`` of a shared permutation array — the window is kept
    as two ints so creating millions of slices allocates no per-slice
    index arrays.
    """

    __slots__ = ("_table", "_order", "_lo", "_hi", "_cache")

    def __init__(self, table: PacketTable, rows: np.ndarray) -> None:
        self._table = table
        self._order = rows
        self._lo = 0
        self._hi = len(rows)
        self._cache: list[Packet] | None = None

    def __len__(self) -> int:
        return self._hi - self._lo

    def __bool__(self) -> bool:
        return self._hi > self._lo

    def _materialize(self) -> list[Packet]:
        if self._cache is None:
            table = self._table
            rows = self._order[self._lo:self._hi].tolist()
            objects = table._objects
            if objects is not None:
                self._cache = [objects[i] for i in rows]
            else:
                self._cache = [table.packet(i) for i in rows]
        return self._cache

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._materialize())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._materialize()[index]
        if self._cache is not None:
            return self._cache[index]
        n = self._hi - self._lo
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._table.packet(int(self._order[self._lo + index]))

    def __eq__(self, other) -> bool:
        if isinstance(other, PacketSlice):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"PacketSlice({len(self)} packets)"


def sessionize_table(table: PacketTable, telescope: str = "",
                     level: AggregationLevel = AggregationLevel.ADDR,
                     timeout: float = DEFAULT_TIMEOUT) -> SessionSet:
    """Vectorized :func:`repro.core.sessions.sessionize` over a table.

    Produces byte-identical session boundaries, source keys and ordering
    to the object path: one stable lexsort by (aggregated source, time)
    replaces the per-source dict + per-stream sort, and one boundary scan
    over adjacent rows replaces the per-packet gap loop.
    """
    if timeout <= 0:
        raise AnalysisError(f"session timeout must be > 0, got {timeout}")
    result = SessionSet(telescope=telescope, level=level, timeout=timeout)
    n = len(table)
    if n == 0:
        return result
    with obs.span("columnar.sessionize", telescope=telescope,
                  level=level.name, packets=n) as obs_span:
        _sessionize_into(result, table, telescope, level, timeout, n)
        obs_span.set(sessions=len(result.sessions))
    if obs.current() is not None:
        obs.add("columnar.packets_sessionized_total", n,
                telescope=telescope)
        obs.add("columnar.sessions_total", len(result.sessions),
                telescope=telescope)
    return result


def _sessionize_into(result: SessionSet, table: PacketTable, telescope: str,
                     level: AggregationLevel, timeout: float,
                     n: int) -> None:
    key_hi, key_lo = table.source_key_columns(level)
    if key_hi is None:
        order = np.lexsort((table.time, key_lo))
    else:
        order = np.lexsort((table.time, key_lo, key_hi))

    t = table.time[order]
    kl = key_lo[order]
    boundary = kl[1:] != kl[:-1]
    if key_hi is not None:
        kh = key_hi[order]
        boundary |= kh[1:] != kh[:-1]
    boundary |= (t[1:] - t[:-1]) >= timeout

    bounds = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.flatnonzero(boundary) + 1,
         np.full(1, n, dtype=np.int64)))
    firsts = bounds[:-1]
    # the object path emits sessions per ascending source then stably
    # re-sorts by start time; lexsort already yields (source, time) order,
    # so one stable argsort over the starts reproduces the final order
    session_order = np.argsort(t[firsts], kind="stable")

    firsts_sorted = firsts[session_order]
    lo_list = firsts_sorted.tolist()
    hi_list = bounds[1:][session_order].tolist()
    kl_firsts = kl[firsts_sorted].tolist()
    kh_firsts = kh[firsts_sorted].tolist() if key_hi is not None else None

    # sessions are built through __new__ + direct slot assignment: the
    # dataclass __init__/__post_init__ pair costs more than all the numpy
    # work above on large corpora, and every slice here is non-empty by
    # construction. Generational GC is paused around the bulk allocation —
    # every gen-0 pass it triggers would traverse the multi-million-object
    # corpus, which dominates the whole sessionization otherwise.
    sessions = result.sessions
    append = sessions.append
    new_session = Session.__new__
    new_slice = PacketSlice.__new__
    if kh_firsts is not None:
        sources = [(kh << 64) | kl
                   for kh, kl in zip(kh_firsts, kl_firsts)]
    else:
        sources = kl_firsts
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        for source, lo, hi in zip(sources, lo_list, hi_list):
            packets = new_slice(PacketSlice)
            packets._table = table
            packets._order = order
            packets._lo = lo
            packets._hi = hi
            packets._cache = None
            session = new_session(Session)
            session.source = source
            session.telescope = telescope
            session.packets = packets
            append(session)
    finally:
        if gc_was_enabled:
            gc.enable()
