"""Network-selection classification (§5.2).

For T1's split period, each scanner is classified per announcement cycle by
how its sessions distribute over the announced prefixes, then aggregated:

- **single-prefix** — only one announced prefix probed per cycle;
- **network-size independent** — prefixes of very different sizes receive
  roughly equal session counts (one DBSCAN cluster over the counts);
- **network-size dependent** — session counts grow with prefix size;
- **inconsistent** — the per-cycle verdicts disagree.

The per-cycle decision uses DBSCAN over the per-prefix session counts, as
in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bgp.controller import AnnouncementCycle
from repro.core.dbscan import NOISE, dbscan
from repro.core.sessions import Session
from repro.errors import ClassificationError
from repro.net.prefix import Prefix


class NetworkClass(enum.Enum):
    SINGLE_PREFIX = "single-prefix"
    SIZE_INDEPENDENT = "size-independent"
    SIZE_DEPENDENT = "size-dependent"
    INCONSISTENT = "inconsistent"


@dataclass(frozen=True, slots=True)
class CycleVerdict:
    """Per-cycle classification of one scanner."""

    cycle_index: int
    network_class: NetworkClass
    sessions: int


def sessions_per_prefix(sessions: list[Session],
                        cycle: AnnouncementCycle) -> dict[Prefix, int]:
    """Count, per announced prefix, the sessions that touched it.

    A session counts for a prefix when at least one of its packets targets
    an address inside that prefix (most-specific match).
    """
    counts: dict[Prefix, int] = {p: 0 for p in cycle.prefixes}
    ordered = sorted(cycle.prefixes, key=lambda p: -p.length)
    for session in sessions:
        if not (cycle.announce_time <= session.start < cycle.withdraw_time):
            continue
        touched: set[Prefix] = set()
        for dst in session.distinct_targets():
            for prefix in ordered:
                if prefix.contains_address(dst):
                    touched.add(prefix)
                    break
        for prefix in touched:
            counts[prefix] += 1
    return counts


def classify_cycle(counts: dict[Prefix, int],
                   eps_factor: float = 0.35,
                   dependence_ratio: float = 2.0) -> NetworkClass | None:
    """Classify one cycle from per-prefix session counts.

    Returns ``None`` when the scanner was inactive in the cycle. DBSCAN
    with a relative eps groups the nonzero counts; a single cluster
    covering (nearly) all announced prefixes means size-independent
    scanning, while counts that grow with prefix size mean size-dependent
    scanning.
    """
    total = sum(counts.values())
    if total == 0:
        return None
    active = {p: c for p, c in counts.items() if c > 0}
    if len(active) == 1:
        return NetworkClass.SINGLE_PREFIX
    # cluster the *nonzero* counts, as documented: one unprobed prefix
    # must not veto an otherwise perfectly even coverage
    values = np.array([active[p] for p in sorted(active)], dtype=float)
    mean = float(values.mean())
    labels = dbscan(values, eps=max(eps_factor * mean, 0.5), min_samples=2)
    proper = {label for label in labels if label != NOISE}
    one_cluster_all = (len(proper) == 1 and labels.count(NOISE) == 0
                       and len(active) >= 0.75 * len(counts))
    if one_cluster_all:
        return NetworkClass.SIZE_INDEPENDENT
    values = np.array([counts[p] for p in sorted(counts)], dtype=float)
    # correlation between prefix size (host bits) and session count
    sizes = np.array([128 - p.length for p in sorted(counts)], dtype=float)
    if np.std(sizes) > 0 and np.std(values) > 0:
        corr = float(np.corrcoef(sizes, values)[0, 1])
        big_mask = sizes >= np.median(sizes)
        if big_mask.any() and (~big_mask).any():
            big = float(values[big_mask].mean())
            small = float(values[~big_mask].mean())
            if corr > 0.5 and big >= dependence_ratio * max(small, 0.5):
                return NetworkClass.SIZE_DEPENDENT
    return NetworkClass.INCONSISTENT


#: Fraction of per-cycle verdicts that must agree for a stable class.
MAJORITY_SHARE = 0.7


def classify_scanner(sessions: list[Session],
                     cycles: list[AnnouncementCycle]) -> NetworkClass:
    """Aggregate per-cycle verdicts into the scanner's class.

    A scanner keeps a stable class when at least :data:`MAJORITY_SHARE`
    of its active cycles agree; otherwise it is inconsistent. (Requiring
    unanimity would misfile nearly every long-lived scanner over 16
    cycles, while the paper observed only 0.55% inconsistent scanners.)
    """
    if not cycles:
        raise ClassificationError("network classification needs cycles")
    verdicts: list[NetworkClass] = []
    for cycle in cycles:
        verdict = classify_cycle(sessions_per_prefix(sessions, cycle))
        if verdict is not None:
            verdicts.append(verdict)
    if not verdicts:
        raise ClassificationError("scanner has no sessions in any cycle")
    counts: dict[NetworkClass, int] = {}
    for verdict in verdicts:
        counts[verdict] = counts.get(verdict, 0) + 1
    top_class = max(counts, key=lambda cls: counts[cls])
    if counts[top_class] >= MAJORITY_SHARE * len(verdicts):
        return top_class
    return NetworkClass.INCONSISTENT


def classify_all(by_source: dict[int, list[Session]],
                 cycles: list[AnnouncementCycle]) \
        -> dict[int, NetworkClass]:
    """Network-selection class per source for the split period."""
    split_cycles = [c for c in cycles if c.index > 0]
    result: dict[int, NetworkClass] = {}
    for source, sessions in by_source.items():
        try:
            result[source] = classify_scanner(sessions, split_cycles)
        except ClassificationError:
            continue  # inactive during the split period
    return result
