"""NIST SP 800-22 randomness tests (the Appendix B subset).

The paper excludes tests needing >1000 bits or extra parameters, keeping
four: frequency (monobit), runs, discrete Fourier transform (spectral), and
cumulative sums (forward/backward). Each test maps a bit sequence to a
p-value in [0, 1]; p >= 0.01 is treated as "random" (significance
alpha = 0.01).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfc
from scipy.stats import norm

from repro.errors import AnalysisError

#: The paper's significance level.
ALPHA = 0.01

#: Minimum input length the paper's session filter guarantees (100 packets
#: of >= 64 bits each); individual tests have their own minima below.
MIN_BITS_FREQUENCY = 100
MIN_BITS_RUNS = 100
MIN_BITS_FFT = 100
MIN_BITS_CUSUM = 100


def bits_from_addresses(addresses, take_bits: int = 64,
                        skip_high: int = 0) -> np.ndarray:
    """Flatten address sections into a bit array.

    For each address, ``skip_high`` most-significant bits are discarded and
    the following ``take_bits`` bits are appended. Appendix B tests the IID
    (last 64 bits: ``skip_high=64, take_bits=64``) and the subnet section
    separately.
    """
    if take_bits < 1 or skip_high < 0 or take_bits + skip_high > 128:
        raise AnalysisError(
            f"invalid bit section take={take_bits} skip={skip_high}")
    n = len(addresses)
    if n == 0:
        return np.empty(0, dtype=np.int8)
    # one 16-byte big-endian blob per section, then a single unpackbits —
    # replaces the former per-bit Python loop (``take_bits`` iterations
    # per address) with two int ops per address plus vectorized bit work
    shift = 128 - skip_high - take_bits
    mask = (1 << take_bits) - 1
    raw = b"".join(((addr >> shift) & mask).to_bytes(16, "big")
                   for addr in addresses)
    sections = np.frombuffer(raw, dtype=np.uint8).reshape(n, 16)
    bits = np.unpackbits(sections, axis=1)  # (n, 128), MSB first
    return bits[:, 128 - take_bits:].ravel().astype(np.int8)


def frequency_test(bits: np.ndarray) -> float:
    """Monobit frequency test: balance of ones and zeros."""
    n = len(bits)
    if n < MIN_BITS_FREQUENCY:
        raise AnalysisError(f"frequency test needs >= {MIN_BITS_FREQUENCY} "
                            f"bits, got {n}")
    s = np.sum(2 * bits.astype(np.int64) - 1)
    s_obs = abs(int(s)) / math.sqrt(n)
    return float(erfc(s_obs / math.sqrt(2)))


def runs_test(bits: np.ndarray) -> float:
    """Runs test: oscillation rate between zeros and ones.

    Per SP 800-22 the test presupposes the frequency test passes; when the
    ones-proportion precondition fails the p-value is 0.0.
    """
    n = len(bits)
    if n < MIN_BITS_RUNS:
        raise AnalysisError(f"runs test needs >= {MIN_BITS_RUNS} bits")
    pi = float(np.mean(bits))
    tau = 2.0 / math.sqrt(n)
    if abs(pi - 0.5) >= tau:
        return 0.0
    v_obs = 1 + int(np.sum(bits[1:] != bits[:-1]))
    denom = 2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi)
    if denom == 0:
        return 0.0
    return float(erfc(abs(v_obs - 2.0 * n * pi * (1.0 - pi)) / denom))


def fft_test(bits: np.ndarray) -> float:
    """Discrete Fourier transform (spectral) test: periodic features."""
    n = len(bits)
    if n < MIN_BITS_FFT:
        raise AnalysisError(f"FFT test needs >= {MIN_BITS_FFT} bits")
    x = 2 * bits.astype(np.float64) - 1
    spectrum = np.abs(np.fft.fft(x))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = float(np.sum(spectrum < threshold))
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    return float(erfc(abs(d) / math.sqrt(2)))


def cusum_test(bits: np.ndarray, forward: bool = True) -> float:
    """Cumulative sums test (cusum0 forward / cusum1 backward)."""
    n = len(bits)
    if n < MIN_BITS_CUSUM:
        raise AnalysisError(f"cusum test needs >= {MIN_BITS_CUSUM} bits")
    x = 2 * bits.astype(np.int64) - 1
    if not forward:
        x = x[::-1]
    z = int(np.max(np.abs(np.cumsum(x))))
    if z == 0:
        return 0.0
    sqrt_n = math.sqrt(n)
    total = 0.0
    for k in range((-n // z + 1) // 4, (n // z - 1) // 4 + 1):
        total += (norm.cdf((4 * k + 1) * z / sqrt_n)
                  - norm.cdf((4 * k - 1) * z / sqrt_n))
    for k in range((-n // z - 3) // 4, (n // z - 1) // 4 + 1):
        total -= (norm.cdf((4 * k + 3) * z / sqrt_n)
                  - norm.cdf((4 * k + 1) * z / sqrt_n))
    p = 1.0 - total
    return float(min(max(p, 0.0), 1.0))


@dataclass(frozen=True, slots=True)
class NistResults:
    """p-values of the Appendix B test battery for one bit sequence."""

    frequency: float
    runs: float
    fft: float
    cusum_forward: float
    cusum_backward: float

    def passes(self, alpha: float = ALPHA) -> dict[str, bool]:
        return {
            "frequency": self.frequency >= alpha,
            "runs": self.runs >= alpha,
            "fft": self.fft >= alpha,
            "cusum0": self.cusum_forward >= alpha,
            "cusum1": self.cusum_backward >= alpha,
        }

    def is_random(self, alpha: float = ALPHA) -> bool:
        """Paper criterion: the frequency test decides randomness (§5.3)."""
        return self.frequency >= alpha


def run_battery(bits: np.ndarray) -> NistResults:
    """Run all Appendix B tests on one bit sequence."""
    return NistResults(
        frequency=frequency_test(bits),
        runs=runs_test(bits),
        fft=fft_test(bits),
        cusum_forward=cusum_test(bits, forward=True),
        cusum_backward=cusum_test(bits, forward=False),
    )
