"""Scan sessions (§3.3).

A scan session is a sequence of consecutive packets from a single source in
which the inter-arrival time between subsequent packets stays below a
timeout T. Following Richter et al. and Zhao et al., the paper uses
T = 1 hour; no minimum packet or target count is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.aggregation import AggregationLevel, source_key
from repro.errors import AnalysisError
from repro.sim.clock import HOUR
from repro.telescope.packet import Packet, Protocol

#: The paper's session timeout.
DEFAULT_TIMEOUT = HOUR


@dataclass(slots=True)
class Session:
    """One scan session of one (aggregated) source at one telescope."""

    source: int
    telescope: str
    packets: list[Packet]

    def __post_init__(self) -> None:
        if not self.packets:
            raise AnalysisError("a session needs at least one packet")

    @property
    def start(self) -> float:
        return self.packets[0].time

    @property
    def end(self) -> float:
        return self.packets[-1].time

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.packets)

    def protocols(self) -> set[Protocol]:
        return {p.protocol for p in self.packets}

    def dst_ports(self, protocol: Protocol | None = None) -> set[int]:
        return {p.dst_port for p in self.packets
                if protocol is None or p.protocol is protocol}

    def targets(self) -> list[int]:
        return [p.dst for p in self.packets]

    def distinct_targets(self) -> set[int]:
        return {p.dst for p in self.packets}


@dataclass
class SessionSet:
    """All sessions of one telescope at one aggregation level."""

    telescope: str
    level: AggregationLevel
    timeout: float
    sessions: list[Session] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    def sources(self) -> set[int]:
        return {s.source for s in self.sessions}

    def by_source(self) -> dict[int, list[Session]]:
        grouped: dict[int, list[Session]] = {}
        for session in self.sessions:
            grouped.setdefault(session.source, []).append(session)
        for sessions in grouped.values():
            sessions.sort(key=lambda s: s.start)
        return grouped

    def total_packets(self) -> int:
        return sum(len(s) for s in self.sessions)


def sessionize(packets: Iterable[Packet], telescope: str = "",
               level: AggregationLevel = AggregationLevel.ADDR,
               timeout: float = DEFAULT_TIMEOUT) -> SessionSet:
    """Group packets into scan sessions.

    Packets are grouped per aggregated source, ordered by arrival, and cut
    whenever the gap to the previous packet reaches ``timeout``.
    """
    if timeout <= 0:
        raise AnalysisError(f"session timeout must be > 0, got {timeout}")
    per_source: dict[int, list[Packet]] = {}
    for packet in packets:
        per_source.setdefault(source_key(packet.src, level),
                              []).append(packet)
    result = SessionSet(telescope=telescope, level=level, timeout=timeout)
    for source in sorted(per_source):
        stream = per_source[source]
        # captures append in arrival order, so streams are usually already
        # time-sorted; only pay for the sort when a pair is out of order
        if any(b.time < a.time for a, b in zip(stream, stream[1:])):
            stream.sort(key=lambda p: p.time)
        current: list[Packet] = [stream[0]]
        for packet in stream[1:]:
            if packet.time - current[-1].time >= timeout:
                result.sessions.append(Session(
                    source=source, telescope=telescope, packets=current))
                current = [packet]
            else:
                current.append(packet)
        result.sessions.append(Session(
            source=source, telescope=telescope, packets=current))
    result.sessions.sort(key=lambda s: s.start)
    return result
