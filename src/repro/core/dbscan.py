"""DBSCAN density-based clustering.

The paper uses DBSCAN twice: to classify network-selection behavior (§5.2)
and to cluster probe payloads (§5.4). sklearn is unavailable offline, so
this is a from-scratch implementation over a caller-supplied metric, with a
fast Euclidean path for numeric data.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import AnalysisError

#: Label assigned to noise points.
NOISE = -1

#: Up to this many points the Euclidean path precomputes the full pairwise
#: distance matrix (n^2 floats; 2048^2 ~ 32 MiB) so each neighborhood
#: query is a row slice instead of an O(n) re-scan per expanded point.
PAIRWISE_LIMIT = 2048


def dbscan(points: Sequence, eps: float, min_samples: int,
           metric: Callable[[object, object], float] | None = None) \
        -> list[int]:
    """Cluster ``points``; returns one label per point (-1 = noise).

    With ``metric=None`` points must be numeric vectors (or scalars) and
    Euclidean distance is used via a vectorized neighborhood query;
    otherwise ``metric`` is called pairwise.
    """
    n = len(points)
    if n == 0:
        return []
    if eps <= 0:
        raise AnalysisError(f"eps must be > 0, got {eps}")
    if min_samples < 1:
        raise AnalysisError(f"min_samples must be >= 1, got {min_samples}")

    if metric is None:
        data = np.asarray(points, dtype=float)
        if data.ndim == 1:
            data = data[:, None]
        if n <= PAIRWISE_LIMIT:
            # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, computed once for all
            # pairs; comparing squared distances avoids the sqrt entirely
            sq = (data ** 2).sum(axis=1)
            d2 = sq[:, None] + sq[None, :] - 2.0 * (data @ data.T)
            adjacency = d2 <= eps * eps + 1e-12

            def neighbors_of(i: int) -> list[int]:
                return list(np.nonzero(adjacency[i])[0])
        else:
            def neighbors_of(i: int) -> list[int]:
                dist = ((data - data[i]) ** 2).sum(axis=1)
                return list(np.nonzero(dist <= eps * eps)[0])
    else:
        def neighbors_of(i: int) -> list[int]:
            return [j for j in range(n)
                    if metric(points[i], points[j]) <= eps]

    labels = [None] * n  # type: list[int | None]
    cluster = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        neighborhood = neighbors_of(i)
        if len(neighborhood) < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        queue = [j for j in neighborhood if j != i]
        while queue:
            j = queue.pop()
            if labels[j] == NOISE:
                labels[j] = cluster  # border point
            if labels[j] is not None:
                continue
            labels[j] = cluster
            j_neighbors = neighbors_of(j)
            if len(j_neighbors) >= min_samples:
                # NOISE neighbors are density-reachable border points and
                # must be upgraded too, not only unvisited ones
                queue.extend(k for k in j_neighbors
                             if labels[k] is None or labels[k] == NOISE)
        cluster += 1
    return [NOISE if label is None else label for label in labels]


def cluster_sizes(labels: Sequence[int]) -> dict[int, int]:
    """Histogram of cluster labels (noise included under -1)."""
    sizes: dict[int, int] = {}
    for label in labels:
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def num_clusters(labels: Sequence[int]) -> int:
    """Number of proper clusters (noise excluded)."""
    return len({label for label in labels if label != NOISE})
