"""Payload clustering and scan-tool identification (§5.4).

Probe payloads are clustered with DBSCAN over their leading bytes; each
cluster is then labeled by matching against the known public-tool
signatures and by the sources' reverse-DNS entries. Clusters matching
nothing are labeled by payload characteristics ("random-bytes" etc.).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.dbscan import NOISE, dbscan
from repro.core.sessions import Session
from repro.dns.resolver import Resolver
from repro.scanners.tools import TOOL_SIGNATURES, ToolSignature

#: Leading bytes compared when clustering payloads.
PREFIX_BYTES = 8

#: Maximum differing leading bytes inside one cluster.
DEFAULT_EPS = 2.0

#: RDNS substrings mapped to tool/operator labels.
RDNS_HINTS = (
    ("atlas.ripe.net", "RIPEAtlasProbe"),
    ("caida.org", "CAIDA Ark"),
    ("6sense", "6Sense"),
    ("alphastrike", "AlphaStrike"),
)


def payload_prefix(payload: bytes) -> bytes:
    """Fixed-length leading-byte vector used as the clustering feature."""
    return payload[:PREFIX_BYTES].ljust(PREFIX_BYTES, b"\x00")


def _hamming(a: bytes, b: bytes) -> float:
    return float(sum(x != y for x, y in zip(a, b)))


@dataclass
class PayloadCluster:
    """One DBSCAN cluster of payloads with its attribution."""

    label: int
    size: int
    representative: bytes
    tool: ToolSignature | None = None
    rdns_label: str = ""
    category: str = "unknown"

    @property
    def name(self) -> str:
        if self.tool is not None:
            return self.tool.name
        if self.rdns_label:
            return self.rdns_label
        return self.category


@dataclass
class ToolReport:
    """Tool attribution for a set of sessions."""

    clusters: list[PayloadCluster] = field(default_factory=list)
    #: source -> tool/operator name
    source_tools: dict[int, str] = field(default_factory=dict)
    #: tool name -> (num sources, num sessions)
    per_tool: dict[str, tuple[int, int]] = field(default_factory=dict)


def cluster_payloads(payloads: list[bytes], eps: float = DEFAULT_EPS,
                     min_samples: int = 2) -> list[int]:
    """Cluster payloads by leading-byte distance; returns labels."""
    prefixes = [payload_prefix(p) for p in payloads]
    return dbscan(prefixes, eps=eps, min_samples=min_samples,
                  metric=_hamming)


def _match_tool(payload: bytes) -> ToolSignature | None:
    for signature in TOOL_SIGNATURES:
        if signature.matches(payload):
            return signature
    return None


def _rdns_label(name: str) -> str:
    lowered = name.lower()
    for needle, label in RDNS_HINTS:
        if needle in lowered:
            return label
    return ""


def identify_tools(sessions: list[Session],
                   resolver: Resolver | None = None,
                   eps: float = DEFAULT_EPS,
                   max_payloads_per_session: int = 3,
                   max_cluster_samples: int = 1500) -> ToolReport:
    """Run the full §5.4 pipeline over a session list.

    Per-source attribution scans every session's payloads (linear).
    DBSCAN clustering is quadratic in the sample count, so at most
    ``max_cluster_samples`` payload samples enter the clustering — which
    matches the paper's manual per-cluster analysis of representative
    payloads. A source's tool is the majority label over its payload
    samples, with RDNS hints as tie-breaker and fallback.
    """
    samples: list[bytes] = []
    votes: dict[int, Counter] = {}
    for session in sessions:
        taken = 0
        for packet in session.packets:
            if not packet.payload:
                continue
            tool = _match_tool(packet.payload)
            if tool is not None:
                votes.setdefault(session.source, Counter())[tool.name] += 1
            if len(samples) < max_cluster_samples:
                samples.append(packet.payload)
            taken += 1
            if taken >= max_payloads_per_session:
                break
    report = ToolReport()
    for source, counter in votes.items():
        report.source_tools[source] = counter.most_common(1)[0][0]
    if samples:
        labels = cluster_payloads(samples, eps=eps)
        by_label: dict[int, list[int]] = {}
        for i, label in enumerate(labels):
            by_label.setdefault(label, []).append(i)
        for label, members in sorted(by_label.items()):
            if label == NOISE:
                continue
            representative = samples[members[0]]
            tool = _match_tool(representative)
            category = "random-bytes" if tool is None else "tool"
            report.clusters.append(PayloadCluster(
                label=label, size=len(members),
                representative=payload_prefix(representative),
                tool=tool, category=category))

    # RDNS fallback/augmentation for sources without payload matches
    if resolver is not None:
        for session in sessions:
            if session.source in report.source_tools:
                continue
            name = resolver.reverse(session.source)
            if name:
                label = _rdns_label(name)
                if label:
                    report.source_tools[session.source] = label

    # per-tool source/session tallies
    session_tools: dict[int, str] = {}
    for index, session in enumerate(sessions):
        tool = report.source_tools.get(session.source)
        if tool:
            session_tools[index] = tool
    per_tool_sources: dict[str, set[int]] = {}
    per_tool_sessions: dict[str, int] = {}
    for source, tool in report.source_tools.items():
        per_tool_sources.setdefault(tool, set()).add(source)
    for index, tool in session_tools.items():
        per_tool_sessions[tool] = per_tool_sessions.get(tool, 0) + 1
    report.per_tool = {
        tool: (len(sources), per_tool_sessions.get(tool, 0))
        for tool, sources in per_tool_sources.items()}
    return report
