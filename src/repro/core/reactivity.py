"""BGP reactivity metrics (§7.1).

Quantifies how scanners react to announcement changes in T1:

- packets/sessions per most-specific announced prefix over time (Fig. 10),
- the split-/33 vs stable-/33 packet ratio (the +286% headline),
- per-cycle source/session growth (Fig. 11, +275% / +555%),
- live BGP monitors: sources first seen within minutes of an announcement,
- new-prefix discovery decay after an announcement (Fig. 3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.bgp.controller import AnnouncementCycle
from repro.core.sessions import Session
from repro.errors import AnalysisError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY
from repro.telescope.packet import Packet


def most_specific_for(dst: int, cycle: AnnouncementCycle) -> Prefix | None:
    """Most-specific prefix of a cycle covering ``dst``."""
    best: Prefix | None = None
    for prefix in cycle.prefixes:
        if prefix.contains_address(dst):
            if best is None or prefix.length > best.length:
                best = prefix
    return best


def packets_per_prefix(packets: list[Packet],
                       cycles: list[AnnouncementCycle]) \
        -> dict[Prefix, int]:
    """Packet counts attributed to the most-specific announced prefix."""
    counts: Counter = Counter()
    for cycle in cycles:
        for p in packets:
            if cycle.announce_time <= p.time < cycle.withdraw_time:
                prefix = most_specific_for(p.dst, cycle)
                if prefix is not None:
                    counts[prefix] += 1
    return dict(counts)


def sessions_per_prefix_cumulative(sessions: list[Session],
                                   cycles: list[AnnouncementCycle]) \
        -> dict[Prefix, list[int]]:
    """Per-prefix cumulative session counts per cycle (Fig. 10 series).

    A session counts for the most-specific prefix covering any of its
    targets during the cycle that contains its start.
    """
    per_cycle: dict[Prefix, Counter] = {}
    for cycle in cycles:
        for session in sessions:
            if not (cycle.announce_time <= session.start
                    < cycle.withdraw_time):
                continue
            touched: set[Prefix] = set()
            for dst in session.distinct_targets():
                prefix = most_specific_for(dst, cycle)
                if prefix is not None:
                    touched.add(prefix)
            for prefix in touched:
                per_cycle.setdefault(prefix, Counter())[cycle.index] += 1
    result: dict[Prefix, list[int]] = {}
    indices = [c.index for c in cycles]
    for prefix, counter in per_cycle.items():
        running = 0
        series = []
        for index in indices:
            running += counter.get(index, 0)
            series.append(running)
        result[prefix] = series
    return result


@dataclass(frozen=True, slots=True)
class SplitHalfComparison:
    """Packets into the iteratively split /33 vs the stable companion /33."""

    stable_packets: int
    split_packets: int

    @property
    def increase(self) -> float:
        """Relative increase of the split half (+2.86 == +286%)."""
        if self.stable_packets == 0:
            raise AnalysisError("no packets in the stable /33")
        return self.split_packets / self.stable_packets - 1.0


def split_half_comparison(packets: list[Packet], t1_prefix: Prefix,
                          cycles: list[AnnouncementCycle]) \
        -> SplitHalfComparison:
    """The +286% comparison: split /33 segment vs stable companion /33.

    Only split-period packets count; the stable companion is the half of
    the original /32 containing its low-byte address.
    """
    stable_half, split_half = t1_prefix.split()
    split_cycles = [c for c in cycles if c.index > 0]
    if not split_cycles:
        raise AnalysisError("no split cycles")
    start = split_cycles[0].announce_time
    end = split_cycles[-1].withdraw_time
    stable = split_count = 0
    for p in packets:
        if not start <= p.time < end:
            continue
        if stable_half.contains_address(p.dst):
            stable += 1
        elif split_half.contains_address(p.dst):
            split_count += 1
    return SplitHalfComparison(stable_packets=stable,
                               split_packets=split_count)


@dataclass(frozen=True, slots=True)
class CycleActivity:
    """Sources and sessions of one announcement cycle (Fig. 11 point)."""

    cycle_index: int
    sources: int
    sessions: int


def cycle_activity(sessions: list[Session],
                   cycles: list[AnnouncementCycle]) -> list[CycleActivity]:
    """Per-cycle distinct sources and session counts."""
    result = []
    for cycle in cycles:
        in_cycle = [s for s in sessions
                    if cycle.announce_time <= s.start < cycle.withdraw_time]
        result.append(CycleActivity(
            cycle_index=cycle.index,
            sources=len({s.source for s in in_cycle}),
            sessions=len(in_cycle)))
    return result


def growth_factor(activity: list[CycleActivity],
                  attr: str = "sources") -> float:
    """Average relative growth from the first to the last active cycle.

    Compares the mean of the last quarter of cycles against the first
    active cycle (+2.75 == +275%).
    """
    values = [getattr(a, attr) for a in activity if a.cycle_index > 0]
    values = [v for v in values if v > 0]
    if len(values) < 2:
        raise AnalysisError("not enough active cycles for a growth factor")
    baseline = values[0]
    tail = values[-max(1, len(values) // 4):]
    return sum(tail) / len(tail) / baseline - 1.0


def baseline_split_growth(sessions: list[Session],
                          cycles: list[AnnouncementCycle],
                          attr: str = "sources") -> float:
    """Average weekly activity in the split period vs the baseline.

    This is the §7.1 headline metric ("weekly increase in the average
    number of observed scan sources by 275% and 555% in ... sessions"):
    the average weekly count of distinct sources (or sessions) during the
    split period relative to the initial observation period.
    """
    if not cycles or cycles[0].index != 0:
        raise AnalysisError("need a schedule starting with the baseline")
    baseline = cycles[0]
    split = [c for c in cycles if c.index > 0]
    if not split:
        raise AnalysisError("no split cycles")

    def weekly_rate(start: float, end: float) -> float:
        weeks = max((end - start) / (7 * DAY), 1e-9)
        in_window = [s for s in sessions if start <= s.start < end]
        if attr == "sources":
            value = len({s.source for s in in_window})
        else:
            value = len(in_window)
        return value / weeks

    base_rate = weekly_rate(baseline.announce_time, baseline.withdraw_time)
    split_rates = [weekly_rate(c.announce_time, c.withdraw_time)
                   for c in split]
    if base_rate <= 0:
        raise AnalysisError("no baseline activity")
    return sum(split_rates) / len(split_rates) / base_rate - 1.0


def live_monitors(packets: list[Packet], cycles: list[AnnouncementCycle],
                  within: float = 1800.0) -> set[int]:
    """Sources reliably arriving within ``within`` seconds of announcements.

    A source qualifies if its first packet of *every* cycle in which it
    appears lands within the reaction window, and it appears in at least
    two cycles (the paper's "reliably observe" criterion).
    """
    first_arrival: dict[tuple[int, int], float] = {}
    for cycle in cycles:
        if cycle.index == 0:
            continue
        for p in packets:
            if cycle.announce_time <= p.time < cycle.withdraw_time:
                key = (p.src, cycle.index)
                if key not in first_arrival or p.time < first_arrival[key]:
                    first_arrival[key] = p.time
    per_source: dict[int, list[float]] = {}
    announce_at = {c.index: c.announce_time for c in cycles}
    for (src, index), t in first_arrival.items():
        per_source.setdefault(src, []).append(t - announce_at[index])
    return {src for src, delays in per_source.items()
            if len(delays) >= 2 and all(d <= within for d in delays)}


def new_source_prefixes_per_day(packets: list[Packet],
                                start: float, end: float,
                                prefix_shift: int = 80) \
        -> list[int]:
    """Daily count of newly seen source /48 prefixes (Fig. 3 series)."""
    if end <= start:
        raise AnalysisError("empty observation window")
    days = int((end - start) / DAY) + 1
    seen: set[int] = set()
    series = [0] * days
    for p in sorted(packets, key=lambda q: q.time):
        if not start <= p.time < end:
            continue
        key = p.src >> prefix_shift
        if key not in seen:
            seen.add(key)
            series[int((p.time - start) / DAY)] += 1
    return series
