"""Heavy-hitter detection (§4.2).

A heavy hitter is an individual source contributing more than 10% of the
scan packets at one telescope. The paper found ten across the four
telescopes; together they carry 73% of all packets but only 0.04% of all
sessions, which is why the analyses are session-centric.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.sessions import SessionSet
from repro.errors import AnalysisError
from repro.telescope.packet import Packet

#: Paper threshold: >10% of one telescope's packets.
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True, slots=True)
class HeavyHitter:
    """One heavy-hitter source at one telescope."""

    source: int
    telescope: str
    packets: int
    share: float


def find_heavy_hitters(packets_by_telescope: dict[str, list[Packet]],
                       threshold: float = DEFAULT_THRESHOLD) \
        -> list[HeavyHitter]:
    """All (source, telescope) pairs above the packet-share threshold."""
    if not 0 < threshold < 1:
        raise AnalysisError(f"threshold must be in (0,1), got {threshold}")
    hitters: list[HeavyHitter] = []
    for telescope, packets in packets_by_telescope.items():
        total = len(packets)
        if total == 0:
            continue
        per_source: Counter = Counter(p.src for p in packets)
        for source, count in per_source.most_common():
            share = count / total
            if share <= threshold:
                break
            hitters.append(HeavyHitter(source=source, telescope=telescope,
                                       packets=count, share=share))
    hitters.sort(key=lambda h: (-h.packets, h.telescope))
    return hitters


@dataclass(frozen=True, slots=True)
class HeavyHitterImpact:
    """Aggregate contribution of heavy hitters (the 73% / 0.04% numbers)."""

    num_hitters: int
    packet_share: float
    session_share: float


def heavy_hitter_impact(packets_by_telescope: dict[str, list[Packet]],
                        session_sets: dict[str, SessionSet],
                        threshold: float = DEFAULT_THRESHOLD) \
        -> HeavyHitterImpact:
    """Packet vs session share of all heavy hitters combined."""
    hitters = find_heavy_hitters(packets_by_telescope, threshold)
    hitter_sources = {h.source for h in hitters}
    total_packets = sum(len(p) for p in packets_by_telescope.values())
    total_sessions = sum(len(s) for s in session_sets.values())
    if total_packets == 0 or total_sessions == 0:
        raise AnalysisError("empty corpus")
    hh_packets = sum(
        1 for packets in packets_by_telescope.values()
        for p in packets if p.src in hitter_sources)
    hh_sessions = sum(
        1 for session_set in session_sets.values()
        for s in session_set if s.source in hitter_sources)
    return HeavyHitterImpact(
        num_hitters=len({(h.source, h.telescope) for h in hitters}),
        packet_share=hh_packets / total_packets,
        session_share=hh_sessions / total_sessions)
