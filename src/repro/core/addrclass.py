"""Address-selection classification (§5.3).

Per scan session:

- **structured** — targets show a detectable pattern: a strong share of
  addr6-typed structures (low-byte, embedded-*, pattern, anycast) or an
  ordered traversal of the target space;
- **random** — sessions of >= 100 packets whose target bits pass the NIST
  frequency test at alpha = 0.01;
- **unknown** — neither.
"""

from __future__ import annotations

import enum
from collections import Counter

import numpy as np

from repro.core.nist import ALPHA, bits_from_addresses, frequency_test
from repro.core.sessions import Session
from repro.errors import ClassificationError
from repro.net.addrtypes import AddressType, TYPE_ORDER, classify_iids

#: Paper filter: statistical testing needs sessions of >= 100 packets.
MIN_PACKETS_FOR_NIST = 100

#: Share of structured addr6 types that marks a structured session.
STRUCTURED_SHARE = 0.5

#: Types counted as "structured" address choices.
_STRUCTURED_TYPES = frozenset((
    AddressType.LOW_BYTE, AddressType.SUBNET_ANYCAST,
    AddressType.EMBEDDED_IPV4, AddressType.EMBEDDED_PORT,
    AddressType.PATTERN_BYTES, AddressType.IEEE_DERIVED,
    AddressType.ISATAP,
))


class AddressClass(enum.Enum):
    STRUCTURED = "structured"
    RANDOM = "random"
    UNKNOWN = "unknown"


_MASK64 = (1 << 64) - 1


def type_histogram(targets: list[int]) -> Counter:
    """addr6-type histogram of a target list.

    Classification only depends on the 64-bit IID, so each *unique* IID
    is classified once (vectorized) and multiplied by its occurrence
    count — sessions re-probing the same targets pay nothing extra.
    """
    histogram: Counter = Counter()
    if not targets:
        return histogram
    iids = np.fromiter((t & _MASK64 for t in targets),
                       dtype=np.uint64, count=len(targets))
    uniq, counts = np.unique(iids, return_counts=True)
    for code, count in zip(classify_iids(uniq).tolist(), counts.tolist()):
        histogram[TYPE_ORDER[code]] += count
    return histogram


def structured_share(targets: list[int]) -> float:
    """Fraction of targets with a structured addr6 type."""
    if not targets:
        raise ClassificationError("no targets to classify")
    histogram = type_histogram(targets)
    structured = sum(count for addr_type, count in histogram.items()
                     if addr_type in _STRUCTURED_TYPES)
    return structured / len(targets)


def is_ordered_traversal(targets: list[int],
                         min_monotone_share: float = 0.85) -> bool:
    """Detect sequential prefix traversal (the Fig. 13 stripe pattern).

    Comparison stays in exact integer arithmetic — 128-bit addresses lose
    the subnet-granularity differences when cast to float64.
    """
    if len(targets) < 4:
        return False
    subnets = [t >> 64 for t in targets]
    # a scan confined to one (or two) subnets is trivially "monotone";
    # a traversal needs actual movement through the subnet space
    if len(set(subnets)) < 3:
        return False
    non_decreasing = sum(1 for a, b in zip(subnets, subnets[1:]) if b >= a)
    return non_decreasing / (len(subnets) - 1) >= min_monotone_share


def classify_session(session: Session,
                     telescope_prefix_len: int = 32,
                     alpha: float = ALPHA) -> AddressClass:
    """Classify a session's address selection per the paper's method."""
    targets = session.targets()
    share = structured_share(targets)
    if share >= STRUCTURED_SHARE or is_ordered_traversal(targets):
        return AddressClass.STRUCTURED
    if len(targets) >= MIN_PACKETS_FOR_NIST:
        bits = bits_from_addresses(targets, take_bits=64, skip_high=64)
        if frequency_test(bits) >= alpha:
            return AddressClass.RANDOM
    return AddressClass.UNKNOWN


def classify_sessions(sessions: list[Session],
                      telescope_prefix_len: int = 32) \
        -> dict[AddressClass, int]:
    """Histogram of address classes over a session list."""
    histogram = {cls: 0 for cls in AddressClass}
    for session in sessions:
        histogram[classify_session(session, telescope_prefix_len)] += 1
    return histogram
