"""Temporal scanner classification (§5.1).

Scanners fall into exactly one of three exclusive classes:

- **one-off** — a single scan session in the whole dataset;
- **periodic** — more than two sessions with a stable, detectable period;
- **intermittent** — recurrent but without a detectable period.

Period detection follows the autocorrelation approach of Breitenbach et
al.: session starts are binned into a time series, the autocorrelation
function is computed, and a significant non-zero-lag peak marks a period.
A regular-gap check covers scanners with few sessions, where binned
autocorrelation is statistically weak.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.sessions import Session
from repro.errors import ClassificationError
from repro.sim.clock import HOUR


class TemporalClass(enum.Enum):
    ONE_OFF = "one-off"
    PERIODIC = "periodic"
    INTERMITTENT = "intermittent"


@dataclass(frozen=True, slots=True)
class PeriodEstimate:
    """Result of period detection over session start times."""

    period: float | None
    confidence: float

    @property
    def detected(self) -> bool:
        return self.period is not None


def detect_period(times: list[float], bin_width: float = HOUR,
                  acf_threshold: float = 0.25,
                  gap_cv_threshold: float = 0.35) -> PeriodEstimate:
    """Detect a stable period in event times.

    Two detectors combine:

    1. *autocorrelation*: bin event counts, compute the normalized ACF, and
       look for a peak above ``acf_threshold`` at a non-zero lag;
    2. *gap regularity*: for short series, a coefficient of variation of
       inter-event gaps below ``gap_cv_threshold`` marks a stable period.
    """
    if len(times) < 3:
        return PeriodEstimate(period=None, confidence=0.0)
    ordered = sorted(times)
    gaps = np.diff(ordered)
    if np.any(gaps < 0):
        raise ClassificationError("event times must be sortable")
    mean_gap = float(np.mean(gaps))
    if mean_gap <= 0:
        return PeriodEstimate(period=None, confidence=0.0)

    # detector 2: regular gaps (robust for few events)
    cv = float(np.std(gaps) / mean_gap)
    if cv < gap_cv_threshold:
        return PeriodEstimate(period=mean_gap, confidence=1.0 - cv)

    # detector 1: autocorrelation over a binned series
    span = ordered[-1] - ordered[0]
    num_bins = int(span / bin_width) + 1
    if num_bins < 8 or num_bins > 2_000_000:
        return PeriodEstimate(period=None, confidence=0.0)
    series = np.zeros(num_bins)
    for t in ordered:
        series[int((t - ordered[0]) / bin_width)] += 1
    series = series - series.mean()
    denom = float(np.sum(series * series))
    if denom == 0:
        return PeriodEstimate(period=None, confidence=0.0)
    # full ACF via FFT
    size = 1
    while size < 2 * num_bins:
        size *= 2
    spectrum = np.fft.rfft(series, size)
    acf = np.fft.irfft(spectrum * np.conj(spectrum), size)[:num_bins] / denom
    max_lag = num_bins // 2
    if max_lag < 2:
        return PeriodEstimate(period=None, confidence=0.0)
    lag = int(np.argmax(acf[1:max_lag])) + 1
    peak = float(acf[lag])
    # sparse series produce spurious small peaks: with n events, a single
    # coincidental pair already yields ~1/n, so demand a few aligned pairs.
    threshold = max(acf_threshold, 2.5 / len(ordered))
    if peak >= threshold:
        return PeriodEstimate(period=lag * bin_width, confidence=peak)
    return PeriodEstimate(period=None, confidence=peak)


def classify_temporal(sessions: list[Session],
                      bin_width: float = HOUR) -> TemporalClass:
    """Classify one scanner from its (time-ordered) sessions."""
    if not sessions:
        raise ClassificationError("cannot classify a scanner with no sessions")
    if len(sessions) == 1:
        return TemporalClass.ONE_OFF
    starts = sorted(s.start for s in sessions)
    if len(sessions) == 2:
        # "must appear more than twice and show a stable period" — two
        # sessions can never establish a period.
        return TemporalClass.INTERMITTENT
    estimate = detect_period(starts, bin_width=bin_width)
    if estimate.detected:
        return TemporalClass.PERIODIC
    return TemporalClass.INTERMITTENT


def classify_all(by_source: dict[int, list[Session]],
                 bin_width: float = HOUR) -> dict[int, TemporalClass]:
    """Temporal class per source from a sessions-by-source mapping."""
    return {source: classify_temporal(sessions, bin_width=bin_width)
            for source, sessions in by_source.items()}
