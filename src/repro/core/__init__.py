"""The paper's measurement/analysis methodology.

Everything in this subpackage operates on captured packets only — never on
the generative ground truth — exactly as the authors' pipeline operated on
pcaps:

- :mod:`repro.core.sessions` — scan sessions (1h timeout) and sources.
- :mod:`repro.core.columnar` — NumPy-backed packet table + vectorized
  sessionization, aggregation and phase slicing.
- :mod:`repro.core.aggregation` — /128, /64, /48 source aggregation.
- :mod:`repro.core.temporal` — one-off/periodic/intermittent (§5.1).
- :mod:`repro.core.netclass` — network-selection classes via DBSCAN (§5.2).
- :mod:`repro.core.addrclass` — structured/random/unknown targets (§5.3).
- :mod:`repro.core.nist` — the NIST SP 800-22 subset (Appendix B).
- :mod:`repro.core.dbscan` — density-based clustering.
- :mod:`repro.core.payloads` — payload clustering and tool matching (§5.4).
- :mod:`repro.core.heavy` — heavy-hitter detection (§4.2).
- :mod:`repro.core.overlap` — cross-telescope source overlap (§6/§7.2).
- :mod:`repro.core.protocols` — protocol and port statistics (§4.2).
- :mod:`repro.core.reactivity` — BGP reaction metrics (§7.1).
"""

from repro.core.aggregation import AggregationLevel, source_key
from repro.core.columnar import PacketSlice, PacketTable, sessionize_table
from repro.core.sessions import Session, SessionSet, sessionize

__all__ = [
    "Session",
    "SessionSet",
    "sessionize",
    "sessionize_table",
    "PacketTable",
    "PacketSlice",
    "AggregationLevel",
    "source_key",
]
