"""Cross-telescope overlap analysis (§6 Fig. 8, §7.2 Fig. 16).

Computes the UpSet-style exclusive intersections of source sets (ASNs or
/128 sources) across the four telescopes, plus the same-day/different-day
source overlap between the separately announced telescopes T1 and T2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.sim.clock import DAY
from repro.telescope.packet import Packet


@dataclass(frozen=True, slots=True)
class UpSetData:
    """Exclusive-intersection layout of one item universe."""

    #: per-telescope (non-exclusive) set sizes
    set_sizes: dict[str, int]
    #: exclusive combination -> count, keyed by a sorted tuple of names
    intersections: dict[tuple[str, ...], int]

    def exclusive(self, *names: str) -> int:
        """Items seen at exactly the given telescopes."""
        return self.intersections.get(tuple(sorted(names)), 0)

    def exclusive_share(self, name: str) -> float:
        """Share of a telescope's items seen only there."""
        size = self.set_sizes.get(name, 0)
        if size == 0:
            return 0.0
        return self.exclusive(name) / size


def upset(sets: dict[str, set]) -> UpSetData:
    """Exclusive intersections over named sets (UpSet plot data)."""
    if not sets:
        raise AnalysisError("upset needs at least one set")
    names = sorted(sets)
    intersections: dict[tuple[str, ...], int] = {}
    for r in range(1, len(names) + 1):
        for combo in itertools.combinations(names, r):
            inside = set.intersection(*(sets[n] for n in combo))
            outside = set().union(*(sets[n] for n in names
                                    if n not in combo)) if r < len(names) \
                else set()
            exclusive = inside - outside
            if exclusive:
                intersections[tuple(combo)] = len(exclusive)
    return UpSetData(
        set_sizes={n: len(sets[n]) for n in names},
        intersections=intersections)


def sources_everywhere(sets: dict[str, set]) -> set:
    """Items observed at *every* telescope (§7.2: ten /128 sources)."""
    if not sets:
        raise AnalysisError("need at least one set")
    return set.intersection(*sets.values())


@dataclass(frozen=True, slots=True)
class DayOverlap:
    """Same-day vs different-day overlap between two telescopes (Fig 16b)."""

    same_day: int
    different_day: int

    @property
    def total(self) -> int:
        return self.same_day + self.different_day

    @property
    def same_day_share(self) -> float:
        return self.same_day / self.total if self.total else 0.0


def day_overlap(packets_a: list[Packet], packets_b: list[Packet],
                until: float | None = None) -> DayOverlap:
    """Overlapping sources between two telescopes, split by day alignment.

    A source counts as *same-day* if it appeared at both telescopes on at
    least one common calendar day (before ``until`` when given).
    """
    def days_per_source(packets: list[Packet]) -> dict[int, set[int]]:
        days: dict[int, set[int]] = {}
        for p in packets:
            if until is not None and p.time >= until:
                continue
            days.setdefault(p.src, set()).add(int(p.time // DAY))
        return days

    days_a = days_per_source(packets_a)
    days_b = days_per_source(packets_b)
    shared = set(days_a) & set(days_b)
    same = sum(1 for src in shared if days_a[src] & days_b[src])
    return DayOverlap(same_day=same, different_day=len(shared) - same)
