"""Packet capture store and filters.

Mirrors a pcap pipeline: packets are appended as they arrive, an optional
:class:`CaptureFilter` drops out-of-scope traffic (T2 excludes its
productive /56), and :meth:`PacketCapture.packets` returns an arrival-time
sorted view for analysis.

Two append paths feed a capture:

- :meth:`PacketCapture.record` stores one ``Packet`` object (the legacy
  emission oracle, responders, and low-volume emitters like the TGA);
- :meth:`PacketCapture.append_batch` appends whole NumPy column batches
  from the batched session kernel into a
  :class:`repro.core.columnar.PacketTableBuilder` — no ``Packet`` objects
  exist on this path until an analysis materializes them.

:meth:`table` merges both stores into one time-sorted columnar view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro import obs
from repro.net.lpm import contains_mask
from repro.net.prefix import Prefix
from repro.telescope.packet import Packet


@dataclass
class CaptureFilter:
    """Declarative packet filter.

    Attributes:
        exclude_dst_prefixes: packets *to* these prefixes are dropped
            (T2's productive /56, §3.1).
        exclude_src_prefixes: packets *from* these prefixes are dropped
            (traffic originated by the productive subnet itself).
    """

    exclude_dst_prefixes: tuple[Prefix, ...] = ()
    exclude_src_prefixes: tuple[Prefix, ...] = ()

    def accepts(self, packet: Packet) -> bool:
        for prefix in self.exclude_dst_prefixes:
            if prefix.contains_address(packet.dst):
                return False
        for prefix in self.exclude_src_prefixes:
            if prefix.contains_address(packet.src):
                return False
        return True

    def accept_mask(self, src_hi: np.ndarray, src_lo: np.ndarray,
                    dst_hi: np.ndarray, dst_lo: np.ndarray) \
            -> np.ndarray | None:
        """Vectorized :meth:`accepts` over columns; ``None`` = keep all."""
        if not self.exclude_dst_prefixes and not self.exclude_src_prefixes:
            return None
        drop = np.zeros(len(dst_hi), dtype=bool)
        for prefix in self.exclude_dst_prefixes:
            drop |= contains_mask(prefix, dst_hi, dst_lo)
        for prefix in self.exclude_src_prefixes:
            drop |= contains_mask(prefix, src_hi, src_lo)
        return ~drop


@dataclass
class PacketCapture:
    """Append-only packet store with basic counters."""

    name: str = ""
    capture_filter: CaptureFilter | None = None
    #: fault-injected outage windows [start, end): arrivals inside are
    #: dropped (start inclusive, end exclusive) on *both* append paths,
    #: counted once in :attr:`blackout_dropped` and the shared
    #: ``telescope.blackout_dropped_total`` counter.
    blackout_windows: tuple[tuple[float, float], ...] = ()
    _packets: list[Packet] = field(default_factory=list)
    _sorted: bool = field(default=True)
    _builder: object = field(default=None, repr=False)
    _table: object = field(default=None, repr=False)
    dropped: int = 0
    blackout_dropped: int = 0
    # bound metrics, cached per recorder so the per-packet cost while
    # recording is one identity check + one counter increment
    _obs_counter: object = field(default=None, repr=False, compare=False)
    _obs_owner: object = field(default=None, repr=False, compare=False)

    def _in_blackout(self, t: float) -> bool:
        for start, end in self.blackout_windows:
            if start <= t < end:
                return True
        return False

    def _blackout_keep_mask(self, time: np.ndarray) -> np.ndarray | None:
        """Vectorized :meth:`_in_blackout` over a time column (None=all)."""
        if not self.blackout_windows:
            return None
        drop = np.zeros(len(time), dtype=bool)
        for start, end in self.blackout_windows:
            drop |= (time >= start) & (time < end)
        return ~drop

    def _count_blackout_drops(self, n: int) -> None:
        """The single shared accounting path for blackout drops.

        Both :meth:`record` and :meth:`append_batch` come through here,
        so a dropped packet is counted exactly once regardless of the
        append path that carried it.
        """
        self.blackout_dropped += n
        obs.add("telescope.blackout_dropped_total", n,
                telescope=self.name or "unnamed")

    def record(self, packet: Packet) -> bool:
        """Store ``packet`` unless a blackout or the filter rejects it.

        Returns True if the packet was stored.
        """
        if self.blackout_windows and self._in_blackout(packet.time):
            self._count_blackout_drops(1)
            return False
        if self.capture_filter is not None \
                and not self.capture_filter.accepts(packet):
            self.dropped += 1
            obs.add("telescope.packets_dropped_total",
                    telescope=self.name or "unnamed")
            return False
        if self._packets and packet.time < self._packets[-1].time:
            self._sorted = False
        self._packets.append(packet)
        self._table = None
        self._bound_counter()
        return True

    def append_batch(self, time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                     dst_port, src_asn, scanner_id,
                     payload_id: np.ndarray | None = None,
                     payloads: list[bytes] | None = None) -> int:
        """Append one column batch; returns the number of rows stored."""
        n = len(time)
        if n == 0:
            return 0
        if self.blackout_windows:
            keep = self._blackout_keep_mask(time)
            kept = int(np.count_nonzero(keep))
            if kept < n:
                self._count_blackout_drops(n - kept)
                if kept == 0:
                    return 0
                time = time[keep]
                src_hi, src_lo = src_hi[keep], src_lo[keep]
                dst_hi, dst_lo = dst_hi[keep], dst_lo[keep]
                protocol, dst_port = protocol[keep], dst_port[keep]
                src_asn, scanner_id = src_asn[keep], scanner_id[keep]
                if payload_id is not None:
                    payload_id = payload_id[keep]
                n = kept
        if self.capture_filter is not None:
            keep = self.capture_filter.accept_mask(src_hi, src_lo,
                                                   dst_hi, dst_lo)
            if keep is not None:
                kept = int(np.count_nonzero(keep))
                if kept < n:
                    self.dropped += n - kept
                    obs.add("telescope.packets_dropped_total", n - kept,
                            telescope=self.name or "unnamed")
                    if kept == 0:
                        return 0
                    time = time[keep]
                    src_hi, src_lo = src_hi[keep], src_lo[keep]
                    dst_hi, dst_lo = dst_hi[keep], dst_lo[keep]
                    protocol, dst_port = protocol[keep], dst_port[keep]
                    src_asn, scanner_id = src_asn[keep], scanner_id[keep]
                    if payload_id is not None:
                        payload_id = payload_id[keep]
                    n = kept
        if self._builder is None:
            from repro.core.columnar import PacketTableBuilder
            self._builder = PacketTableBuilder()
        self._builder.append(time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                             dst_port, src_asn, scanner_id,
                             payload_id=payload_id, payloads=payloads)
        self._table = None
        counter = self._bound_counter()
        if counter is not None:
            counter.inc(n - 1)  # _bound_counter already added one
        return n

    def _bound_counter(self):
        recorder = obs.current()
        if recorder is None:
            return None
        if self._obs_owner is not recorder:
            self._obs_counter = recorder.metrics.counter(
                "telescope.packets_total",
                telescope=self.name or "unnamed")
            self._obs_owner = recorder
        self._obs_counter.inc()
        return self._obs_counter

    def extend(self, packets: Iterable[Packet]) -> int:
        """Record many packets; returns the number stored."""
        stored = 0
        for packet in packets:
            if self.record(packet):
                stored += 1
        return stored

    def __len__(self) -> int:
        n = len(self._packets)
        if self._builder is not None:
            n += len(self._builder)
        return n

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets())

    def packets(self) -> list[Packet]:
        """Arrival-time sorted view of all stored packets.

        On the object path this is the capture's own list; once column
        batches exist the merged table materializes (and caches) the
        ``Packet`` objects.
        """
        if self._builder is None or not len(self._builder):
            if not self._sorted:
                self._packets.sort(key=lambda p: p.time)
                self._sorted = True
            return self._packets
        return self.table().to_packets()

    def table(self):
        """Columnar (structure-of-arrays) view of the sorted capture.

        Cached until the next append. When only ``Packet`` objects were
        recorded it shares them, so analyses materializing rows get
        identical instances; once batches exist the two stores are merged
        and stably re-sorted by arrival time.
        """
        if self._table is None:
            # deferred: repro.core pulls in telescope.packet at import time
            from repro.core.columnar import PacketTable, concat_tables
            if self._builder is None or not len(self._builder):
                self._table = PacketTable.from_packets(self.packets())
            else:
                parts = [self._builder.snapshot()]
                if self._packets:
                    parts.append(PacketTable.from_packets(self._packets))
                self._table = concat_tables(parts).time_sorted()
        return self._table

    def filtered(self, predicate: Callable[[Packet], bool]) -> list[Packet]:
        return [p for p in self.packets() if predicate(p)]

    def between(self, start: float, end: float) -> list[Packet]:
        """Packets with ``start <= time < end`` (binary-search bounded)."""
        data = self.packets()
        lo = _bisect_time(data, start)
        hi = _bisect_time(data, end)
        return data[lo:hi]

    def sources(self) -> set[int]:
        if self._builder is not None and len(self._builder):
            return self.table().unique_source_addresses()
        return {p.src for p in self._packets}

    def destinations(self) -> set[int]:
        if self._builder is not None and len(self._builder):
            table = self.table()
            pairs = np.unique(
                np.stack((table.dst_hi, table.dst_lo), axis=1), axis=0)
            return {(int(hi) << 64) | int(lo) for hi, lo in pairs.tolist()}
        return {p.dst for p in self._packets}

    def source_asns(self) -> set[int]:
        if self._builder is not None and len(self._builder):
            asns = np.unique(self.table().src_asn)
            return {int(a) for a in asns.tolist() if a}
        return {p.src_asn for p in self._packets if p.src_asn}


def _bisect_time(packets: list[Packet], t: float) -> int:
    lo, hi = 0, len(packets)
    while lo < hi:
        mid = (lo + hi) // 2
        if packets[mid].time < t:
            lo = mid + 1
        else:
            hi = mid
    return lo
