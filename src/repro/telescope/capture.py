"""Packet capture store and filters.

Mirrors a pcap pipeline: packets are appended as they arrive, an optional
:class:`CaptureFilter` drops out-of-scope traffic (T2 excludes its
productive /56), and :meth:`PacketCapture.packets` returns an arrival-time
sorted view for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.net.prefix import Prefix
from repro.telescope.packet import Packet


@dataclass
class CaptureFilter:
    """Declarative packet filter.

    Attributes:
        exclude_dst_prefixes: packets *to* these prefixes are dropped
            (T2's productive /56, §3.1).
        exclude_src_prefixes: packets *from* these prefixes are dropped
            (traffic originated by the productive subnet itself).
    """

    exclude_dst_prefixes: tuple[Prefix, ...] = ()
    exclude_src_prefixes: tuple[Prefix, ...] = ()

    def accepts(self, packet: Packet) -> bool:
        for prefix in self.exclude_dst_prefixes:
            if prefix.contains_address(packet.dst):
                return False
        for prefix in self.exclude_src_prefixes:
            if prefix.contains_address(packet.src):
                return False
        return True


@dataclass
class PacketCapture:
    """Append-only packet store with basic counters."""

    name: str = ""
    capture_filter: CaptureFilter | None = None
    _packets: list[Packet] = field(default_factory=list)
    _sorted: bool = field(default=True)
    _table: object = field(default=None, repr=False)
    dropped: int = 0
    # bound metrics, cached per recorder so the per-packet cost while
    # recording is one identity check + one counter increment
    _obs_counter: object = field(default=None, repr=False, compare=False)
    _obs_owner: object = field(default=None, repr=False, compare=False)

    def record(self, packet: Packet) -> bool:
        """Store ``packet`` unless the filter rejects it.

        Returns True if the packet was stored.
        """
        if self.capture_filter is not None \
                and not self.capture_filter.accepts(packet):
            self.dropped += 1
            obs.add("telescope.packets_dropped_total",
                    telescope=self.name or "unnamed")
            return False
        if self._packets and packet.time < self._packets[-1].time:
            self._sorted = False
        self._packets.append(packet)
        self._table = None
        recorder = obs.current()
        if recorder is not None:
            if self._obs_owner is not recorder:
                self._obs_counter = recorder.metrics.counter(
                    "telescope.packets_total",
                    telescope=self.name or "unnamed")
                self._obs_owner = recorder
            self._obs_counter.inc()
        return True

    def extend(self, packets: Iterable[Packet]) -> int:
        """Record many packets; returns the number stored."""
        stored = 0
        for packet in packets:
            if self.record(packet):
                stored += 1
        return stored

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets())

    def packets(self) -> list[Packet]:
        """Arrival-time sorted view of all stored packets."""
        if not self._sorted:
            self._packets.sort(key=lambda p: p.time)
            self._sorted = True
        return self._packets

    def table(self):
        """Columnar (structure-of-arrays) view of the sorted capture.

        Cached until the next append; shares the capture's ``Packet``
        objects so analyses materializing rows get identical instances.
        """
        if self._table is None:
            # deferred: repro.core pulls in telescope.packet at import time
            from repro.core.columnar import PacketTable
            self._table = PacketTable.from_packets(self.packets())
        return self._table

    def filtered(self, predicate: Callable[[Packet], bool]) -> list[Packet]:
        return [p for p in self.packets() if predicate(p)]

    def between(self, start: float, end: float) -> list[Packet]:
        """Packets with ``start <= time < end`` (binary-search bounded)."""
        data = self.packets()
        lo = _bisect_time(data, start)
        hi = _bisect_time(data, end)
        return data[lo:hi]

    def sources(self) -> set[int]:
        return {p.src for p in self._packets}

    def destinations(self) -> set[int]:
        return {p.dst for p in self._packets}

    def source_asns(self) -> set[int]:
        return {p.src_asn for p in self._packets if p.src_asn}


def _bisect_time(packets: list[Packet], t: float) -> int:
    lo, hi = 0, len(packets)
    while lo < hi:
        mid = (lo + hi) // 2
        if packets[mid].time < t:
            lo = mid + 1
        else:
            hi = mid
    return lo
