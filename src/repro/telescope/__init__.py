"""Network telescopes.

The paper's four telescopes (§3.1):

- **T1** — BGP-controlled, untainted /32 split down to /48s.
- **T2** — partially productive /48 with a stable 13-year announcement, a
  productive /56 (excluded from capture), and one DNS-named address.
- **T3** — silent /48 inside a covering /29, never separately announced.
- **T4** — reactive /48 inside the same /29; answers TCP and ICMPv6.
"""

from repro.telescope.capture import CaptureFilter, PacketCapture
from repro.telescope.deployment import Deployment, build_deployment
from repro.telescope.packet import ICMPV6, TCP, UDP, Packet, Protocol
from repro.telescope.reactive import ReactiveResponder
from repro.telescope.telescope import Telescope, TelescopeKind

__all__ = [
    "Packet",
    "Protocol",
    "ICMPV6",
    "TCP",
    "UDP",
    "PacketCapture",
    "CaptureFilter",
    "Telescope",
    "TelescopeKind",
    "ReactiveResponder",
    "Deployment",
    "build_deployment",
]
