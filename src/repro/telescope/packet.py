"""Packet records.

A :class:`Packet` is the unit every analysis consumes. It captures exactly
the fields the paper's pipeline uses: arrival time, source and destination
address, transport protocol, destination port, and an optional payload
(used for tool fingerprinting, §5.4). Source ASN is resolved at capture
time so analyses need no reverse lookup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Protocol(enum.IntEnum):
    """Transport protocols observed at the telescopes (IANA numbers)."""

    TCP = 6
    UDP = 17
    ICMPV6 = 58


#: Convenience aliases.
TCP = Protocol.TCP
UDP = Protocol.UDP
ICMPV6 = Protocol.ICMPV6

#: Default traceroute destination port range (§4.2 Table 4 footnote).
TRACEROUTE_PORT_RANGE = (33434, 33523)


def is_traceroute_port(port: int) -> bool:
    """True if ``port`` falls in the classic UDP traceroute range."""
    low, high = TRACEROUTE_PORT_RANGE
    return low <= port <= high


@dataclass(frozen=True, slots=True)
class Packet:
    """One captured probe packet.

    Attributes:
        time: arrival time (simulation seconds).
        src: source address (128-bit int).
        dst: destination address (128-bit int).
        protocol: transport protocol.
        dst_port: destination port; 0 for ICMPv6.
        payload: raw payload bytes, or ``None`` for empty probes.
        src_asn: origin AS of the source address.
        scanner_id: ground-truth scanner identity (never exposed to the
            analysis pipeline; used only for validation tests).
    """

    time: float
    src: int
    dst: int
    protocol: Protocol
    dst_port: int = 0
    payload: bytes | None = None
    src_asn: int = 0
    scanner_id: int = -1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"packet time must be >= 0, got {self.time}")
        if not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError(f"invalid destination port {self.dst_port}")

    @property
    def has_payload(self) -> bool:
        return bool(self.payload)
