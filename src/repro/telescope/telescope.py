"""Telescope model.

A telescope owns one or more prefixes and a capture. Passive telescopes
only record; reactive telescopes additionally produce responses via a
:class:`repro.telescope.reactive.ReactiveResponder`, which is what makes
the paper's T4 discoverable by feedback-driven scanners (and keeps it off
the aliased-prefix hitlist, §3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.telescope.capture import PacketCapture
from repro.telescope.packet import Packet
from repro.telescope.reactive import ReactiveResponder


class TelescopeKind(enum.Enum):
    """Telescope interaction model (Table 1 columns)."""

    PASSIVE = "passive"      # originates nothing
    TRACEABLE = "traceable"  # originates/receives author-controlled traffic
    ACTIVE = "active"        # reacts to connection attempts


@dataclass
class Telescope:
    """One of the four observation points."""

    name: str
    kind: TelescopeKind
    prefixes: list[Prefix]
    capture: PacketCapture
    responder: ReactiveResponder | None = None
    #: addresses with DNS exposure inside the telescope (T2's attractor).
    dns_exposed: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ExperimentError(f"telescope {self.name} has no prefixes")
        if self.kind is TelescopeKind.ACTIVE and self.responder is None:
            raise ExperimentError(
                f"active telescope {self.name} needs a responder")

    def owns(self, addr: int) -> bool:
        """True if ``addr`` falls inside any of the telescope's prefixes."""
        return any(p.contains_address(addr) for p in self.prefixes)

    def deliver(self, packet: Packet) -> bool:
        """Record an arriving packet; returns True if it responded.

        The response itself is not materialized as a packet — scanners only
        need the boolean feedback signal (did the target answer?).
        """
        if not self.owns(packet.dst):
            raise ExperimentError(
                f"packet to {packet.dst:#x} misrouted to {self.name}")
        self.capture.record(packet)
        if self.responder is not None:
            return self.responder.responds(packet)
        return False

    def deliver_batch(self, time, src_hi, src_lo, dst_hi, dst_lo, protocol,
                      dst_port, src_asn, scanner_id, payload_id=None,
                      payloads=None) -> int:
        """Record a column batch; returns the number of rows captured.

        The vectorized router only hands a telescope rows it owns, so the
        per-packet ownership assertion is skipped. Like :meth:`deliver`,
        the responder sees every arriving probe, including ones the
        capture filter drops.
        """
        stored = self.capture.append_batch(
            time, src_hi, src_lo, dst_hi, dst_lo, protocol, dst_port,
            src_asn, scanner_id, payload_id=payload_id, payloads=payloads)
        if self.responder is not None:
            self.responder.respond_batch(protocol, dst_hi, dst_lo, dst_port)
        return stored

    @property
    def packet_count(self) -> int:
        return len(self.capture)

    def covering_prefix(self, addr: int) -> Prefix | None:
        """Most-specific telescope prefix containing ``addr``."""
        hits = [p for p in self.prefixes if p.contains_address(addr)]
        if not hits:
            return None
        return max(hits, key=lambda p: p.length)
