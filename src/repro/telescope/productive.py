"""T2's productive subnet and DNS attractor.

T2 is a /48 announced for 13 years with a productive /56 (web servers, end
hosts, IoT devices, several with persistent DNS entries). Traffic from/to
that /56 is excluded from the measurements. One additional address inside
the /48 but outside the /56 has a DNS name that also exists in IPv4 and is
on the Cisco Umbrella popularity list — the "DNS attractor" that draws 50%
of T2's scanners (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dns.umbrella import UmbrellaList
from repro.dns.zone import Zone
from repro.errors import ExperimentError
from repro.net.addr import random_bits
from repro.net.prefix import Prefix


@dataclass
class ProductiveSubnet:
    """The in-use /56 inside T2 plus the out-of-subnet attractor name."""

    telescope_prefix: Prefix
    subnet: Prefix
    zone: Zone
    attractor_name: str = "www.prod-example.net"
    attractor_addr: int = 0
    host_addrs: list[int] = field(default_factory=list)

    @classmethod
    def build(cls, telescope_prefix: Prefix, rng: np.random.Generator,
              umbrella: UmbrellaList | None = None,
              num_hosts: int = 24,
              subnet_index: int = 0x12) -> "ProductiveSubnet":
        """Create the productive /56, its hosts, and the attractor name.

        The attractor address lives in a different /56 of the telescope
        prefix and gets an Umbrella listing when ``umbrella`` is given.
        """
        if telescope_prefix.length > 56:
            raise ExperimentError(
                f"telescope prefix {telescope_prefix} too specific for a /56")
        subnet = telescope_prefix.subnet(56, subnet_index)
        zone = Zone(origin="prod-example.net.")
        instance = cls(telescope_prefix=telescope_prefix, subnet=subnet,
                       zone=zone)
        # productive hosts: low-byte servers and SLAAC-style clients
        for i in range(num_hosts):
            sub64 = subnet.subnet(64, int(rng.integers(0, 256)))
            if i < num_hosts // 2:
                addr = sub64.network | (i + 1)
                zone.add_aaaa(f"host{i}.prod-example.net.", addr)
            else:
                addr = sub64.network | random_bits(rng, 64)
            instance.host_addrs.append(addr)
        # the single DNS-named address outside the productive /56
        attractor_subnet_index = (subnet_index + 0x31) % 256
        attractor_sub = telescope_prefix.subnet(56, attractor_subnet_index)
        instance.attractor_addr = attractor_sub.subnet(64, 0).network | 0x80
        zone.add_aaaa(instance.attractor_name, instance.attractor_addr)
        if umbrella is not None:
            umbrella.add(instance.attractor_name)
        return instance

    @property
    def excluded_prefixes(self) -> tuple[Prefix, ...]:
        """Prefixes whose traffic the capture filter must drop (§3.1)."""
        return (self.subnet,)

    def contains(self, addr: int) -> bool:
        return self.subnet.contains_address(addr)
