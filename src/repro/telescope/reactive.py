"""Reactive telescope behavior (T4).

T4 "actively accepts TCP connections and reacts to scanning requests"
(§3.1) — every address answers. Notably it never appeared on the aliased
prefix list, which we reproduce by answering deterministically rather than
echoing arbitrary probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telescope.packet import ICMPV6, TCP, UDP, Packet, Protocol


@dataclass
class ReactiveResponder:
    """Answers probes the way the paper's T4 does.

    Attributes:
        accept_tcp: answer TCP SYNs on any port.
        accept_icmpv6: answer echo requests.
        accept_udp: T4 did not answer UDP probes.
    """

    accept_tcp: bool = True
    accept_icmpv6: bool = True
    accept_udp: bool = False
    responses_sent: int = 0
    _responded_ports: dict[int, set[int]] = field(default_factory=dict)

    def responds(self, packet: Packet) -> bool:
        """Decide whether the probe elicits a response; count it if so."""
        if packet.protocol is Protocol.TCP:
            answer = self.accept_tcp
        elif packet.protocol is Protocol.ICMPV6:
            answer = self.accept_icmpv6
        else:
            answer = self.accept_udp
        if answer:
            self.responses_sent += 1
            if packet.protocol is TCP:
                ports = self._responded_ports.setdefault(packet.dst, set())
                ports.add(packet.dst_port)
        return answer

    def respond_batch(self, protocol: np.ndarray, dst_hi: np.ndarray,
                      dst_lo: np.ndarray, dst_port: np.ndarray) -> int:
        """Vectorized :meth:`responds` over a probe batch; returns answers."""
        answered = np.zeros(len(protocol), dtype=bool)
        tcp = protocol == int(TCP)
        if self.accept_tcp:
            answered |= tcp
        if self.accept_icmpv6:
            answered |= protocol == int(ICMPV6)
        if self.accept_udp:
            answered |= protocol == int(UDP)
        count = int(np.count_nonzero(answered))
        self.responses_sent += count
        if self.accept_tcp and tcp.any():
            rows = np.flatnonzero(tcp)
            for hi, lo, port in zip(dst_hi[rows].tolist(),
                                    dst_lo[rows].tolist(),
                                    dst_port[rows].tolist()):
                self._responded_ports.setdefault(
                    (hi << 64) | lo, set()).add(port)
        return count

    def open_ports(self, addr: int) -> set[int]:
        """TCP ports this responder has answered on for ``addr``."""
        return set(self._responded_ports.get(addr, ()))

    @property
    def appears_aliased(self) -> bool:
        """Whether an aliased-prefix detector would flag the telescope.

        T4 answers identically from every address yet never appeared on
        the aliased list (§3.2); the detector needs *unsolicited* random
        high-IID responses to conclude aliasing, which this responder
        never generates.
        """
        return False


ICMPV6_RESPONDER = ReactiveResponder(accept_tcp=False, accept_icmpv6=True)
