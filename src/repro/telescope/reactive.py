"""Reactive telescope behavior (T4).

T4 "actively accepts TCP connections and reacts to scanning requests"
(§3.1) — every address answers. Notably it never appeared on the aliased
prefix list, which we reproduce by answering deterministically rather than
echoing arbitrary probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telescope.packet import ICMPV6, TCP, Packet, Protocol


@dataclass
class ReactiveResponder:
    """Answers probes the way the paper's T4 does.

    Attributes:
        accept_tcp: answer TCP SYNs on any port.
        accept_icmpv6: answer echo requests.
        accept_udp: T4 did not answer UDP probes.
    """

    accept_tcp: bool = True
    accept_icmpv6: bool = True
    accept_udp: bool = False
    responses_sent: int = 0
    _responded_ports: dict[int, set[int]] = field(default_factory=dict)

    def responds(self, packet: Packet) -> bool:
        """Decide whether the probe elicits a response; count it if so."""
        if packet.protocol is Protocol.TCP:
            answer = self.accept_tcp
        elif packet.protocol is Protocol.ICMPV6:
            answer = self.accept_icmpv6
        else:
            answer = self.accept_udp
        if answer:
            self.responses_sent += 1
            if packet.protocol is TCP:
                ports = self._responded_ports.setdefault(packet.dst, set())
                ports.add(packet.dst_port)
        return answer

    def open_ports(self, addr: int) -> set[int]:
        """TCP ports this responder has answered on for ``addr``."""
        return set(self._responded_ports.get(addr, ()))

    @property
    def appears_aliased(self) -> bool:
        """Whether an aliased-prefix detector would flag the telescope.

        T4 answers identically from every address yet never appeared on
        the aliased list (§3.2); the detector needs *unsolicited* random
        high-IID responses to conclude aliasing, which this responder
        never generates.
        """
        return False


ICMPV6_RESPONDER = ReactiveResponder(accept_tcp=False, accept_icmpv6=True)
