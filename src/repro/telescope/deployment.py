"""The standard four-telescope deployment.

Wires together the complete measurement infrastructure of §3: AS topology,
BGP fabric, route collector, hitlist service, DNS, the four telescopes, and
the T1 split controller. Also provides the data-plane routing function that
decides which telescope (if any) captures a packet addressed to ``dst`` at
a given time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import numpy as np

from repro import obs

from repro.bgp.collector import CollectorEntry, RouteCollector
from repro.bgp.controller import (AnnouncementCycle, SplitController,
                                  build_split_schedule)
from repro.bgp.lookingglass import LookingGlass
from repro.bgp.policy import IrrDatabase, Route6Object
from repro.bgp.speaker import BGPNetwork
from repro.bgp.topology import ASTopology, attach_stub, build_topology
from repro.dns.resolver import Resolver
from repro.dns.umbrella import UmbrellaList
from repro.dns.zone import Zone
from repro.errors import ExperimentError
from repro.hitlist.service import HitlistService
from repro.net.lpm import NO_MATCH, build_matcher
from repro.net.prefix import Prefix
from repro.sim.clock import WEEK
from repro.sim.events import Simulator
from repro.sim.rng import RngStreams
from repro.telescope.capture import CaptureFilter, PacketCapture
from repro.telescope.productive import ProductiveSubnet
from repro.telescope.reactive import ReactiveResponder
from repro.telescope.telescope import Telescope, TelescopeKind

#: Prefixes of the deployment (documentation-safe 3fff::/20 space).
T1_PREFIX = Prefix.parse("3fff:1000::/32")
T2_PREFIX = Prefix.parse("3fff:2000::/48")
COVERING_PREFIX = Prefix.parse("3fff:4000::/29")
T3_PREFIX = Prefix.parse("3fff:4000:3::/48")
T4_PREFIX = Prefix.parse("3fff:4000:4::/48")

#: ASNs of the measurement infrastructure.
TELESCOPE_ASN = 64500
COVERING_ASN = 64499

# splitmix64 finalizer constants for the delivery-loss hash coin.
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)


def _loss_uniforms(dst_hi: np.ndarray, dst_lo: np.ndarray,
                   time: np.ndarray, seed: int) -> np.ndarray:
    """Per-packet uniform [0, 1) loss coins, as a pure function of packet.

    Keyed on ``(dst, time, seed)`` through a splitmix64-style finalizer,
    so the coin for a packet never depends on draw order: the scalar and
    batch routing paths, a checkpoint/resume run, and every sharded
    partition of the scanner population all flip the same coin for the
    same packet.
    """
    with np.errstate(over="ignore"):
        x = (np.ascontiguousarray(dst_hi, dtype=np.uint64)
             ^ (np.ascontiguousarray(dst_lo, dtype=np.uint64) * _MIX_A)
             ^ np.ascontiguousarray(time, dtype=np.float64).view(np.uint64)
             ^ np.uint64(seed & 0xFFFF_FFFF_FFFF_FFFF))
        x = (x ^ (x >> np.uint64(30))) * _MIX_B
        x = (x ^ (x >> np.uint64(27))) * _MIX_C
        x ^= x >> np.uint64(31)
    # top 53 bits -> float64 in [0, 1), the usual uint64-to-double map
    return (x >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


@dataclass
class Deployment:
    """All infrastructure pieces of the measurement setup."""

    simulator: Simulator
    streams: RngStreams
    topology: ASTopology
    network: BGPNetwork
    collector: RouteCollector
    hitlist: HitlistService
    resolver: Resolver
    umbrella: UmbrellaList
    irr: IrrDatabase
    looking_glass: LookingGlass
    telescopes: dict[str, Telescope]
    controller: SplitController
    productive: ProductiveSubnet
    rdns_zone: Zone
    baseline_weeks: int = 12
    #: set by :func:`build_deployment` when route-object creation is armed.
    route_object_created_at: float | None = None
    #: T1 data-plane outage windows [start, end) installed by the fault
    #: injector (BGP session flaps); packets to T1 are unrouted inside.
    t1_outages: list[tuple[float, float]] = field(default_factory=list)
    #: probabilistic substrate delivery loss (fault injection); a routed
    #: packet is dropped in flight with this probability. The coin for a
    #: packet is a pure hash of ``(dst, time, loss_seed)``, so the
    #: decision depends only on the packet itself — never on how many
    #: other packets were routed before it. That keeps faulted runs
    #: byte-identical between the scalar and batch paths and across any
    #: sharding of the scanner population.
    loss_rate: float = 0.0
    loss_seed: int = 0
    # routing-epoch machinery of route_batch, built lazily from the
    # controller schedule
    _epoch_boundaries: object = field(default=None, repr=False)
    _epoch_matchers: dict = field(default_factory=dict, repr=False)

    @property
    def t1(self) -> Telescope:
        return self.telescopes["T1"]

    @property
    def t2(self) -> Telescope:
        return self.telescopes["T2"]

    @property
    def t3(self) -> Telescope:
        return self.telescopes["T3"]

    @property
    def t4(self) -> Telescope:
        return self.telescopes["T4"]

    # -- data plane ------------------------------------------------------------

    def add_t1_outage(self, start: float, end: float) -> None:
        """Register a T1 data-plane outage (fault injection).

        Invalidates the routing-epoch caches so :meth:`route_batch`
        re-derives its boundaries with the outage edges included.
        """
        self.t1_outages.append((float(start), float(end)))
        self._epoch_boundaries = None
        self._epoch_matchers.clear()

    def _t1_down(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.t1_outages)

    def _lost(self, dst: int, now: float) -> bool:
        """One in-flight loss coin for the scalar routing path."""
        if self.loss_rate <= 0.0:
            return False
        coin = _loss_uniforms(
            np.array([dst >> 64], dtype=np.uint64),
            np.array([dst & 0xFFFF_FFFF_FFFF_FFFF], dtype=np.uint64),
            np.array([now], dtype=np.float64),
            self.loss_seed)
        if float(coin[0]) < self.loss_rate:
            obs.add("faults.packets_lost_total")
            return True
        return False

    def route(self, dst: int, now: float | None = None) -> Telescope | None:
        """Which telescope captures a packet to ``dst`` right now.

        T1 is reachable only while its covering announcement cycle is
        active (and not flapped down by a fault); T2 and the /29 (hence
        T3/T4) are stable. Packets into the /29 outside T3/T4 belong to
        the prefix owner and are invisible.
        """
        if now is None:
            now = self.simulator.now
        if T2_PREFIX.contains_address(dst):
            return None if self._lost(dst, now) else self.telescopes["T2"]
        if T3_PREFIX.contains_address(dst):
            return None if self._lost(dst, now) else self.telescopes["T3"]
        if T4_PREFIX.contains_address(dst):
            return None if self._lost(dst, now) else self.telescopes["T4"]
        if COVERING_PREFIX.contains_address(dst):
            return None
        if T1_PREFIX.contains_address(dst):
            if self.t1_outages and self._t1_down(now):
                return None
            cycle = self.controller.cycle_at(now)
            if cycle is None:
                return None
            for prefix in cycle.prefixes:
                if prefix.contains_address(dst):
                    return None if self._lost(dst, now) \
                        else self.telescopes["T1"]
        return None

    def _boundaries(self) -> np.ndarray:
        """Routing-epoch boundaries: every schedule announce/withdraw time.

        Between two consecutive boundaries the data plane is constant
        (:meth:`route` depends on time only through
        ``controller.cycle_at``, which is schedule-driven), so one prefix
        matcher per epoch reproduces :meth:`route` exactly.
        """
        if self._epoch_boundaries is None:
            times = set()
            for cycle in self.controller.schedule:
                times.add(cycle.announce_time)
                times.add(cycle.withdraw_time)
            for start, end in self.t1_outages:
                times.add(start)
                times.add(end)
            self._epoch_boundaries = np.array(sorted(times))
        return self._epoch_boundaries

    def _epoch_matcher(self, epoch: int):
        matcher = self._epoch_matchers.get(epoch)
        if matcher is None:
            boundaries = self._boundaries()
            probe = float("-inf") if epoch == 0 \
                else float(boundaries[epoch - 1])
            entries = [(T2_PREFIX, 1), (T3_PREFIX, 2), (T4_PREFIX, 3)]
            cycle = self.controller.cycle_at(probe)
            if cycle is not None and not (self.t1_outages
                                          and self._t1_down(probe)):
                entries.extend((prefix, 0) for prefix in cycle.prefixes)
            matcher = build_matcher(entries, default=NO_MATCH)
            self._epoch_matchers[epoch] = matcher
        return matcher

    def route_batch(self, dst_hi: np.ndarray, dst_lo: np.ndarray,
                    time: np.ndarray):
        """Vectorized, epoch-aware :meth:`route` over packet columns.

        Returns ``(slots, telescopes)`` where each row's slot indexes the
        telescope tuple, with ``-1`` for unrouted rows. Rows are grouped
        by routing epoch (``searchsorted`` over the schedule boundaries),
        so a session straddling an announce or withdraw still lands each
        packet on the table in force at its own timestamp.
        """
        epochs = np.searchsorted(self._boundaries(), time, side="right")
        first = int(epochs[0])
        telescopes = (self.telescopes["T1"], self.telescopes["T2"],
                      self.telescopes["T3"], self.telescopes["T4"])
        if epochs[0] == epochs[-1] and (epochs == first).all():
            slots = self._epoch_matcher(first).lookup(dst_hi, dst_lo)
        else:
            slots = np.empty(len(dst_hi), dtype=np.int16)
            for epoch in np.unique(epochs):
                rows = epochs == epoch
                slots[rows] = self._epoch_matcher(int(epoch)).lookup(
                    dst_hi[rows], dst_lo[rows])
        if self.loss_rate > 0.0:
            # one hash coin per *routed* row — the same coin the scalar
            # path computes for the same packet
            rows = np.flatnonzero(slots >= 0)
            if len(rows):
                coins = _loss_uniforms(dst_hi[rows], dst_lo[rows],
                                       time[rows], self.loss_seed)
                lost = coins < self.loss_rate
                n_lost = int(np.count_nonzero(lost))
                if n_lost:
                    slots = slots.copy() if slots.base is not None else slots
                    slots[rows[lost]] = -1
                    obs.add("faults.packets_lost_total", n_lost)
        return slots, telescopes

    def announced_t1_prefixes(self, now: float | None = None) \
            -> tuple[Prefix, ...]:
        if now is None:
            now = self.simulator.now
        return self.controller.announced_prefixes_at(now)

    def split_start(self) -> float:
        """Start time of the split (active) period."""
        return self.baseline_weeks * WEEK

    def cycles(self) -> list[AnnouncementCycle]:
        return list(self.controller.schedule)

    def total_packets(self) -> int:
        return sum(len(t.capture) for t in self.telescopes.values())

    # -- scheduled setup callbacks (picklable event actions) -----------------

    def _announce_stable(self) -> None:
        self.network.speaker(TELESCOPE_ASN).originate(T2_PREFIX)
        self.network.speaker(COVERING_ASN).originate(COVERING_PREFIX)

    def _create_route_object(self, when: float) -> None:
        stable_33 = T1_PREFIX.split()[0]
        self.irr.register(Route6Object(prefix=stable_33,
                                       origin=TELESCOPE_ASN), time=when)
        self.route_object_created_at = when


def build_deployment(streams: RngStreams,
                     simulator: Simulator | None = None,
                     baseline_weeks: int = 12,
                     cycle_weeks: int = 2,
                     num_cycles: int = 16,
                     num_tier1: int = 4,
                     num_tier2: int = 12,
                     num_stubs: int = 60,
                     feed_delay: float = 60.0,
                     create_route_object_after_weeks: int = 16,
                     replay_feed: "Sequence[CollectorEntry] | None" = None,
                     ) -> Deployment:
    """Assemble the four-telescope deployment of the paper.

    The returned deployment has the T1 schedule armed but the simulator not
    yet run; drive it through :class:`repro.experiment.driver`.

    ``replay_feed`` switches the deployment into recorded-timeline mode
    (shard workers, DESIGN §8): no BGP origination events are armed —
    neither the stable announcements nor the split schedule runs through
    the fabric — and the collector replays the given journal instead.
    Everything corpus-visible is unaffected: the data plane
    (:meth:`Deployment.route` / :meth:`Deployment.route_batch`) is
    driven by the static announcement schedule, not by RIB state, and
    scanners observe routing only through the collector feed, which the
    replay reproduces publication-for-publication.
    """
    if simulator is None:
        simulator = Simulator()
    topo_rng = streams.get("topology")
    topology = build_topology(topo_rng, num_tier1=num_tier1,
                              num_tier2=num_tier2, num_stubs=num_stubs)
    attach_stub(topology, TELESCOPE_ASN, topo_rng, name="telescope-as")
    attach_stub(topology, COVERING_ASN, topo_rng, name="covering-as")
    irr = IrrDatabase()
    network = BGPNetwork(topology, simulator, streams.get("bgp.delay"),
                         irr=irr)
    collector = RouteCollector(network=network, simulator=simulator,
                               feed_delay=feed_delay)
    hitlist = HitlistService(simulator=simulator)
    hitlist.attach(collector)
    hitlist.seed(T2_PREFIX)
    hitlist.seed(COVERING_PREFIX)

    umbrella = UmbrellaList()
    resolver = Resolver()
    rdns_zone = Zone(origin="rdns.")
    resolver.add_zone(rdns_zone)

    productive = ProductiveSubnet.build(T2_PREFIX,
                                        streams.get("productive"),
                                        umbrella=umbrella)
    resolver.add_zone(productive.zone)

    telescopes = {
        "T1": Telescope(name="T1", kind=TelescopeKind.PASSIVE,
                        prefixes=[T1_PREFIX],
                        capture=PacketCapture(name="T1")),
        "T2": Telescope(
            name="T2", kind=TelescopeKind.TRACEABLE,
            prefixes=[T2_PREFIX],
            capture=PacketCapture(
                name="T2",
                capture_filter=CaptureFilter(
                    exclude_dst_prefixes=productive.excluded_prefixes,
                    exclude_src_prefixes=productive.excluded_prefixes)),
            dns_exposed={productive.attractor_addr}),
        "T3": Telescope(name="T3", kind=TelescopeKind.PASSIVE,
                        prefixes=[T3_PREFIX],
                        capture=PacketCapture(name="T3")),
        "T4": Telescope(name="T4", kind=TelescopeKind.ACTIVE,
                        prefixes=[T4_PREFIX],
                        capture=PacketCapture(name="T4"),
                        responder=ReactiveResponder()),
    }

    # stable announcements: T2's /48 and the borrowed covering /29
    schedule = build_split_schedule(T1_PREFIX, baseline_weeks=baseline_weeks,
                                    cycle_weeks=cycle_weeks,
                                    num_cycles=num_cycles)
    controller = SplitController(speaker=network.speaker(TELESCOPE_ASN),
                                 simulator=simulator, schedule=schedule)
    deployment = Deployment(
        simulator=simulator, streams=streams, topology=topology,
        network=network, collector=collector, hitlist=hitlist,
        resolver=resolver, umbrella=umbrella, irr=irr,
        looking_glass=LookingGlass(network), telescopes=telescopes,
        controller=controller, productive=productive, rdns_zone=rdns_zone,
        baseline_weeks=baseline_weeks)

    if replay_feed is None:
        simulator.schedule_at(0.0, deployment._announce_stable,
                              label="stable:announce")
        controller.start()
    else:
        collector.arm_replay(replay_feed)

    if create_route_object_after_weeks is not None:
        when = create_route_object_after_weeks * WEEK
        simulator.schedule_at(when,
                              partial(deployment._create_route_object, when),
                              label="irr:create-route6")
    return deployment
