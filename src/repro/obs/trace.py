"""Hierarchical wall-clock tracing spans.

A :class:`Tracer` records a forest of :class:`Span` objects. Spans nest
through a per-thread stack, carry free-form attributes, and know their
wall-clock duration. Two export forms:

- :meth:`Tracer.render_tree` — an indented text summary for terminals;
- :meth:`Tracer.chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events) loadable in Perfetto / ``chrome://tracing``.

The tracer never samples the clock unless a span is actually opened, so
an idle tracer costs nothing.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from typing import Any, Callable


class Span:
    """One timed region. Used as a context manager via ``Tracer.span``."""

    __slots__ = ("name", "attrs", "start", "end", "children", "tid",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start: float | None = None
        self.end: float | None = None
        self.children: list[Span] = []
        self.tid = threading.get_ident()

    @property
    def duration(self) -> float:
        """Wall seconds; 0.0 until the span has closed."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6f}s, " \
               f"{len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing span: the disabled-path cost is one comparison."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


#: Module-level singleton handed out whenever tracing is disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into per-thread trees under one wall-clock epoch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new unstarted span; use as ``with tracer.span("x") as sp:``."""
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def wrap(self, name: str | None = None, **attrs: Any) -> Callable:
        """Decorator form: run the function inside a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- introspection -----------------------------------------------------

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> list[Span]:
        """All spans (depth-first) whose name matches exactly."""
        out: list[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                out.append(span)
            for child in span.children:
                walk(child)

        for root in self.roots():
            walk(root)
        return out

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- export ------------------------------------------------------------

    def render_tree(self, min_duration: float = 0.0) -> str:
        """Indented per-span summary, children sorted by start time."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            if span.duration < min_duration:
                return
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            pad = "  " * depth
            lines.append(f"{pad}{span.name:<{max(44 - 2 * depth, 8)}}"
                         f"{span.duration * 1e3:>12.3f} ms"
                         + (f"  [{attrs}]" if attrs else ""))
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)

    def anchor_wall(self) -> float:
        """Wall-clock (epoch seconds) at this tracer's ``ts=0``.

        Lets another process shift these spans onto its own trace
        timeline: the difference between two tracers' anchors is the
        offset between their ``ts`` scales.
        """
        return time.time() - (time.perf_counter() - self.epoch)

    def chrome_events(self, pid: int | None = None,
                      shift_us: float = 0.0) -> list[dict]:
        """Flat Chrome trace events (``ph: "X"``), sorted by start.

        ``pid`` overrides the process id stamped on every event and
        ``shift_us`` translates their timestamps — both used when a
        coordinator merges shard-worker span trees into one trace.
        """
        events: list[dict] = []
        pid = os.getpid() if pid is None else pid
        epoch = self.epoch

        def walk(span: Span) -> None:
            if span.start is None:
                return
            end = span.end if span.end is not None else span.start
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - epoch) * 1e6 + shift_us,
                "dur": (end - span.start) * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            })
            for child in span.children:
                walk(child)

        for root in self.roots():
            walk(root)
        events.sort(key=lambda e: e["ts"])
        return events

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (``traceEvents`` array)."""
        return {"traceEvents": self.chrome_events(),
                "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")


def process_name_event(pid: int, name: str) -> dict:
    """A Chrome-trace metadata event labeling ``pid`` in the UI.

    Perfetto renders each pid as a process track titled with this name —
    how merged shard traces stay attributable ("shard 0", "shard 1",
    "coordinator") even though every worker has an arbitrary OS pid.
    """
    return {"name": "process_name", "ph": "M", "cat": "__metadata",
            "ts": 0, "pid": pid, "tid": 0, "args": {"name": name}}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
