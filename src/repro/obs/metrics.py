"""Process-wide metrics registry: counters, gauges, log-scale histograms.

Zero-dependency (stdlib only) so every layer of the pipeline can be
instrumented without import-order concerns. A :class:`MetricsRegistry`
hands out typed metric instances keyed by ``(name, labels)``; instances
are cached, so call sites on hot paths can hold a bound reference and
skip the registry lookup entirely.

Exports snapshot to plain dicts (JSON-friendly) and to the Prometheus
text exposition format, so a campaign's self-measurements can be diffed
across PRs exactly like the paper's per-telescope packet counts.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Iterable

LabelItems = tuple[tuple[str, str], ...]

#: Default histogram bounds: half-decade log-scale steps, 1e-6 .. 1e6.
#: Observations above the last bound land in the +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (e / 2) for e in range(-12, 13))

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL = re.compile(r"[^a-zA-Z0-9_]")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _label_items(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`_render_key` for well-formed label values.

    Label values containing ``,`` or ``=`` are ambiguous in the rendered
    form and will not round-trip; the registry's own labels (telescope
    names, task names, shard indices) never contain either.
    """
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: dict[str, str] = {}
    for item in rest[:-1].split(","):
        k, _, v = item.partition("=")
        labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Instantaneous value that can move both ways."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark of everything seen."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with log-scale default bounds.

    Bucket counts are non-cumulative internally; the Prometheus export
    emits the conventional cumulative ``_bucket{le=...}`` series.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: LabelItems = (),
                 bounds: Iterable[float] | None = None) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds)) if bounds is not None \
            else DEFAULT_BUCKETS
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> dict[str, int]:
        """Non-cumulative counts keyed by upper bound ('inf' for overflow)."""
        out = {repr(b): c for b, c in zip(self.bounds, self._counts)}
        out["inf"] = self._counts[-1]
        return out

    def merge_snapshot(self, data: dict) -> None:
        """Fold a snapshot of a histogram with the same bounds into this
        one; buckets absent on either side are left untouched."""
        buckets = data.get("buckets", {})
        with self._lock:
            for index, bound in enumerate(self.bounds):
                self._counts[index] += int(buckets.get(repr(bound), 0))
            self._counts[-1] += int(buckets.get("inf", 0))
            self._sum += float(data.get("sum", 0.0))
            self._count += int(data.get("count", 0))

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Thread-safe get-or-create store for all of a run's metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}
        self._help: dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` docstring to a metric family."""
        with self._lock:
            self._help[name] = help_text

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter(*key))
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge(*key))
        return metric

    def histogram(self, name: str, bounds: Iterable[float] | None = None,
                  **labels: object) -> Histogram:
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    key, Histogram(key[0], key[1], bounds=bounds))
        return metric

    # -- snapshot / reset --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every metric (JSON-serializable)."""
        with self._lock:
            counters = {_render_key(*k): c.value
                        for k, c in sorted(self._counters.items())}
            gauges = {_render_key(*k): g.value
                      for k, g in sorted(self._gauges.items())}
            histograms = {
                _render_key(*k): {"count": h.count, "sum": h.sum,
                                  "buckets": h.bucket_counts()}
                for k, h in sorted(self._histograms.items())}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        """Zero every metric in place (bound references stay valid)."""
        with self._lock:
            metrics = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values()))
        for metric in metrics:
            metric.reset()

    def merge_snapshot(self, snapshot: dict, **extra_labels: object) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the sharded corpus builder to surface worker-process
        metrics in the coordinator's registry: counters add, gauges keep
        the maximum observed value, histograms merge bucket counts (same
        bounds assumed). ``extra_labels`` are appended to every folded
        metric — pass ``shard=i`` so worker series stay attributable and
        never collide with the coordinator's own.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = _parse_key(key)
            labels.update(extra_labels)
            self.counter(name, **labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_key(key)
            labels.update(extra_labels)
            self.gauge(name, **labels).set_max(value)
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = _parse_key(key)
            labels.update(extra_labels)
            bounds = sorted(float(b) for b in data.get("buckets", {})
                            if b != "inf")
            self.histogram(name, bounds=bounds or None,
                           **labels).merge_snapshot(data)

    # -- export ------------------------------------------------------------

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric name).

        Conformant with the text format 0.0.4: every family gets one
        ``# HELP`` and one ``# TYPE`` line (``describe`` customizes the
        help text), label values are escaped (backslash, quote,
        newline), histograms emit cumulative ``_bucket`` series ending
        in ``le="+Inf"`` plus ``_sum``/``_count``, and the exposition
        ends with a trailing newline.
        """
        lines: list[str] = []
        seen_types: set[str] = set()

        def header(name: str, kind: str) -> str:
            """Sanitized family name, emitting HELP/TYPE exactly once."""
            prom = _PROM_NAME.sub("_", name)
            if prom not in seen_types:
                seen_types.add(prom)
                help_text = help_map.get(name, f"repro {kind} {name}")
                lines.append(f"# HELP {prom} {escape_help_text(help_text)}")
                lines.append(f"# TYPE {prom} {kind}")
            return prom

        def sample(prom: str, labels: LabelItems, value: float,
                   extra: tuple[tuple[str, str], ...] = ()) -> None:
            items = labels + extra
            rendered = "{" + ",".join(
                f'{_PROM_LABEL.sub("_", k)}="{escape_label_value(v)}"'
                for k, v in items) + "}" if items else ""
            if value == math.inf:
                text = "+Inf"
            elif float(value).is_integer():
                text = str(int(value))
            else:
                text = repr(float(value))
            lines.append(f"{prom}{rendered} {text}")

        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            help_map = dict(self._help)
        for (name, labels), counter in counters:
            sample(header(name, "counter"), labels, counter.value)
        for (name, labels), gauge in gauges:
            sample(header(name, "gauge"), labels, gauge.value)
        for (name, labels), hist in histograms:
            prom = header(name, "histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist._counts):
                cumulative += count
                sample(prom + "_bucket", labels, cumulative,
                       extra=(("le", repr(bound)),))
            sample(prom + "_bucket", labels, hist.count,
                   extra=(("le", "+Inf"),))
            sample(prom + "_sum", labels, hist.sum)
            sample(prom + "_count", labels, hist.count)
        return "\n".join(lines) + "\n"
