"""repro.obs — zero-dependency observability for the whole pipeline.

Three parts (see DESIGN.md §5):

- :mod:`repro.obs.metrics` — thread-safe process-wide registry of
  counters, gauges and log-scale histograms with JSON and Prometheus
  exports;
- :mod:`repro.obs.trace` — hierarchical wall-clock spans with a
  context-manager/decorator API and Chrome trace-event export;
- :mod:`repro.obs.recorder` — the :class:`FlightRecorder` a campaign
  attaches to (spans + metrics + sim-time heartbeat), plus the cheap
  module-level helpers every instrumented call site uses.

Instrumented code imports this package only::

    from repro import obs

    with obs.span("analysis.sessionize", telescope="T1"):
        ...
    obs.add("telescope.packets_total", telescope="T1")

With no recorder installed every helper is a global read plus a ``None``
check — cheap enough for per-packet hot paths.
"""

from repro.obs import events, ledger, log, server
from repro.obs.events import EventLog
from repro.obs.events import emit as event
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.recorder import (FlightRecorder, add, current, install,
                                observe, set_gauge, span, traced,
                                uninstall)
from repro.obs.server import ObsServer, StatusBoard
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "Tracer", "NULL_SPAN",
    "FlightRecorder", "current", "install", "uninstall",
    "span", "add", "set_gauge", "observe", "traced",
    "log", "events", "event", "EventLog", "server", "ObsServer",
    "StatusBoard", "ledger",
]
