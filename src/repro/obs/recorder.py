"""The campaign flight recorder and the module-level instrumentation API.

One :class:`FlightRecorder` combines a :class:`~repro.obs.trace.Tracer`,
a :class:`~repro.obs.metrics.MetricsRegistry` and a sim-time heartbeat.
A campaign installs it process-wide (``with FlightRecorder(...):`` or
:func:`install`), after which the cheap module-level helpers —
:func:`span`, :func:`add`, :func:`set_gauge`, :func:`observe`,
:func:`traced` — route into it from every instrumented layer.

When no recorder is installed the helpers are no-op-cheap: one module
global read and a ``None`` comparison, returning a shared null span.
That property is asserted by the ``@pytest.mark.overhead`` guard tests.
"""

from __future__ import annotations

import functools
import json
import os
import time
from typing import Any, Callable

from repro.obs import events as obsevents
from repro.obs import log as obslog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer, process_name_event

_DAY = 86400.0

#: The installed recorder, or None. Read directly on hot paths.
_active: "FlightRecorder | None" = None


def current() -> "FlightRecorder | None":
    """The installed recorder, if any."""
    return _active


def install(recorder: "FlightRecorder") -> "FlightRecorder":
    """Make ``recorder`` the process-wide recorder; returns it."""
    global _active
    _active = recorder
    return recorder


def uninstall() -> None:
    global _active
    _active = None


# -- cheap instrumentation helpers (the only API hot paths should use) ----

def span(name: str, **attrs: Any):
    """A tracer span when recording, the shared null span otherwise."""
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.tracer.span(name, **attrs)


def add(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter iff a recorder is installed."""
    recorder = _active
    if recorder is not None:
        recorder.metrics.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels: object) -> None:
    recorder = _active
    if recorder is not None:
        recorder.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: object) -> None:
    recorder = _active
    if recorder is not None:
        recorder.metrics.histogram(name, **labels).observe(value)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator: run the function inside a span of the active recorder.

    Resolution happens at call time, so decorating import-time-defined
    functions costs nothing until a recorder is actually installed.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            recorder = _active
            if recorder is None:
                return fn(*args, **kwargs)
            with recorder.tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class FlightRecorder:
    """Spans + metrics + heartbeat for one campaign run.

    Attach it to a :class:`repro.sim.events.Simulator` to get a periodic
    sim-time heartbeat (events/sec, queue depth, % of horizon, wall-clock
    ETA) on the ``repro.obs`` logger, and final executed/cancelled/
    high-water accounting in the metrics registry.

    Usable as a context manager: entering installs it process-wide,
    exiting restores whatever was installed before.
    """

    def __init__(self, heartbeat_interval: float | None = None,
                 logger=None) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.heartbeat_interval = heartbeat_interval
        self.log = logger or obslog.get_logger("obs")
        self._horizon = 0.0
        self._attach_wall = 0.0
        self._beat_wall = 0.0
        self._beat_events = 0
        self._beat_counters: dict[str, float] = {}
        self._previous: FlightRecorder | None = None
        #: Chrome trace events merged in from other processes (shard
        #: workers), already shifted onto this tracer's timeline.
        self.foreign_events: list[dict] = []
        #: pid -> display name for merged-trace process tracks.
        self.process_names: dict[int, str] = {}

    # -- process-wide installation ----------------------------------------

    def __enter__(self) -> "FlightRecorder":
        self._previous = current()
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._previous is not None:
            install(self._previous)
        else:
            uninstall()
        self._previous = None
        return False

    # -- simulator heartbeat ----------------------------------------------

    def attach(self, simulator, horizon: float) -> None:
        """Hook the simulator's heartbeat and remember the horizon."""
        self._horizon = float(horizon)
        self._attach_wall = self._beat_wall = time.monotonic()
        self._beat_events = simulator.events_executed
        if self.heartbeat_interval and self.heartbeat_interval > 0:
            simulator.heartbeat = self._heartbeat
            simulator.heartbeat_interval = self.heartbeat_interval

    def detach(self, simulator) -> None:
        """Unhook and fold the simulator's counters into the registry."""
        if simulator.heartbeat == self._heartbeat:
            simulator.heartbeat = None
        metrics = self.metrics
        metrics.counter("sim.events_executed_total").inc(
            simulator.events_executed
            - metrics.counter("sim.events_executed_total").value)
        queue = simulator.queue
        metrics.counter("sim.events_cancelled_total").inc(
            queue.events_cancelled
            - metrics.counter("sim.events_cancelled_total").value)
        metrics.gauge("sim.queue_high_water").set_max(queue.high_water)
        metrics.gauge("sim.queue_depth").set(len(queue))
        self.emit_metric_deltas()

    def _heartbeat(self, simulator) -> None:
        now_wall = time.monotonic()
        events = simulator.events_executed
        dt = now_wall - self._beat_wall
        rate = (events - self._beat_events) / dt if dt > 0 else 0.0
        self._beat_wall = now_wall
        self._beat_events = events
        depth = len(simulator.queue)
        frac = simulator.now / self._horizon if self._horizon > 0 else 0.0
        elapsed = now_wall - self._attach_wall
        eta = elapsed * (1.0 - frac) / frac if frac > 0 else float("inf")
        self.metrics.gauge("sim.queue_depth").set(depth)
        self.metrics.gauge("sim.events_per_sec").set(rate)
        self.metrics.gauge("sim.progress").set(frac)
        self.metrics.gauge("sim.queue_high_water").set_max(
            simulator.queue.high_water)
        obsevents.emit("heartbeat", sim_days=round(simulator.now / _DAY, 3),
                       progress=round(frac, 6), events=events,
                       events_per_sec=round(rate, 1), queue_depth=depth,
                       eta_s=round(eta, 1) if eta != float("inf") else None)
        self.emit_metric_deltas()
        self.log.info(
            "heartbeat: t=%.1fd (%.0f%% of horizon) | %s events "
            "(%.0f ev/s) | queue depth %s | ETA %.0fs",
            simulator.now / _DAY, frac * 100.0, f"{events:,}", rate,
            f"{depth:,}", eta)

    def emit_metric_deltas(self) -> None:
        """Emit the counter movement since the last call as one event.

        Shard workers call this on every heartbeat (and once at detach),
        so the coordinator's spool tailer can fold worker counters into
        its live registry incrementally — the deltas over a worker's
        lifetime sum exactly to its final snapshot.
        """
        if obsevents.current() is None:
            return
        snapshot = self.metrics.snapshot()["counters"]
        deltas = {}
        for key, value in snapshot.items():
            moved = value - self._beat_counters.get(key, 0.0)
            if moved:
                deltas[key] = moved
        self._beat_counters = snapshot
        if deltas:
            obsevents.emit("metrics.delta", counters=deltas)

    # -- cross-process trace merging ---------------------------------------

    def add_foreign_events(self, events: list[dict],
                           pid: int | None = None,
                           name: str | None = None) -> None:
        """Merge Chrome trace events from another process into the trace.

        ``events`` must already be shifted onto this tracer's timeline
        (see :meth:`repro.obs.trace.Tracer.anchor_wall`); ``name``
        labels the ``pid``'s process track in the merged trace.
        """
        self.foreign_events.extend(events)
        if pid is not None and name:
            self.process_names[int(pid)] = name

    def chrome_trace(self) -> dict:
        """The merged Chrome trace: local spans + foreign (shard) spans,
        plus process-name metadata so every pid reads as a labeled track."""
        events = self.tracer.chrome_events()
        names = dict(self.process_names)
        if self.foreign_events or names:
            names.setdefault(os.getpid(), "coordinator")
        events.extend(self.foreign_events)
        events.sort(key=lambda e: e.get("ts", 0))
        meta = [process_name_event(pid, name)
                for pid, name in sorted(names.items())]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    # -- export ------------------------------------------------------------

    def write_trace(self, path: str) -> None:
        """Chrome trace-event JSON for Perfetto / chrome://tracing.

        Includes any merged shard-worker spans (labeled process tracks).
        """
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")

    def write_metrics(self, path: str) -> None:
        """Metrics snapshot as JSON (Prometheus form: ``to_prometheus``)."""
        with open(path, "w") as fh:
            json.dump(self.metrics.snapshot(), fh, indent=1)
            fh.write("\n")

    def render(self, min_duration: float = 0.0) -> str:
        """Human summary: span tree plus counter/gauge lines."""
        snap = self.metrics.snapshot()
        lines = [self.tracer.render_tree(min_duration=min_duration)]
        if snap["counters"] or snap["gauges"]:
            lines.append("")
        for key, value in snap["counters"].items():
            lines.append(f"{key} = {value:g}")
        for key, value in snap["gauges"].items():
            lines.append(f"{key} = {value:g}")
        return "\n".join(line for line in lines if line is not None)
