"""Stdlib-logging helpers for pipeline progress output.

All of repro's progress chatter goes through the ``repro`` logger
hierarchy: payloads (tables, figures, schedules) stay on stdout so they
remain machine-parseable, while progress and heartbeat lines land on
stderr at a level the user controls with ``--log-level``.
"""

from __future__ import annotations

import logging
import sys
import time

LOGGER = logging.getLogger("repro")

LEVELS = ("debug", "info", "warning", "error")

#: Format used when a run id is configured: every line carries the run
#: id (suffixed ``/sN`` in shard workers) and the process-local elapsed
#: seconds, so interleaved shard/coordinator stderr stays attributable.
RUN_FMT = "[%(run_id)s +%(elapsed)7.1fs] %(message)s"

_handler: logging.Handler | None = None
_run_filter: "_RunContextFilter | None" = None


class _RunContextFilter(logging.Filter):
    """Injects ``run_id`` and ``elapsed`` fields into every record."""

    def __init__(self, run_id: str) -> None:
        super().__init__()
        self.run_id = run_id
        self.started = time.monotonic()

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = self.run_id
        record.elapsed = time.monotonic() - self.started
        return True


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it."""
    return LOGGER if not name else LOGGER.getChild(name)


def configure(level: str = "info", stream=None, fmt: str | None = None,
              run_id: str | None = None) -> logging.Logger:
    """Idempotently attach one stderr handler and set the level.

    Repeated calls re-level the existing handler instead of stacking new
    ones, so tests and long-lived processes can reconfigure freely.
    ``run_id`` switches the line format to :data:`RUN_FMT` (run id +
    elapsed seconds on every line); shard workers reconfigure with
    ``<run_id>/s<shard>`` so a merged stderr stream stays attributable.
    """
    global _handler, _run_filter
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r} "
                         f"(choose from {', '.join(LEVELS)})")
    if fmt is None:
        fmt = RUN_FMT if run_id else "%(message)s"
    if _handler is None:
        _handler = logging.StreamHandler(stream or sys.stderr)
        LOGGER.addHandler(_handler)
        LOGGER.propagate = False
    elif stream is not None:
        _handler.setStream(stream)
    _handler.setFormatter(logging.Formatter(fmt))
    if _run_filter is not None:
        _handler.removeFilter(_run_filter)
        _run_filter = None
    if run_id:
        _run_filter = _RunContextFilter(run_id)
        _handler.addFilter(_run_filter)
    LOGGER.setLevel(numeric)
    return LOGGER


def debug(msg: str, *args) -> None:
    LOGGER.debug(msg, *args)


def info(msg: str, *args) -> None:
    LOGGER.info(msg, *args)


def warning(msg: str, *args) -> None:
    LOGGER.warning(msg, *args)


def error(msg: str, *args) -> None:
    LOGGER.error(msg, *args)
