"""Stdlib-logging helpers for pipeline progress output.

All of repro's progress chatter goes through the ``repro`` logger
hierarchy: payloads (tables, figures, schedules) stay on stdout so they
remain machine-parseable, while progress and heartbeat lines land on
stderr at a level the user controls with ``--log-level``.
"""

from __future__ import annotations

import logging
import sys

LOGGER = logging.getLogger("repro")

LEVELS = ("debug", "info", "warning", "error")

_handler: logging.Handler | None = None


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it."""
    return LOGGER if not name else LOGGER.getChild(name)


def configure(level: str = "info", stream=None, fmt: str = "%(message)s") \
        -> logging.Logger:
    """Idempotently attach one stderr handler and set the level.

    Repeated calls re-level the existing handler instead of stacking new
    ones, so tests and long-lived processes can reconfigure freely.
    """
    global _handler
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r} "
                         f"(choose from {', '.join(LEVELS)})")
    if _handler is None:
        _handler = logging.StreamHandler(stream or sys.stderr)
        _handler.setFormatter(logging.Formatter(fmt))
        LOGGER.addHandler(_handler)
        LOGGER.propagate = False
    elif stream is not None:
        _handler.setStream(stream)
    LOGGER.setLevel(numeric)
    return LOGGER


def debug(msg: str, *args) -> None:
    LOGGER.debug(msg, *args)


def info(msg: str, *args) -> None:
    LOGGER.info(msg, *args)


def warning(msg: str, *args) -> None:
    LOGGER.warning(msg, *args)


def error(msg: str, *args) -> None:
    LOGGER.error(msg, *args)
