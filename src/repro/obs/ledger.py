"""Run ledger: a durable, structured record of every campaign run.

One 11-month measurement is one run; the longitudinal frontier
(Tanveer et al., CoNEXT 2025) is *comparing* runs across telescope
configurations and over time. The ledger is the substrate for that:
``run_experiment(ledger_dir=...)`` writes a ``run.json`` manifest per
run — run id, config (full dict + sha256 digest), git provenance,
seeds, per-stage wall/CPU seconds, the final metrics snapshot, the
corpus digest, the armed fault plan, and coverage gaps — into
``<ledger_dir>/<run_id>/``, next to the run's event log when one was
recorded.

``repro runs list|show|compare`` reads the ledger back:

- ``list`` — one line per run (id, date, scale/seed/shards, packets,
  wall seconds);
- ``show`` — the full manifest of one run;
- ``compare`` — diff two runs' stage timings and metrics, flagging
  stage-time regressions beyond a threshold (default 10%) — the same
  contract as ``run_benches.py --compare``, but over *any* two recorded
  runs rather than two benchmark reports.

The module is deliberately pure stdlib + pure data (no imports from the
experiment layer), so the obs package never participates in an import
cycle with the code it observes.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path

#: Bumped whenever manifest fields change meaning.
LEDGER_SCHEMA = 1

MANIFEST_NAME = "run.json"

#: Default regression threshold for ``compare_runs`` (fractional).
DEFAULT_THRESHOLD = 0.10

#: Stages shorter than this (seconds) are never flagged as regressions —
#: their timing is dominated by scheduler noise, not code.
MIN_REGRESSION_SECONDS = 0.05


def run_dir(ledger_dir: str | Path, run_id: str) -> Path:
    return Path(ledger_dir) / run_id


def config_to_dict(config) -> dict:
    """A JSON-able dict of an :class:`ExperimentConfig` (duck-typed)."""
    if is_dataclass(config) and not isinstance(config, type):
        return json.loads(json.dumps(asdict(config), default=str))
    return dict(config) if isinstance(config, dict) else {"repr": repr(config)}


def config_digest(config_dict: dict) -> str:
    """Canonical sha256 of a config dict (key-sorted JSON)."""
    blob = json.dumps(config_dict, sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def git_provenance(cwd: str | Path | None = None) -> dict | None:
    """``{"commit": ..., "dirty": ...}`` of the working tree, if any."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0)
        if commit.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0)
        return {"commit": commit.stdout.strip(),
                "dirty": bool(status.stdout.strip())
                if status.returncode == 0 else None}
    except (OSError, subprocess.SubprocessError):
        return None


def build_manifest(*, run_id: str, config, stage_seconds: dict,
                   wall_seconds: float,
                   stage_cpu_seconds: dict | None = None,
                   shards: int | None = None,
                   corpus_summary: dict | None = None,
                   corpus_digest: str | None = None,
                   coverage_gaps: dict | None = None,
                   fault_plan: dict | None = None,
                   metrics: dict | None = None,
                   events_file: str | None = None) -> dict:
    """Assemble one schema-versioned ``run.json`` payload."""
    config_dict = config_to_dict(config)
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id,
        "created_wall": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": config_dict,
        "config_digest": config_digest(config_dict),
        "git": git_provenance(),
        "seed": config_dict.get("seed"),
        "scale": config_dict.get("scale"),
        "shards": shards,
        "wall_seconds": round(float(wall_seconds), 4),
        "stage_seconds": {k: round(float(v), 4)
                          for k, v in (stage_seconds or {}).items()},
        "stage_cpu_seconds": {k: round(float(v), 4)
                              for k, v in (stage_cpu_seconds or {}).items()},
        "corpus": corpus_summary or {},
        "corpus_digest": corpus_digest,
        "coverage_gaps": {k: [list(w) for w in v]
                          for k, v in (coverage_gaps or {}).items()},
        "fault_plan": fault_plan,
        "metrics": metrics or {},
        "events_file": events_file,
    }


def write_manifest(ledger_dir: str | Path, manifest: dict) -> Path:
    """Atomically persist ``manifest`` under its run's ledger directory."""
    directory = run_dir(ledger_dir, manifest["run_id"])
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / MANIFEST_NAME
    tmp = final.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, default=str)
        fh.write("\n")
    os.replace(tmp, final)
    return final


def load_manifest(ledger_dir: str | Path, run_id: str) -> dict:
    """Read one run's manifest; raises ``FileNotFoundError`` if absent."""
    path = run_dir(ledger_dir, run_id) / MANIFEST_NAME
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def list_runs(ledger_dir: str | Path) -> list[dict]:
    """Every readable manifest in the ledger, oldest run id first.

    Unreadable or manifest-less entries are skipped: the ledger is an
    operational artifact and a partial listing beats a crash.
    """
    directory = Path(ledger_dir)
    if not directory.is_dir():
        return []
    manifests = []
    for child in sorted(directory.iterdir()):
        path = child / MANIFEST_NAME
        if not path.is_file():
            continue
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(manifest, dict) and manifest.get("run_id"):
            manifests.append(manifest)
    return manifests


def render_runs_table(manifests: list[dict]) -> str:
    """The ``repro runs list`` table."""
    if not manifests:
        return "(no runs in ledger)"
    header = (f"{'run_id':<24} {'date':<20} {'scale':>6} {'seed':>6} "
              f"{'shards':>6} {'packets':>12} {'wall_s':>8}")
    lines = [header, "-" * len(header)]
    for m in manifests:
        corpus = m.get("corpus") or {}
        lines.append(
            f"{m.get('run_id', '?'):<24} "
            f"{str(m.get('created_iso', ''))[:19]:<20} "
            f"{m.get('scale', '?'):>6} {m.get('seed', '?'):>6} "
            f"{m.get('shards') or 1:>6} "
            f"{corpus.get('total_packets', '?'):>12} "
            f"{m.get('wall_seconds', '?'):>8}")
    return "\n".join(lines)


class RunComparison:
    """The diff of two run manifests (``repro runs compare``)."""

    def __init__(self, old: dict, new: dict,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        self.old = old
        self.new = new
        self.threshold = threshold
        self.stage_rows: list[tuple[str, float | None, float | None,
                                    float | None, str]] = []
        self.metric_rows: list[tuple[str, float, float]] = []
        self.notes: list[str] = []
        #: stage names whose wall time regressed beyond the threshold.
        self.regressions: list[str] = []
        self._diff()

    def _diff(self) -> None:
        old, new = self.old, self.new
        if old.get("config_digest") != new.get("config_digest"):
            self.notes.append(
                "configs differ (digest "
                f"{str(old.get('config_digest'))[:12]}… vs "
                f"{str(new.get('config_digest'))[:12]}…) — timing deltas "
                "reflect workload changes, not just code")
        old_digest, new_digest = old.get("corpus_digest"), \
            new.get("corpus_digest")
        if old_digest and new_digest:
            self.notes.append(
                "corpus digests match" if old_digest == new_digest
                else "corpus digests DIFFER — the runs produced "
                     "different packets")
        old_stages = old.get("stage_seconds", {})
        new_stages = new.get("stage_seconds", {})
        for stage in sorted(set(old_stages) | set(new_stages)):
            a, b = old_stages.get(stage), new_stages.get(stage)
            if a is None or b is None:
                self.stage_rows.append((stage, a, b, None, "only one run"))
                continue
            ratio = b / a if a > 0 else float("inf")
            flag = ""
            if b > a * (1.0 + self.threshold) \
                    and b - a > MIN_REGRESSION_SECONDS:
                flag = "REGRESSION"
                self.regressions.append(stage)
            elif a > b * (1.0 + self.threshold) \
                    and a - b > MIN_REGRESSION_SECONDS:
                flag = "improved"
            self.stage_rows.append((stage, a, b, ratio, flag))
        old_counters = (old.get("metrics") or {}).get("counters", {})
        new_counters = (new.get("metrics") or {}).get("counters", {})
        for key in sorted(set(old_counters) | set(new_counters)):
            a = float(old_counters.get(key, 0.0))
            b = float(new_counters.get(key, 0.0))
            if a != b:
                self.metric_rows.append((key, a, b))

    def render(self) -> str:
        lines = [f"compare {self.old.get('run_id')} (old) -> "
                 f"{self.new.get('run_id')} (new), "
                 f"threshold {self.threshold:.0%}"]
        lines += [f"  note: {note}" for note in self.notes]
        lines.append(f"  {'stage':<22} {'old_s':>9} {'new_s':>9} "
                     f"{'ratio':>7}")
        for stage, a, b, ratio, flag in self.stage_rows:
            a_s = f"{a:9.3f}" if a is not None else "        -"
            b_s = f"{b:9.3f}" if b is not None else "        -"
            r_s = f"{ratio:7.2f}" if ratio is not None else "      -"
            lines.append(f"  {stage:<22} {a_s} {b_s} {r_s}"
                         + (f"  {flag}" if flag else ""))
        if self.metric_rows:
            lines.append("  changed counters:")
            for key, a, b in self.metric_rows[:40]:
                lines.append(f"    {key}: {a:g} -> {b:g} "
                             f"({b - a:+g})")
            if len(self.metric_rows) > 40:
                lines.append(f"    ... and {len(self.metric_rows) - 40} more")
        if self.regressions:
            lines.append(f"  RESULT: {len(self.regressions)} stage "
                         f"regression(s): {', '.join(self.regressions)}")
        else:
            lines.append("  RESULT: no stage regressions beyond "
                         f"{self.threshold:.0%}")
        return "\n".join(lines)


def compare_runs(ledger_dir: str | Path, old_id: str, new_id: str,
                 threshold: float = DEFAULT_THRESHOLD) -> RunComparison:
    return RunComparison(load_manifest(ledger_dir, old_id),
                         load_manifest(ledger_dir, new_id),
                         threshold=threshold)
