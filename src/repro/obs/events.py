"""Append-only, schema-versioned JSONL run-event log.

One :class:`EventLog` records the *structured* history of a run — stage
transitions, checkpoints, fault injections, chunk quarantines,
degradation warnings, shard lifecycle — as one JSON object per line.
Every record carries the run id, a monotonically increasing sequence
number, and both wall-clock (``wall``, epoch seconds — comparable
across processes) and monotonic (``mono`` — immune to clock steps)
timestamps, so interleaved shard and coordinator streams can be ordered
and attributed after the fact.

The format is deliberately crash-friendly: records are appended and
flushed line-at-a-time, so a killed process leaves at most one
truncated final line, which :func:`read_events` tolerates by skipping
undecodable lines instead of failing the whole read.

Like the metrics/trace layer, the module keeps a process-wide active
slot: instrumented call sites use :func:`emit` (re-exported as
``obs.event``), which is a global read plus a ``None`` check when no
log is installed — cheap enough to sprinkle through driver stages,
fault callbacks, and store quarantine paths.

Shard workers install their own :class:`EventLog` pointed at a
per-shard *spool* file (with ``shard=<i>`` stamped on every record);
the coordinator tails those spools (:class:`SpoolTailer` in
:mod:`repro.experiment.sharding`) and :meth:`EventLog.forward`\\ s the
records into its own unified log, preserving the worker's timestamps
and fields.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Iterable

#: Bumped whenever a record's reserved fields change meaning.
SCHEMA_VERSION = 1

#: Reserved top-level record keys; free-form event fields that collide
#: are prefixed with ``x_`` instead of silently clobbering them.
RESERVED = ("v", "run_id", "seq", "wall", "mono", "kind")

_active: "EventLog | None" = None


def new_run_id() -> str:
    """A sortable, collision-resistant run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def current() -> "EventLog | None":
    """The installed event log, if any."""
    return _active


def install(log: "EventLog") -> "EventLog":
    """Make ``log`` the process-wide event log; returns it."""
    global _active
    _active = log
    return log


def uninstall() -> None:
    global _active
    _active = None


def emit(kind: str, /, **fields: Any) -> dict | None:
    """Record an event iff an event log is installed (else no-op)."""
    log = _active
    if log is None:
        return None
    return log.emit(kind, **fields)


class EventLog:
    """Append-only JSONL event sink for one run.

    ``static_fields`` are stamped on every record (the shard workers use
    ``shard=<i>``). Listeners registered with :meth:`add_listener` see
    every record — including forwarded ones — which is how the live
    status board and tests observe the stream without re-reading the
    file. Thread-safe; usable as a context manager (closes on exit).
    """

    def __init__(self, path: str | Path, run_id: str | None = None,
                 **static_fields: Any) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or new_run_id()
        self.static_fields = {str(k): v for k, v in static_fields.items()}
        self._fh: io.TextIOBase | None = open(self.path, "a",
                                              encoding="utf-8")
        self._seq = 0
        self._lock = threading.Lock()
        self._listeners: list[Callable[[dict], None]] = []

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, /, **fields: Any) -> dict:
        """Append one event record and return it."""
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "run_id": self.run_id,
            "seq": 0,  # stamped under the lock below
            "wall": time.time(),
            "mono": time.monotonic(),
            "kind": str(kind),
        }
        for key, value in self.static_fields.items():
            record.setdefault(key, value)
        for key, value in fields.items():
            record["x_" + key if key in RESERVED else key] = value
        return self._append(record)

    def forward(self, record: dict) -> dict:
        """Append a record produced by *another* log (a shard spool).

        The record's own ``run_id``/``wall``/``mono``/``kind`` and
        fields are preserved verbatim; only ``seq`` is re-stamped so the
        unified log stays strictly ordered.
        """
        return self._append(dict(record))

    def _append(self, record: dict) -> dict:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            fh = self._fh
            if fh is not None:
                fh.write(json.dumps(record, default=str,
                                    separators=(",", ":")) + "\n")
                fh.flush()
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(record)
        return record

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[dict], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if current() is self:
            uninstall()
        self.close()
        return False


# -- reading ---------------------------------------------------------------


def iter_complete_lines(path: str | Path, offset: int = 0) \
        -> tuple[list[str], int]:
    """Complete (newline-terminated) lines of ``path`` from ``offset``.

    Returns the lines plus the byte offset just past the last complete
    line, so a tailer can poll for growth without re-reading or ever
    parsing a half-written record. A missing file yields no lines.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            blob = fh.read()
    except FileNotFoundError:
        return [], offset
    end = blob.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = blob[:end + 1]
    lines = complete.decode("utf-8", errors="replace").splitlines()
    return lines, offset + len(complete)


def read_events(path: str | Path, tail: int | None = None) -> list[dict]:
    """Parse an event log, tolerating a crash-truncated final line.

    Undecodable lines (a torn write from a killed process, stray
    garbage) are skipped rather than failing the read — the log is an
    operational artifact and a partial view beats none. ``tail`` keeps
    only the last N records.
    """
    path = Path(path)
    if not path.exists():
        return []
    events: list[dict] = []
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
    if tail is not None and tail >= 0:
        events = events[-tail:] if tail else []
    return events


def spool_path(spool_dir: str | Path, shard: int) -> Path:
    """Canonical per-shard event spool file under ``spool_dir``."""
    return Path(spool_dir) / f"shard{shard:03d}.events.jsonl"


def trace_spool_path(spool_dir: str | Path, shard: int) -> Path:
    """Canonical per-shard span-tree spool file under ``spool_dir``."""
    return Path(spool_dir) / f"shard{shard:03d}.trace.json"


def write_trace_spool(path: str | Path, events: Iterable[dict],
                      anchor_wall: float, shard: int) -> Path:
    """Persist a worker's Chrome trace events with its wall anchor.

    ``anchor_wall`` is the wall-clock time of the worker tracer's epoch
    (its ``ts=0``); the coordinator uses the difference between anchors
    to shift worker spans onto its own timeline when merging the single
    cross-process trace.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"anchor_wall": anchor_wall, "pid": os.getpid(),
               "shard": shard, "events": list(events)}
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
    return path


def read_trace_spool(path: str | Path) -> dict | None:
    """Load a worker trace spool; ``None`` when absent or unreadable."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or "events" not in payload:
        return None
    return payload
