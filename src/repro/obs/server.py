"""Live status + metrics HTTP server (zero-dependency, stdlib only).

One :class:`ObsServer` exposes a running pipeline over plain HTTP:

- ``GET /metrics`` — the active registry in Prometheus text exposition
  format, scrape-ready;
- ``GET /status``  — JSON: run id, current stage, coordinator progress
  (sim days, %, ev/s, ETA) and per-shard progress of a sharded build;
- ``GET /events``  — JSON tail of the structured run-event log
  (``?n=`` bounds the tail, default 200);
- ``GET /trace``   — the merged Chrome trace (coordinator + shard
  spans) as Perfetto-loadable JSON.

The server is a :class:`~http.server.ThreadingHTTPServer` on a daemon
thread: requests never block the pipeline and the process exits without
ceremony. Handlers read live state (the installed
:class:`~repro.obs.FlightRecorder`, the installed
:class:`~repro.obs.events.EventLog`, a :class:`StatusBoard`) under the
structures' own locks, so a scrape during a build observes a consistent
snapshot without pausing workers.

The :class:`StatusBoard` is an event-stream projection: register it as
a listener on the run's event log and it folds ``stage.*``,
``heartbeat``, and ``shard.*`` records into the ``/status`` document —
including records forwarded from shard-worker spools, which is how
per-shard progress appears while workers are still running.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs import events as obsevents
from repro.obs import log as obslog
from repro.obs import recorder as obsrecorder

_log = obslog.get_logger("obs.server")

#: Default number of records ``/events`` returns.
DEFAULT_EVENT_TAIL = 200


class StatusBoard:
    """Thread-safe projection of the run-event stream for ``/status``.

    Attach with ``event_log.add_listener(board.on_event)``; every field
    the board exposes is derived from events, so the same document works
    for in-process runs, sharded builds (worker records arrive via the
    coordinator's spool tailer) and post-hoc replays of an event log.
    """

    def __init__(self, run_id: str | None = None) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._state: dict = {
            "run_id": run_id,
            "stage": None,
            "stages_done": {},
            "progress": {},
            "shards": {},
            "events_seen": 0,
            "last_event": None,
        }

    def on_event(self, record: dict) -> None:
        kind = record.get("kind", "")
        shard = record.get("shard")
        with self._lock:
            state = self._state
            state["events_seen"] += 1
            state["last_event"] = kind
            if state["run_id"] is None and record.get("run_id"):
                state["run_id"] = record["run_id"]
            if kind == "stage.start" and shard is None:
                state["stage"] = record.get("stage")
            elif kind == "stage.end" and shard is None:
                state["stages_done"][record.get("stage")] = \
                    record.get("seconds")
                if state["stage"] == record.get("stage"):
                    state["stage"] = None
            elif kind == "heartbeat":
                progress = {
                    "sim_days": record.get("sim_days"),
                    "progress": record.get("progress"),
                    "events": record.get("events"),
                    "events_per_sec": record.get("events_per_sec"),
                    "queue_depth": record.get("queue_depth"),
                    "eta_s": record.get("eta_s"),
                }
                if shard is None:
                    state["progress"] = progress
                else:
                    entry = state["shards"].setdefault(
                        str(shard), {"done": False})
                    entry.update(progress)
            elif kind == "shard.start":
                entry = state["shards"].setdefault(str(shard), {})
                entry["done"] = False
                entry["attempt"] = record.get("attempt", 1)
            elif kind == "shard.end":
                entry = state["shards"].setdefault(str(shard), {})
                entry["done"] = True
                entry["packets_emitted"] = record.get("packets_emitted")
            elif kind == "shard.retry":
                entry = state["shards"].setdefault(str(shard), {})
                entry["done"] = False
                entry["retries"] = entry.get("retries", 0) + 1
                entry["last_failure"] = record.get("cause")
            elif kind == "shard.timeout":
                entry = state["shards"].setdefault(str(shard), {})
                entry["timed_out"] = True
                entry["last_failure"] = "timeout"
            elif kind == "shard.quarantined":
                entry = state["shards"].setdefault(str(shard), {})
                entry["done"] = True
                entry["quarantined"] = True
                entry["last_failure"] = record.get("cause")
            elif kind == "shard.skipped":
                entry = state["shards"].setdefault(str(shard), {})
                entry["done"] = True
                entry["restored"] = True
            elif kind == "run.end":
                state["stage"] = "done"

    def snapshot(self) -> dict:
        with self._lock:
            state = json.loads(json.dumps(self._state, default=str))
        state["uptime_s"] = round(time.time() - self._started, 1)
        return state


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; all state lives on the server object."""

    server: "_Server"
    protocol_version = "HTTP/1.1"
    #: headers and body are flushed as separate segments; without
    #: TCP_NODELAY, Nagle + delayed ACK adds ~40ms to every response.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send(200, self._metrics_text(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/status":
                self._send_json(self._status_doc())
            elif route == "/events":
                query = parse_qs(parsed.query)
                try:
                    tail = int(query.get("n", [DEFAULT_EVENT_TAIL])[0])
                except ValueError:
                    tail = DEFAULT_EVENT_TAIL
                self._send_json(self._events_doc(tail))
            elif route == "/trace":
                self._send_json(self._trace_doc())
            elif route == "/":
                self._send(200, "repro obs server\n"
                           "endpoints: /metrics /status /events /trace\n",
                           "text/plain; charset=utf-8")
            else:
                self._send(404, f"no such endpoint {route}\n",
                           "text/plain; charset=utf-8")
        except Exception as exc:  # never kill the serving thread
            try:
                self._send(500, f"internal error: {exc}\n",
                           "text/plain; charset=utf-8")
            except OSError:  # client went away mid-reply
                pass

    # -- endpoint bodies ---------------------------------------------------

    def _recorder(self):
        return self.server.recorder or obsrecorder.current()

    def _metrics_text(self) -> str:
        recorder = self._recorder()
        if recorder is None:
            return "# no recorder installed\n"
        return recorder.metrics.to_prometheus()

    def _status_doc(self) -> dict:
        board = self.server.board
        doc = board.snapshot() if board is not None else {}
        recorder = self._recorder()
        if recorder is not None:
            gauges = recorder.metrics.snapshot()["gauges"]
            doc.setdefault("gauges", {k: v for k, v in gauges.items()
                                      if k.startswith("sim.")})
        return doc

    def _events_doc(self, tail: int) -> list[dict]:
        log = self.server.event_log or obsevents.current()
        if log is None:
            return []
        return obsevents.read_events(log.path, tail=tail)

    def _trace_doc(self) -> dict:
        recorder = self._recorder()
        if recorder is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return recorder.chrome_trace()

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, payload) -> None:
        self._send(200, json.dumps(payload, indent=1, default=str) + "\n",
                   "application/json; charset=utf-8")

    def _send(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:
        _log.debug("http %s", fmt % args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: live references the handlers read; ``None`` falls back to the
    #: process-wide installed recorder / event log at request time.
    recorder = None
    board: StatusBoard | None = None
    event_log: "obsevents.EventLog | None" = None


class ObsServer:
    """Serve ``/metrics``, ``/status``, ``/events`` and ``/trace``.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one either way. Usable as a context manager::

        with ObsServer(port=9102, board=board) as server:
            run_experiment(...)
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 recorder=None, board: StatusBoard | None = None,
                 event_log: "obsevents.EventLog | None" = None) -> None:
        self._server = _Server((host, port), _Handler)
        self._server.recorder = recorder
        self._server.board = board
        self._server.event_log = event_log
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-server", daemon=True)
        self._thread.start()
        _log.info("obs server listening on %s "
                  "(/metrics /status /events /trace)", self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
