"""Operational guidance for telescope operators (§8).

Derives the paper's five practical recommendations from a corpus, each
backed by a measured factor:

(i)   announce the telescope prefix individually in BGP;
(ii)  prefer *more announced prefixes* over *larger* prefixes;
(iii) expect different attractors (BGP vs DNS) to draw different scanners;
(iv)  expect active services to draw scanners to neighboring space;
(v)   deploy structured (low-byte) addresses — scanners prefer them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.analysis.context import CorpusAnalysis
from repro.core.addrclass import AddressClass, classify_session
from repro.core.aggregation import AggregationLevel
from repro.core.reactivity import sessions_per_prefix_cumulative
from repro.errors import AnalysisError
from repro.experiment.phases import Phase


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One §8 guidance item with its supporting evidence."""

    key: str
    statement: str
    factor: float
    evidence: str

    def render(self) -> str:
        return f"[{self.key}] {self.statement}\n      evidence: " \
               f"{self.evidence}"


@dataclass(frozen=True)
class GuidanceReport:
    recommendations: tuple[Recommendation, ...]

    def get(self, key: str) -> Recommendation:
        for recommendation in self.recommendations:
            if recommendation.key == key:
                return recommendation
        raise AnalysisError(f"no recommendation {key!r}")

    def render(self) -> str:
        lines = ["Operational guidance for IPv6 telescope deployment (§8)"]
        for recommendation in self.recommendations:
            lines.append("  " + recommendation.render())
        return "\n".join(lines)


def derive_guidance(analysis: CorpusAnalysis) -> GuidanceReport:
    """Compute all five recommendations from one corpus."""
    corpus = analysis.corpus
    recommendations = []

    # (i) own announcement vs silent subnet of a covering prefix
    announced = len(corpus.packets("T1")) + len(corpus.packets("T2"))
    silent = max(len(corpus.packets("T3")), 1)
    factor = announced / 2 / silent
    recommendations.append(Recommendation(
        key="announce",
        statement="announce the telescope prefix individually in BGP; "
                  "silent subnets of covering prefixes stay invisible",
        factor=factor,
        evidence=f"announced telescopes received {factor:,.0f}x the "
                 "packets of the silent covered subnet"))

    # (ii) number of announced prefixes over prefix size
    sessions = analysis.sessions("T1", AggregationLevel.ADDR,
                                 Phase.FULL).sessions
    cumulative = sessions_per_prefix_cumulative(sessions, corpus.schedule)
    by_length: Counter = Counter()
    count_by_length: Counter = Counter()
    for prefix, series in cumulative.items():
        by_length[prefix.length] += series[-1]
        count_by_length[prefix.length] += 1
    lengths = sorted(length for length in by_length if length >= 33)
    if len(lengths) >= 2:
        smallest, largest = lengths[0], lengths[-1]
        small_yield = by_length[largest] / count_by_length[largest]
        big_yield = by_length[smallest] / count_by_length[smallest]
        size_ratio = 2 ** (largest - smallest)
        yield_ratio = big_yield / max(small_yield, 1e-9)
        factor = size_ratio / max(yield_ratio, 1e-9)
    else:
        factor = 1.0
        yield_ratio = 1.0
        size_ratio = 1.0
        smallest = largest = lengths[0] if lengths else 0
    recommendations.append(Recommendation(
        key="count-over-size",
        statement="the number of individually announced prefixes matters "
                  "more than their size",
        factor=factor,
        evidence=f"a /{largest} is {size_ratio:,.0f}x smaller than a "
                 f"/{smallest} yet yields only {yield_ratio:.1f}x fewer "
                 "sessions once announced"))

    # (iii) different attractors draw different scanners
    t1_sources = {p.src for p in corpus.packets("T1")}
    t2_sources = {p.src for p in corpus.packets("T2")}
    union = len(t1_sources | t2_sources)
    shared = len(t1_sources & t2_sources)
    exclusivity = 1 - shared / max(union, 1)
    recommendations.append(Recommendation(
        key="attractor-diversity",
        statement="different attractors (BGP announcements vs DNS "
                  "exposure) draw different kinds of scanners",
        factor=exclusivity,
        evidence=f"{100 * exclusivity:.0f}% of BGP- or DNS-drawn sources "
                 "were exclusive to one attractor"))

    # (iv) active services draw scanners to neighboring space
    reactive = len(corpus.packets("T4"))
    factor = reactive / silent
    recommendations.append(Recommendation(
        key="react",
        statement="active network services draw scanners to neighboring "
                  "address space",
        factor=factor,
        evidence=f"the reactive /48 received {factor:,.0f}x the packets "
                 "of the equally covered silent /48"))

    # (v) structured addresses are preferred targets
    structured = 0
    total = 0
    for telescope in corpus.telescopes():
        for session in analysis.sessions(telescope,
                                         AggregationLevel.ADDR,
                                         Phase.FULL):
            total += 1
            if classify_session(session) is AddressClass.STRUCTURED:
                structured += 1
    share = structured / max(total, 1)
    recommendations.append(Recommendation(
        key="structured-targets",
        statement="deploy structured (low-byte) addresses; many scanners "
                  "prefer them",
        factor=share,
        evidence=f"{100 * share:.0f}% of all scan sessions used a "
                 "structured target selection"))

    return GuidanceReport(recommendations=tuple(recommendations))
