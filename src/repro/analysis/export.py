"""CSV export of analysis artifacts.

The library renders tables and figures as text; operators who want real
plots can export the underlying data as CSV files and feed them to any
plotting stack. One file per artifact, stable headers.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.context import CorpusAnalysis
from repro.analysis.figures import (fig3, fig4, fig9, fig10, fig11)
from repro.analysis.report import Table
from repro.errors import AnalysisError
from repro.sim.clock import WEEK


def export_table(table: Table, path: str | Path) -> Path:
    """Write a rendered :class:`Table` as CSV (columns + rows)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
    return target


def export_series(path: str | Path, header: list[str],
                  rows: list[list]) -> Path:
    """Write a generic series as CSV."""
    if not header:
        raise AnalysisError("CSV export needs a header")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return target


def export_figures(analysis: CorpusAnalysis, directory: str | Path) \
        -> list[Path]:
    """Export the plot-ready figure series to ``directory``.

    Covers the time-series figures (3, 4, 9, 10, 11); matrix-style
    figures (12/13 nibble plots) are better consumed via their result
    objects directly.
    """
    base = Path(directory)
    written: list[Path] = []

    f3 = fig3(analysis)
    written.append(export_series(
        base / "fig3_new_source_prefixes.csv", ["day", "new_prefixes"],
        [[day, count] for day, count in enumerate(f3.daily_new)]))

    f4 = fig4(analysis)
    names = sorted(f4.series)
    written.append(export_series(
        base / "fig4_growth.csv", ["week", *names],
        [[week, *[f4.series[name][i] for name in names]]
         for i, week in enumerate(f4.weeks)]))

    f9 = fig9(analysis)
    scopes = sorted(f9.weekly)
    weeks = len(next(iter(f9.weekly.values())))
    written.append(export_series(
        base / "fig9_weekly_sessions.csv", ["week", *scopes],
        [[week, *[f9.weekly[scope][week] for scope in scopes]]
         for week in range(weeks)]))

    f10 = fig10(analysis)
    written.append(export_series(
        base / "fig10_sessions_per_prefix.csv",
        ["prefix", *[f"cycle_{i}" for i in f10.cycle_indices]],
        [[str(prefix), *series]
         for prefix, series in sorted(f10.cumulative.items())]))

    f11 = fig11(analysis)
    written.append(export_series(
        base / "fig11_biweekly.csv",
        ["cycle", "t1_sources", "t1_sessions", "rest_sources",
         "rest_sessions"],
        [[a.cycle_index, a.sources, a.sessions, b.sources, b.sessions]
         for a, b in zip(f11.t1, f11.others)]))
    return written
