"""Figure-data generators (Figures 3-5, 7-17 of the paper).

Each ``figN`` function computes the exact data series behind the paper's
figure and returns a result object with a ``render()`` text summary.
Figures 1, 2, and 6 are concept diagrams; Fig. 2's schedule is available
directly from :func:`repro.bgp.controller.build_split_schedule`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.context import CorpusAnalysis
from repro.analysis.degrade import warn_degraded
from repro.obs import traced
from repro.core.addrclass import AddressClass, classify_session
from repro.core.aggregation import AggregationLevel
from repro.core.heavy import HeavyHitter, find_heavy_hitters
from repro.core.nist import (bits_from_addresses, run_battery)
from repro.core.overlap import (DayOverlap, UpSetData, day_overlap,
                                sources_everywhere, upset)
from repro.core.reactivity import (CycleActivity, cycle_activity,
                                   new_source_prefixes_per_day,
                                   sessions_per_prefix_cumulative)
from repro.core.sessions import Session
from repro.core.temporal import TemporalClass
from repro.errors import AnalysisError
from repro.experiment.phases import Phase
from repro.net.addr import nibbles_of
from repro.net.prefix import Prefix
from repro.sim.clock import DAY, HOUR, WEEK

TELESCOPES = ("T1", "T2", "T3", "T4")


# -- Fig. 3: new source prefixes after an announcement ---------------------


@dataclass
class Fig3Result:
    """Daily counts of newly discovered source prefixes (initial period)."""

    daily_new: list[int]

    def knee_day(self, fraction: float = 0.8) -> int:
        """First day by which ``fraction`` of all discoveries happened."""
        total = sum(self.daily_new)
        if total == 0:
            raise AnalysisError("no sources discovered")
        running = 0
        for day, count in enumerate(self.daily_new):
            running += count
            if running >= fraction * total:
                return day
        return len(self.daily_new) - 1

    def render(self) -> str:
        lines = ["Fig 3: newly discovered source prefixes per day"]
        for day, count in enumerate(self.daily_new):
            if count:
                lines.append(f"  day {day:3d}: {count}")
        lines.append(f"  80% knee at day {self.knee_day()}")
        return "\n".join(lines)


@traced("analysis.fig3")
def fig3(analysis: CorpusAnalysis) -> Fig3Result:
    packets = [p for t in TELESCOPES
               for p in analysis.corpus.phase_packets(t, Phase.INITIAL)]
    start, end = 0.0, analysis.corpus.config.split_start
    return Fig3Result(daily_new=new_source_prefixes_per_day(
        packets, start, end))


# -- Fig. 4: relative growth of packets / ASes / sources / sessions --------


@dataclass
class Fig4Result:
    """Weekly cumulative relative growth of the §3.3 aggregates."""

    weeks: list[int]
    series: dict[str, list[float]]

    def final_ratio(self, numerator: str, denominator: str) -> float:
        """Final absolute-count ratio between two series."""
        return (self.series[numerator][-1] or 0.0) \
            / max(self.series[denominator][-1], 1e-12)

    def render(self) -> str:
        lines = ["Fig 4: cumulative growth (relative to final value)"]
        for name, values in self.series.items():
            mid = values[len(values) // 2] / max(values[-1], 1e-12)
            lines.append(f"  {name}: 50%-time share {mid:.2f}")
        return "\n".join(lines)


@traced("analysis.fig4")
def fig4(analysis: CorpusAnalysis) -> Fig4Result:
    packets = sorted((p for t in TELESCOPES
                      for p in analysis.corpus.phase_packets(t, Phase.FULL)),
                     key=lambda p: p.time)
    if not packets:
        if not analysis.has_gaps():
            raise AnalysisError("empty corpus")
        # every capture was dark: degrade to a well-defined flat result
        warn_degraded("fig4: all captures empty due to coverage gaps; "
                      "emitting zero series", artifact="fig4",
                      reason="coverage_gap")
        duration = analysis.corpus.config.duration
        weeks = list(range(int(duration / WEEK) + 1))
        return Fig4Result(weeks=weeks, series={
            name: [0.0] * len(weeks)
            for name in ("packets", "asns", "sources_128", "sources_64",
                         "sessions_128", "sessions_64")})
    duration = analysis.corpus.config.duration
    weeks = list(range(int(duration / WEEK) + 1))
    counters = {
        "packets": 0,
        "asns": set(),
        "sources_128": set(),
        "sources_64": set(),
    }
    series: dict[str, list[float]] = {
        "packets": [], "asns": [], "sources_128": [], "sources_64": [],
        "sessions_128": [], "sessions_64": [],
    }
    index = 0
    for week in weeks:
        horizon = (week + 1) * WEEK
        while index < len(packets) and packets[index].time < horizon:
            p = packets[index]
            counters["packets"] += 1
            if p.src_asn:
                counters["asns"].add(p.src_asn)
            counters["sources_128"].add(p.src)
            counters["sources_64"].add(p.src >> 64)
            index += 1
        series["packets"].append(float(counters["packets"]))
        series["asns"].append(float(len(counters["asns"])))
        series["sources_128"].append(float(len(counters["sources_128"])))
        series["sources_64"].append(float(len(counters["sources_64"])))
    # sessions: count per week bucket from the sessionized view
    for level, name in ((AggregationLevel.ADDR, "sessions_128"),
                        (AggregationLevel.SUBNET, "sessions_64")):
        starts = sorted(s.start for t in TELESCOPES
                        for s in analysis.sessions(t, level, Phase.FULL))
        running = 0
        position = 0
        for week in weeks:
            horizon = (week + 1) * WEEK
            while position < len(starts) and starts[position] < horizon:
                running += 1
                position += 1
            series[name].append(float(running))
    return Fig4Result(weeks=weeks, series=series)


# -- Fig. 5: daily heavy-hitter activity ------------------------------------


@dataclass
class Fig5Result:
    """Per heavy hitter: day -> packet count, per telescope."""

    hitters: list[HeavyHitter]
    daily: dict[tuple[int, str], dict[int, int]]

    def active_days(self, source: int, telescope: str) -> int:
        return len(self.daily.get((source, telescope), {}))

    def render(self) -> str:
        lines = ["Fig 5: heavy-hitter daily activity"]
        for hitter in self.hitters:
            days = self.active_days(hitter.source, hitter.telescope)
            lines.append(
                f"  {hitter.telescope} src={hitter.source:#034x} "
                f"share={hitter.share:.2f} days_active={days}")
        return "\n".join(lines)


@traced("analysis.fig5")
def fig5(analysis: CorpusAnalysis) -> Fig5Result:
    packets_by_telescope = {
        t: analysis.corpus.phase_packets(t, Phase.FULL) for t in TELESCOPES}
    hitters = find_heavy_hitters(packets_by_telescope)
    wanted = {(h.source, h.telescope) for h in hitters}
    daily: dict[tuple[int, str], dict[int, int]] = {}
    for telescope, packets in packets_by_telescope.items():
        for p in packets:
            key = (p.src, telescope)
            if key in wanted:
                bucket = daily.setdefault(key, {})
                day = int(p.time // DAY)
                bucket[day] = bucket.get(day, 0) + 1
    return Fig5Result(hitters=hitters, daily=daily)


# -- Fig. 7: initial-period traffic and classification ----------------------


@dataclass
class Fig7Result:
    """(a) hourly packets per telescope; (b) temporal x address classes."""

    hourly: dict[str, list[int]]
    classification: dict[str, dict[tuple[TemporalClass, AddressClass], int]]

    def render(self) -> str:
        lines = ["Fig 7(a): hourly traffic peaks"]
        for telescope, series in self.hourly.items():
            peak = max(series) if series else 0
            lines.append(f"  {telescope}: peak={peak}/h "
                         f"total={sum(series)}")
        lines.append("Fig 7(b): sessions per temporal x address class")
        for telescope, histogram in self.classification.items():
            for (temporal, address), count in sorted(
                    histogram.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {telescope} {temporal.value}"
                             f"/{address.value}: {count}")
        return "\n".join(lines)


@traced("analysis.fig7")
def fig7(analysis: CorpusAnalysis) -> Fig7Result:
    split_start = analysis.corpus.config.split_start
    hours = int(split_start / HOUR)
    hourly: dict[str, list[int]] = {}
    for telescope in TELESCOPES:
        series = [0] * hours
        for p in analysis.corpus.phase_packets(telescope, Phase.INITIAL):
            series[min(int(p.time // HOUR), hours - 1)] += 1
        hourly[telescope] = series
    classification: dict[str, dict] = {}
    for telescope in TELESCOPES:
        by_source = analysis.by_source(telescope, AggregationLevel.ADDR,
                                       Phase.INITIAL)
        temporal = analysis.temporal_classes(telescope,
                                             AggregationLevel.ADDR,
                                             Phase.INITIAL)
        histogram: Counter = Counter()
        for source, sessions in by_source.items():
            for session in sessions:
                histogram[(temporal[source],
                           classify_session(session))] += 1
        classification[telescope] = dict(histogram)
    return Fig7Result(hourly=hourly, classification=classification)


# -- Fig. 8: cross-telescope UpSet intersections -----------------------------


@dataclass
class Fig8Result:
    """UpSet data for source ASNs and /128 sources (initial period)."""

    asns: UpSetData
    sources: UpSetData

    def exclusive_source_share(self) -> float:
        """Share of /128 sources observed at exactly one telescope."""
        exclusive = sum(self.sources.exclusive(t) for t in TELESCOPES)
        all_items = sum(self.sources.intersections.values())
        return exclusive / all_items if all_items else 0.0

    def render(self) -> str:
        lines = ["Fig 8: telescope overlap (initial period)"]
        lines.append(f"  ASN set sizes: {self.asns.set_sizes}")
        lines.append(f"  /128 exclusive share: "
                     f"{self.exclusive_source_share():.2f}")
        return "\n".join(lines)


@traced("analysis.fig8")
def fig8(analysis: CorpusAnalysis) -> Fig8Result:
    asn_sets: dict[str, set] = {}
    source_sets: dict[str, set] = {}
    for telescope in TELESCOPES:
        packets = analysis.corpus.phase_packets(telescope, Phase.INITIAL)
        asn_sets[telescope] = {p.src_asn for p in packets if p.src_asn}
        source_sets[telescope] = {p.src for p in packets}
    return Fig8Result(asns=upset(asn_sets), sources=upset(source_sets))


# -- Fig. 9: weekly sessions per telescope -----------------------------------


@dataclass
class Fig9Result:
    weekly: dict[str, list[int]]
    #: per-telescope, per-week fraction of the week the capture was up
    #: (all 1.0 for a gap-free corpus).
    coverage: dict[str, list[float]] = field(default_factory=dict)
    #: session counts scaled to full-coverage equivalents
    #: (``weekly / coverage``; a fully dark week stays 0).
    normalized: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Fig 9: weekly scan sessions (initial period)"]
        for telescope, series in self.weekly.items():
            lines.append(f"  {telescope}: {series}")
            coverage = self.coverage.get(telescope)
            if coverage and min(coverage) < 1.0:
                scaled = [round(v, 1) for v in self.normalized[telescope]]
                lines.append(f"  {telescope} (gap-normalized): {scaled}")
        return "\n".join(lines)


@traced("analysis.fig9")
def fig9(analysis: CorpusAnalysis) -> Fig9Result:
    weeks = int(analysis.corpus.config.split_start / WEEK)
    analysis.warn_if_degraded("fig9")
    weekly: dict[str, list[int]] = {}
    coverage: dict[str, list[float]] = {}
    normalized: dict[str, list[float]] = {}
    for telescope in TELESCOPES:
        series = [0] * weeks
        for session in analysis.sessions(telescope, AggregationLevel.ADDR,
                                         Phase.INITIAL):
            series[min(int(session.start // WEEK), weeks - 1)] += 1
        weekly[telescope] = series
        fractions = [
            analysis.corpus.covered_fraction(telescope, w * WEEK,
                                             (w + 1) * WEEK)
            for w in range(weeks)]
        coverage[telescope] = fractions
        normalized[telescope] = [
            count / fraction if fraction > 0.0 else 0.0
            for count, fraction in zip(series, fractions)]
    return Fig9Result(weekly=weekly, coverage=coverage,
                      normalized=normalized)


# -- Fig. 10: cumulative sessions per announced prefix ------------------------


@dataclass
class Fig10Result:
    cumulative: dict[Prefix, list[int]]
    cycle_indices: list[int]

    def final_share_of_48s(self) -> float:
        """Share of the *final announcement period's* sessions that land
        in /48 prefixes (the paper's 15.7% headline)."""
        total = last_48 = 0
        for prefix, series in self.cumulative.items():
            increment = series[-1] - (series[-2] if len(series) > 1 else 0)
            total += increment
            if prefix.length == 48:
                last_48 += increment
        return last_48 / total if total else 0.0

    def render(self) -> str:
        lines = ["Fig 10: cumulative sessions per most-specific prefix"]
        ranked = sorted(self.cumulative.items(),
                        key=lambda kv: -kv[1][-1])[:8]
        for prefix, series in ranked:
            lines.append(f"  {prefix}: {series[-1]}")
        lines.append(f"  /48 share in final cycle: "
                     f"{self.final_share_of_48s():.3f}")
        return "\n".join(lines)


@traced("analysis.fig10")
def fig10(analysis: CorpusAnalysis) -> Fig10Result:
    sessions = analysis.sessions("T1", AggregationLevel.ADDR,
                                 Phase.FULL).sessions
    cycles = analysis.corpus.schedule
    return Fig10Result(
        cumulative=sessions_per_prefix_cumulative(sessions, cycles),
        cycle_indices=[c.index for c in cycles])


# -- Fig. 11: bi-weekly sessions and sources, T1 vs the rest -------------------


@dataclass
class Fig11Result:
    t1: list[CycleActivity]
    others: list[CycleActivity]

    def render(self) -> str:
        lines = ["Fig 11: bi-weekly activity (T1 vs aggregated T2-T4)"]
        for a, b in zip(self.t1, self.others):
            lines.append(f"  cycle {a.cycle_index:2d}: "
                         f"T1 src={a.sources:5d} sess={a.sessions:6d} | "
                         f"rest src={b.sources:5d} sess={b.sessions:6d}")
        return "\n".join(lines)


@traced("analysis.fig11")
def fig11(analysis: CorpusAnalysis) -> Fig11Result:
    cycles = analysis.corpus.schedule
    t1_sessions = analysis.sessions("T1", AggregationLevel.ADDR,
                                    Phase.FULL).sessions
    other_sessions = []
    for telescope in ("T2", "T3", "T4"):
        other_sessions.extend(
            analysis.sessions(telescope, AggregationLevel.ADDR,
                              Phase.FULL).sessions)
    return Fig11Result(t1=cycle_activity(t1_sessions, cycles),
                       others=cycle_activity(other_sessions, cycles))


# -- Fig. 12/13: nibble matrices of example sessions ----------------------------


@dataclass
class NibbleMatrix:
    """Targets of one session as a (packets x 32) nibble matrix."""

    source: int
    nibbles: np.ndarray  # shape (n, 32), dtype uint8

    def column_entropy(self, column: int) -> float:
        """Shannon entropy (bits) of one nibble position."""
        counts = np.bincount(self.nibbles[:, column], minlength=16)
        probs = counts[counts > 0] / counts.sum()
        return float(-(probs * np.log2(probs)).sum())

    def sorted_lexicographically(self) -> "NibbleMatrix":
        order = np.lexsort(self.nibbles.T[::-1])
        return NibbleMatrix(source=self.source,
                            nibbles=self.nibbles[order])


@dataclass
class Fig12Result:
    structured: NibbleMatrix | None
    random: NibbleMatrix | None

    def render(self) -> str:
        lines = ["Fig 12: target nibble matrices of two example sessions"]
        for label, matrix in (("structured", self.structured),
                              ("random", self.random)):
            if matrix is None:
                lines.append(f"  {label}: (no qualifying session)")
                continue
            iid_entropy = np.mean([matrix.column_entropy(c)
                                   for c in range(16, 32)])
            subnet_entropy = np.mean([matrix.column_entropy(c)
                                      for c in range(8, 16)])
            lines.append(f"  {label}: n={len(matrix.nibbles)} "
                         f"subnet-entropy={subnet_entropy:.2f} "
                         f"iid-entropy={iid_entropy:.2f}")
        return "\n".join(lines)


def _nibble_matrix(session: Session) -> NibbleMatrix:
    data = np.array([nibbles_of(t) for t in session.targets()],
                    dtype=np.uint8)
    return NibbleMatrix(source=session.source, nibbles=data)


@traced("analysis.fig12")
def fig12(analysis: CorpusAnalysis, min_packets: int = 100) -> Fig12Result:
    """Pick one structured and one random T1 session and matrix them."""
    structured = best_random = None
    for session in analysis.sessions("T1", AggregationLevel.ADDR,
                                     Phase.FULL):
        if len(session) < min_packets:
            continue
        verdict = classify_session(session)
        if verdict is AddressClass.STRUCTURED and structured is None:
            structured = _nibble_matrix(session)
        elif verdict is AddressClass.RANDOM and best_random is None:
            best_random = _nibble_matrix(session)
        if structured is not None and best_random is not None:
            break
    return Fig12Result(structured=structured, random=best_random)


@traced("analysis.fig13")
def fig13(analysis: CorpusAnalysis, min_packets: int = 100) -> NibbleMatrix:
    """Fig. 12(a)'s session sorted lexicographically (Fig. 13)."""
    result = fig12(analysis, min_packets)
    if result.structured is None:
        if not analysis.has_gaps():
            raise AnalysisError("no structured session with enough packets")
        warn_degraded("fig13: no structured session survived the coverage "
                      "gaps; emitting an empty matrix", artifact="fig13",
                      reason="coverage_gap")
        return NibbleMatrix(source=0,
                            nibbles=np.zeros((0, 32), dtype=np.uint8))
    return result.structured.sorted_lexicographically()


# -- Fig. 14: packets per temporal class across /48 subnets ----------------------


@dataclass
class Fig14Result:
    """Ranked per-/48-subnet packet counts per temporal class."""

    ranked: dict[TemporalClass, list[int]]
    top_subnet: dict[TemporalClass, int]

    def render(self) -> str:
        lines = ["Fig 14: packets per scanner type across /48 subnets"]
        for cls, series in self.ranked.items():
            lines.append(f"  {cls.value}: subnets={len(series)} "
                         f"top={series[0] if series else 0}")
        return "\n".join(lines)


@traced("analysis.fig14")
def fig14(analysis: CorpusAnalysis) -> Fig14Result:
    t1 = analysis.corpus.t1_prefix
    temporal = analysis.temporal_classes("T1", AggregationLevel.ADDR,
                                         Phase.SPLIT)
    by_source = analysis.by_source("T1", AggregationLevel.ADDR, Phase.SPLIT)
    per_class: dict[TemporalClass, Counter] = {
        cls: Counter() for cls in TemporalClass}
    for source, sessions in by_source.items():
        cls = temporal[source]
        for session in sessions:
            for p in session.packets:
                subnet = p.dst >> (128 - 48) & 0xFFFF
                per_class[cls][subnet] += 1
    ranked = {cls: sorted(counter.values(), reverse=True)
              for cls, counter in per_class.items()}
    top = {cls: (counter.most_common(1)[0][0] if counter else -1)
           for cls, counter in per_class.items()}
    return Fig14Result(ranked=ranked, top_subnet=top)


# -- Fig. 15: taxonomy classification of T1 split scanners -----------------------


@dataclass
class Fig15Result:
    histogram: dict[tuple[TemporalClass, AddressClass], int]

    def render(self) -> str:
        lines = ["Fig 15: sessions per temporal x address class (T1 split)"]
        for (temporal, address), count in sorted(
                self.histogram.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {temporal.value}/{address.value}: {count}")
        return "\n".join(lines)


@traced("analysis.fig15")
def fig15(analysis: CorpusAnalysis) -> Fig15Result:
    temporal = analysis.temporal_classes("T1", AggregationLevel.ADDR,
                                         Phase.SPLIT)
    by_source = analysis.by_source("T1", AggregationLevel.ADDR, Phase.SPLIT)
    histogram: Counter = Counter()
    for source, sessions in by_source.items():
        for session in sessions:
            histogram[(temporal[source], classify_session(session))] += 1
    return Fig15Result(histogram=dict(histogram))


# -- Fig. 16: source overlap over time ----------------------------------------------


@dataclass
class Fig16Result:
    everywhere_sources: set[int]
    daily_activity: dict[int, dict[str, dict[int, int]]]
    weekly_same_day_share: list[float]

    def render(self) -> str:
        lines = [f"Fig 16(a): {len(self.everywhere_sources)} sources seen "
                 "at all four telescopes"]
        lines.append("Fig 16(b): same-day overlap share per week: "
                     + ", ".join(f"{v:.2f}"
                                 for v in self.weekly_same_day_share))
        return "\n".join(lines)


@traced("analysis.fig16")
def fig16(analysis: CorpusAnalysis) -> Fig16Result:
    source_sets = {
        t: {p.src for p in analysis.corpus.phase_packets(t, Phase.FULL)}
        for t in TELESCOPES}
    everywhere = sources_everywhere(source_sets)
    daily: dict[int, dict[str, dict[int, int]]] = {}
    for telescope in TELESCOPES:
        for p in analysis.corpus.phase_packets(telescope, Phase.FULL):
            if p.src in everywhere:
                per_scope = daily.setdefault(p.src, {}).setdefault(
                    telescope, {})
                day = int(p.time // DAY)
                per_scope[day] = per_scope.get(day, 0) + 1
    t1_packets = analysis.corpus.phase_packets("T1", Phase.FULL)
    t2_packets = analysis.corpus.phase_packets("T2", Phase.FULL)
    weeks = int(analysis.corpus.config.duration / WEEK)
    shares = []
    for week in range(1, weeks + 1):
        overlap = day_overlap(t1_packets, t2_packets, until=week * WEEK)
        shares.append(overlap.same_day_share)
    return Fig16Result(everywhere_sources=everywhere, daily_activity=daily,
                       weekly_same_day_share=shares)


# -- Fig. 17: NIST test outcomes, IID vs subnet bits -----------------------------------


@dataclass
class Fig17Result:
    """Per temporal class and section: share of sessions passing each test."""

    pass_shares: dict[tuple[TemporalClass, str, str], float]
    sessions_tested: int

    def share(self, temporal: TemporalClass, section: str,
              test: str) -> float:
        return self.pass_shares.get((temporal, section, test), 0.0)

    def render(self) -> str:
        lines = [f"Fig 17: NIST outcomes over {self.sessions_tested} "
                 "sessions (>=100 packets)"]
        for (temporal, section, test), share in sorted(
                self.pass_shares.items(),
                key=lambda kv: (kv[0][0].value, kv[0][1], kv[0][2])):
            lines.append(f"  {temporal.value:12s} {section:6s} "
                         f"{test:9s}: pass {share:.2f}")
        return "\n".join(lines)


@traced("analysis.fig17")
def fig17(analysis: CorpusAnalysis, min_packets: int = 100) -> Fig17Result:
    temporal = analysis.temporal_classes("T1", AggregationLevel.ADDR,
                                         Phase.SPLIT)
    by_source = analysis.by_source("T1", AggregationLevel.ADDR, Phase.SPLIT)
    prefix_len = analysis.corpus.t1_prefix.length
    totals: Counter = Counter()
    passes: Counter = Counter()
    tested = 0
    for source, sessions in by_source.items():
        cls = temporal[source]
        for session in sessions:
            if len(session) < min_packets:
                continue
            tested += 1
            targets = session.targets()
            sections = {
                "iid": bits_from_addresses(targets, take_bits=64,
                                           skip_high=64),
                "subnet": bits_from_addresses(
                    targets, take_bits=64 - prefix_len,
                    skip_high=prefix_len),
            }
            for section, bits in sections.items():
                results = run_battery(bits)
                for test, ok in results.passes().items():
                    totals[(cls, section, test)] += 1
                    if ok:
                        passes[(cls, section, test)] += 1
    shares = {key: passes.get(key, 0) / count
              for key, count in totals.items()}
    return Fig17Result(pass_shares=shares, sessions_tested=tested)
