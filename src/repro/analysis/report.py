"""Plain-text report rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError


def format_count(value: int) -> str:
    """Thousands-separated count, e.g. ``33,889,898``."""
    return f"{value:,}"

def format_share(value: float, digits: int = 1) -> str:
    """Percentage with fixed digits, e.g. ``66.2``."""
    return f"{100 * value:.{digits}f}"


@dataclass
class Table:
    """A minimal column-aligned text table."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise AnalysisError(
                f"row width {len(cells)} != {len(self.columns)} columns")
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) if i else
                                   cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def cell(self, row: int, column: str) -> str:
        """Access a cell by row index and column name (for tests)."""
        return self.rows[row][self.columns.index(column)]
