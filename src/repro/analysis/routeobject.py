"""Route6-object effect analysis (§3.2).

The authors created an IRR route6 object for the stable /33 four months
into the experiment and observed *no noticeable effect* on scanners. This
module quantifies that: it compares scan activity toward the prefix in
symmetric windows before and after the object's creation.

Packet volume is dominated by heavy-hitter bursts, so the statistical
test runs on daily *source* counts — the quantity that would move if a
route object made the prefix more attractive to scanners — while packet
counts are reported for context.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import AnalysisError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY
from repro.telescope.packet import Packet


@dataclass(frozen=True, slots=True)
class RouteObjectEffect:
    """Before/after comparison around a route-object creation."""

    created_at: float
    window_days: int
    packets_before: int
    packets_after: int
    sources_before: int
    sources_after: int
    daily_sources_before: tuple[int, ...]
    daily_sources_after: tuple[int, ...]
    #: two-sided Mann-Whitney p-value over daily distinct-source counts.
    p_value: float

    @property
    def packet_change(self) -> float:
        """Relative packet-rate change (0.0 = unchanged)."""
        if self.packets_before == 0:
            raise AnalysisError("no packets before route-object creation")
        return self.packets_after / self.packets_before - 1.0

    @property
    def source_change(self) -> float:
        """Relative change in the mean daily source count."""
        before = float(np.mean(self.daily_sources_before))
        if before == 0:
            raise AnalysisError("no sources before route-object creation")
        return float(np.mean(self.daily_sources_after)) / before - 1.0

    def is_noticeable(self, alpha: float = 0.05,
                      min_change: float = 0.5) -> bool:
        """The paper's criterion, made explicit.

        An effect counts as noticeable only if the daily source counts
        differ significantly *and* the magnitude is operationally
        relevant (>= ``min_change`` relative change).
        """
        return self.p_value < alpha \
            and abs(self.source_change) >= min_change


def route_object_effect(packets: list[Packet], prefix: Prefix,
                        created_at: float,
                        window_days: int = 28) -> RouteObjectEffect:
    """Compare activity toward ``prefix`` around ``created_at``.

    Only packets destined into ``prefix`` count. Daily distinct-source
    counts in the two windows feed a Mann-Whitney U test.
    """
    if window_days < 2:
        raise AnalysisError("need at least two days per window")
    window = window_days * DAY
    start, end = created_at - window, created_at + window
    sources_daily_before: list[set[int]] = [set()
                                            for _ in range(window_days)]
    sources_daily_after: list[set[int]] = [set()
                                           for _ in range(window_days)]
    packets_before = packets_after = 0
    for p in packets:
        if not prefix.contains_address(p.dst):
            continue
        if start <= p.time < created_at:
            sources_daily_before[int((p.time - start) / DAY)].add(p.src)
            packets_before += 1
        elif created_at <= p.time < end:
            sources_daily_after[int((p.time - created_at) / DAY)].add(p.src)
            packets_after += 1
    if packets_before == 0 and packets_after == 0:
        raise AnalysisError(f"no traffic into {prefix} around the "
                            "route-object creation")
    daily_before = [len(day) for day in sources_daily_before]
    daily_after = [len(day) for day in sources_daily_after]
    result = stats.mannwhitneyu(daily_before, daily_after,
                                alternative="two-sided")
    return RouteObjectEffect(
        created_at=created_at,
        window_days=window_days,
        packets_before=packets_before,
        packets_after=packets_after,
        sources_before=len(set().union(*sources_daily_before)),
        sources_after=len(set().union(*sources_daily_after)),
        daily_sources_before=tuple(daily_before),
        daily_sources_after=tuple(daily_after),
        p_value=float(result.pvalue))
