"""Per-table and per-figure analysis generators.

Each public function regenerates one artifact of the paper's evaluation
from a :class:`repro.experiment.corpus.PacketCorpus`. The
:class:`repro.analysis.context.CorpusAnalysis` wrapper caches expensive
intermediate products (sessionization, classification) across artifacts.
"""

from repro.analysis.context import CorpusAnalysis
from repro.analysis.report import Table, format_count, format_share

__all__ = [
    "CorpusAnalysis",
    "Table",
    "format_count",
    "format_share",
]
