"""Telescope bias quantification (§8, outlook item ii).

"Are observations in telescopes unbiased? No. [...] triggers attract only
those scanners that react to them. [...] We measure the effects of network
triggers and show how and which scanners react to them, i.e., we quantify
the biasing factors."

This module turns that statement into numbers: it profiles the scanner
population each telescope attracts (temporal mix, protocol mix, address-
selection mix, source rotation) and computes pairwise divergences between
the telescopes' populations. A large divergence between two telescopes
means their attractors sample *different* scanner populations — the bias
an operator inherits with the deployment choice.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.context import CorpusAnalysis
from repro.core.addrclass import AddressClass, classify_session
from repro.core.aggregation import AggregationLevel
from repro.core.temporal import TemporalClass
from repro.errors import AnalysisError
from repro.experiment.phases import Phase
from repro.telescope.packet import Protocol


def _normalize(counter: Counter) -> dict:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {key: value / total for key, value in counter.items()}


def total_variation(p: dict, q: dict) -> float:
    """Total-variation distance between two discrete distributions."""
    keys = set(p) | set(q)
    if not keys:
        return 0.0
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


@dataclass(frozen=True)
class TelescopeProfile:
    """Composition of the scanner population one telescope attracts."""

    telescope: str
    sources: int
    sessions: int
    temporal_mix: dict
    protocol_mix: dict
    address_mix: dict
    rotation_ratio: float  # /128 sources over /64 sources

    def divergence(self, other: "TelescopeProfile") -> float:
        """Mean total-variation distance across the three behavior mixes.

        0 = the two telescopes sample identical populations;
        1 = completely disjoint behavior.
        """
        return (total_variation(self.temporal_mix, other.temporal_mix)
                + total_variation(self.protocol_mix, other.protocol_mix)
                + total_variation(self.address_mix, other.address_mix)) / 3


@dataclass(frozen=True)
class BiasReport:
    """Per-telescope profiles plus the pairwise divergence matrix."""

    profiles: dict[str, TelescopeProfile]
    divergences: dict[tuple[str, str], float]

    def most_divergent_pair(self) -> tuple[str, str]:
        if not self.divergences:
            raise AnalysisError("no telescope pairs to compare")
        return max(self.divergences, key=lambda k: self.divergences[k])

    def render(self) -> str:
        lines = ["Telescope bias report (attractor-sampled populations)"]
        for name in sorted(self.profiles):
            profile = self.profiles[name]
            temporal = ", ".join(
                f"{cls.value}={share:.2f}"
                for cls, share in sorted(profile.temporal_mix.items(),
                                         key=lambda kv: -kv[1]))
            lines.append(f"  {name}: {profile.sources} sources, "
                         f"{profile.sessions} sessions, "
                         f"rotation={profile.rotation_ratio:.1f}x")
            lines.append(f"      temporal: {temporal}")
        lines.append("  pairwise population divergence (TV distance):")
        for (a, b), value in sorted(self.divergences.items()):
            lines.append(f"      {a} vs {b}: {value:.2f}")
        return "\n".join(lines)


def profile_telescope(analysis: CorpusAnalysis, telescope: str,
                      phase: Phase = Phase.FULL) -> TelescopeProfile:
    """Build the behavior profile of one telescope's visitors."""
    session_set = analysis.sessions(telescope, AggregationLevel.ADDR, phase)
    if not len(session_set):
        return TelescopeProfile(
            telescope=telescope, sources=0, sessions=0, temporal_mix={},
            protocol_mix={}, address_mix={}, rotation_ratio=1.0)
    temporal = analysis.temporal_classes(telescope, AggregationLevel.ADDR,
                                         phase)
    temporal_counter: Counter = Counter(temporal.values())
    protocol_counter: Counter = Counter()
    address_counter: Counter = Counter()
    for session in session_set:
        for protocol in session.protocols():
            protocol_counter[protocol] += 1
        address_counter[classify_session(session)] += 1
    packets = analysis.corpus.phase_packets(telescope, phase)
    sources_128 = len({p.src for p in packets})
    sources_64 = len({p.src >> 64 for p in packets})
    return TelescopeProfile(
        telescope=telescope,
        sources=sources_128,
        sessions=len(session_set),
        temporal_mix=_normalize(temporal_counter),
        protocol_mix=_normalize(protocol_counter),
        address_mix=_normalize(address_counter),
        rotation_ratio=sources_128 / max(sources_64, 1))


def bias_report(analysis: CorpusAnalysis,
                phase: Phase = Phase.FULL,
                min_sources: int = 3) -> BiasReport:
    """Quantify attractor bias across all telescopes.

    Telescopes with fewer than ``min_sources`` visitors are profiled but
    excluded from the divergence matrix (their mixes are noise).
    """
    profiles = {t: profile_telescope(analysis, t, phase)
                for t in analysis.corpus.telescopes()}
    comparable = [t for t, p in profiles.items()
                  if p.sources >= min_sources]
    divergences: dict[tuple[str, str], float] = {}
    for i, a in enumerate(sorted(comparable)):
        for b in sorted(comparable)[i + 1:]:
            divergences[(a, b)] = profiles[a].divergence(profiles[b])
    return BiasReport(profiles=profiles, divergences=divergences)
