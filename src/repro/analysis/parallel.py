"""Parallel analysis fan-out.

Table and figure generators are independent given a warm
:class:`~repro.analysis.context.CorpusAnalysis`, and their heavy lifting
is NumPy column work that releases the GIL — so a small thread pool
overlaps them effectively. Each task runs inside an ``analysis.fanout``
span carrying the task name; the tracer keeps per-thread span stacks, so
attribution survives the pool (spans record their thread id).

A crashing task is retried once after a short backoff (transient
failures — a figure racing a cache fill, an OS hiccup — usually clear on
the second attempt), and if the retry also fails the task runs once more
serially outside the pool before its exception propagates. Each recovery
step bumps an ``analysis.fanout_*`` counter so flakes are visible.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

from repro import obs
from repro.errors import AnalysisError

#: seconds slept before the in-pool retry of a crashed task.
RETRY_BACKOFF = 0.05


def fan_out(tasks: Mapping[str, Callable[[], object]],
            jobs: int = 1) -> dict[str, tuple[float, object]]:
    """Run named zero-arg tasks, optionally across ``jobs`` threads.

    Returns ``{name: (seconds, result)}`` in the tasks' insertion order
    regardless of completion order, so callers render deterministically.
    A task that keeps failing after one bounded retry and a final serial
    fallback propagates its last exception.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")

    def run_once(name: str, fn: Callable[[], object], attempt: int) \
            -> tuple[float, object]:
        started = time.perf_counter()
        with obs.span("analysis.fanout", task=name, jobs=jobs,
                      attempt=attempt):
            result = fn()
        return time.perf_counter() - started, result

    def run_with_retry(name: str, fn: Callable[[], object]) \
            -> tuple[float, object]:
        try:
            return run_once(name, fn, attempt=1)
        except Exception:
            obs.add("analysis.fanout_retries_total", task=name)
            time.sleep(RETRY_BACKOFF)
            return run_once(name, fn, attempt=2)

    if jobs == 1 or len(tasks) <= 1:
        return {name: run_with_retry(name, fn)
                for name, fn in tasks.items()}

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = {name: pool.submit(run_with_retry, name, fn)
                   for name, fn in tasks.items()}
        results: dict[str, tuple[float, object]] = {}
        failed: dict[str, Callable[[], object]] = {}
        for name, future in futures.items():
            try:
                results[name] = future.result()
            except Exception:
                failed[name] = tasks[name]
    for name, fn in failed.items():
        # last resort: run the crashed task serially, outside the pool,
        # so one bad thread interaction cannot sink the whole fan-out
        obs.add("analysis.fanout_serial_fallbacks_total", task=name)
        results[name] = run_once(name, fn, attempt=3)
    # re-impose insertion order after fallbacks appended at the end
    return {name: results[name] for name in tasks}
