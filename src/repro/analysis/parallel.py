"""Parallel analysis fan-out.

Table and figure generators are independent given a warm
:class:`~repro.analysis.context.CorpusAnalysis`, and their heavy lifting
is NumPy column work that releases the GIL — so a small thread pool
overlaps them effectively. Each task runs inside an ``analysis.fanout``
span carrying the task name; the tracer keeps per-thread span stacks, so
attribution survives the pool (spans record their thread id).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

from repro import obs
from repro.errors import AnalysisError


def fan_out(tasks: Mapping[str, Callable[[], object]],
            jobs: int = 1) -> dict[str, tuple[float, object]]:
    """Run named zero-arg tasks, optionally across ``jobs`` threads.

    Returns ``{name: (seconds, result)}`` in the tasks' insertion order
    regardless of completion order, so callers render deterministically.
    A failing task propagates its exception after the pool drains.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")

    def run_one(name: str, fn: Callable[[], object]) \
            -> tuple[float, object]:
        started = time.perf_counter()
        with obs.span("analysis.fanout", task=name, jobs=jobs):
            result = fn()
        return time.perf_counter() - started, result

    if jobs == 1 or len(tasks) <= 1:
        return {name: run_one(name, fn) for name, fn in tasks.items()}
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = {name: pool.submit(run_one, name, fn)
                   for name, fn in tasks.items()}
        return {name: future.result() for name, future in futures.items()}
