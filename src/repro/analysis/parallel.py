"""Parallel analysis fan-out.

Table and figure generators are independent given a warm
:class:`~repro.analysis.context.CorpusAnalysis`, and their heavy lifting
is NumPy column work that releases the GIL — so a small thread pool
overlaps them effectively. Each task runs inside an ``analysis.fanout``
span carrying the task name; the tracer keeps per-thread span stacks, so
attribution survives the pool (spans record their thread id).

A crashing task is retried once after a short backoff (transient
failures — a figure racing a cache fill, an OS hiccup — usually clear on
the second attempt), and if the retry also fails the task runs once more
serially outside the pool before its exception propagates. Each recovery
step bumps an ``analysis.fanout_*`` counter so flakes are visible.

Callers that already own a pool (the sharded corpus builder, a CLI run
doing several fan-outs) can inject it via ``executor=`` instead of
paying pool startup per call. The injected executor may be a thread or a
process pool; the per-task wrapper is a module-level function, so the
submission itself always pickles — with a *process* pool the tasks
themselves must be picklable too (module-level callables or partials,
not lambdas or closures).
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable, Mapping

from repro import obs
from repro.errors import AnalysisError

#: seconds slept before the in-pool retry of a crashed task.
RETRY_BACKOFF = 0.05


def _run_once(name: str, fn: Callable[[], object], jobs: int,
              attempt: int) -> tuple[float, object]:
    started = time.perf_counter()
    with obs.span("analysis.fanout", task=name, jobs=jobs,
                  attempt=attempt):
        result = fn()
    return time.perf_counter() - started, result


def _run_with_retry(name: str, fn: Callable[[], object], jobs: int) \
        -> tuple[float, object]:
    """One task with its bounded in-pool retry.

    Module-level (not a closure) so an injected process pool can pickle
    the submission. Inside a process-pool worker the retry counter lands
    in the worker's registry — fold it back explicitly if it matters.
    """
    try:
        return _run_once(name, fn, jobs, attempt=1)
    except Exception:
        obs.add("analysis.fanout_retries_total", task=name)
        time.sleep(RETRY_BACKOFF)
        return _run_once(name, fn, jobs, attempt=2)


def fan_out(tasks: Mapping[str, Callable[[], object]],
            jobs: int = 1,
            executor: Executor | None = None) \
        -> dict[str, tuple[float, object]]:
    """Run named zero-arg tasks, optionally across ``jobs`` workers.

    Returns ``{name: (seconds, result)}`` in the tasks' insertion order
    regardless of completion order, so callers render deterministically.
    A task that keeps failing after one bounded retry and a final serial
    fallback propagates its last exception.

    ``executor`` injects a shared pool (thread or process) instead of
    spinning up a private thread pool; it is left running for the caller
    to reuse and eventually shut down.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")

    if executor is None and (jobs == 1 or len(tasks) <= 1):
        return {name: _run_with_retry(name, fn, jobs)
                for name, fn in tasks.items()}

    pool = executor if executor is not None \
        else ThreadPoolExecutor(max_workers=jobs)
    try:
        futures = {name: pool.submit(_run_with_retry, name, fn, jobs)
                   for name, fn in tasks.items()}
        results: dict[str, tuple[float, object]] = {}
        failed: dict[str, Callable[[], object]] = {}
        for name, future in futures.items():
            try:
                results[name] = future.result()
            except Exception:
                failed[name] = tasks[name]
    finally:
        if executor is None:
            pool.shutdown(wait=True)
    for name, fn in failed.items():
        # last resort: run the crashed task serially, outside the pool,
        # so one bad worker interaction cannot sink the whole fan-out
        obs.add("analysis.fanout_serial_fallbacks_total", task=name)
        results[name] = _run_once(name, fn, jobs, attempt=3)
    # re-impose insertion order after fallbacks appended at the end
    return {name: results[name] for name in tasks}
