"""Classifier validation against the generative ground truth.

The original study could never check its classifiers — real scanners do
not disclose their schedules. The simulation knows them, so this module
closes the loop: it maps observed /128 sources back to the scanner agents
that own them and scores each classifier with a confusion matrix.

Recurring scanners legitimately degrade when the capture window clips
their schedule (a periodic scanner seen once *is* a one-off in the data),
so accuracy is reported both raw and with those degradations excused.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.context import CorpusAnalysis
from repro.core.aggregation import AggregationLevel
from repro.errors import AnalysisError
from repro.experiment.driver import ExperimentResult
from repro.experiment.phases import Phase

#: (truth, predicted) pairs that the observation window legitimately
#: produces: a recurring scanner captured with too few sessions.
EXCUSABLE = {
    ("periodic", "one-off"),
    ("periodic", "intermittent"),
    ("intermittent", "one-off"),
    ("intermittent", "periodic"),
}


@dataclass
class ConfusionMatrix:
    """Counts of (truth, predicted) label pairs."""

    counts: Counter = field(default_factory=Counter)

    def add(self, truth: str, predicted: str) -> None:
        self.counts[(truth, predicted)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def correct(self) -> int:
        return sum(count for (truth, predicted), count
                   in self.counts.items() if truth == predicted)

    def accuracy(self, excuse: set[tuple[str, str]] = frozenset()) \
            -> float:
        """Share of correct predictions; ``excuse`` pairs count correct."""
        if self.total == 0:
            raise AnalysisError("empty confusion matrix")
        good = self.correct + sum(
            count for pair, count in self.counts.items()
            if pair in excuse and pair[0] != pair[1])
        return good / self.total

    def render(self, title: str = "confusion") -> str:
        lines = [title]
        for (truth, predicted), count in sorted(
                self.counts.items(), key=lambda kv: -kv[1]):
            marker = "=" if truth == predicted else ">"
            lines.append(f"  {truth} {marker} {predicted}: {count}")
        return "\n".join(lines)


def _source_owners(result: ExperimentResult, telescope: str) \
        -> dict[int, int]:
    """Map observed /128 sources to the scanner_id that owns them."""
    owners: dict[int, int] = {}
    for packet in result.corpus.packets(telescope):
        owners.setdefault(packet.src, packet.scanner_id)
    return owners


def validate_temporal(result: ExperimentResult,
                      telescope: str = "T1",
                      phase: Phase = Phase.SPLIT) -> ConfusionMatrix:
    """Score the §5.1 temporal classifier against the ground truth."""
    analysis = CorpusAnalysis(result.corpus)
    predicted = analysis.temporal_classes(telescope, AggregationLevel.ADDR,
                                          phase)
    truth = result.ground_truth_temporal()
    owners = _source_owners(result, telescope)
    matrix = ConfusionMatrix()
    for source, predicted_class in predicted.items():
        scanner_id = owners.get(source)
        if scanner_id is None:
            continue
        expected = truth.get(scanner_id)
        if expected in (None, "reactive"):
            continue  # reactive scanners have no intrinsic class
        matrix.add(expected, predicted_class.value)
    if matrix.total == 0:
        raise AnalysisError("no attributable sources to validate")
    return matrix


def validate_network(result: ExperimentResult) -> ConfusionMatrix:
    """Score the §5.2 network-selection classifier (T1, split period)."""
    analysis = CorpusAnalysis(result.corpus)
    predicted = analysis.network_classes()
    truth = result.ground_truth_network()
    owners = _source_owners(result, "T1")
    matrix = ConfusionMatrix()
    for source, predicted_class in predicted.items():
        scanner_id = owners.get(source)
        if scanner_id is None:
            continue
        expected = truth.get(scanner_id)
        if not expected:
            continue
        matrix.add(expected, predicted_class.value)
    if matrix.total == 0:
        raise AnalysisError("no attributable sources to validate")
    return matrix


def validate_tools(result: ExperimentResult) -> ConfusionMatrix:
    """Score tool identification (§5.4) against the scanners' real tools."""
    from repro.core.payloads import identify_tools
    analysis = CorpusAnalysis(result.corpus)
    session_set = analysis.split_sessions_t1()
    report = identify_tools(session_set.sessions,
                            resolver=result.corpus.resolver)
    owners = _source_owners(result, "T1")
    by_id = {s.scanner_id: s for s in result.population}
    matrix = ConfusionMatrix()
    for source, tool_name in report.source_tools.items():
        scanner_id = owners.get(source)
        scanner = by_id.get(scanner_id) if scanner_id is not None else None
        if scanner is None:
            continue
        expected = scanner.tool.name if scanner.tool else "(none)"
        matrix.add(expected, tool_name)
    if matrix.total == 0:
        raise AnalysisError("no attributed tools to validate")
    return matrix
