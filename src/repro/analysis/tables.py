"""Table generators (Tables 2-8 of the paper).

Each ``tableN`` function returns a result object holding the raw numbers
(for tests and EXPERIMENTS.md) and a :class:`repro.analysis.report.Table`
for printing. Table 1 is a literature survey and has no generator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.context import CorpusAnalysis
from repro.obs import traced
from repro.analysis.report import Table, format_count, format_share
from repro.core.aggregation import AggregationLevel
from repro.core.heavy import find_heavy_hitters
from repro.core.netclass import NetworkClass
from repro.core.payloads import identify_tools
from repro.core.protocols import (TRACEROUTE_BUCKET, protocol_stats,
                                  top_ports)
from repro.core.temporal import TemporalClass
from repro.experiment.phases import Phase
from repro.net.addrtypes import AddressType, TYPE_ORDER, classify_iids
from repro.scanners.registry import NetworkType
from repro.telescope.packet import Protocol

TELESCOPES = ("T1", "T2", "T3", "T4")


# -- Table 2 -----------------------------------------------------------------


@dataclass
class Table2Result:
    """Packets, sessions, and /128 sources per transport protocol."""

    packets: dict[Protocol, int]
    packet_shares: dict[Protocol, float]
    sessions: dict[Protocol, int]
    session_shares: dict[Protocol, float]
    sources: dict[Protocol, int]
    source_shares: dict[Protocol, float]
    table: Table


@traced("analysis.table2")
def table2(analysis: CorpusAnalysis, phase: Phase = Phase.FULL) \
        -> Table2Result:
    """Table 2: per-protocol traffic across all telescopes."""
    packets = [p for t in TELESCOPES
               for p in analysis.corpus.phase_packets(t, phase)]
    sessions = analysis.all_sessions(AggregationLevel.ADDR, phase)
    stats = protocol_stats(packets, sessions)
    table = Table(
        title="Table 2: packets, sessions, and sources per protocol",
        columns=["Protocol", "Packets", "Pkt%", "Sessions", "Sess%",
                 "Sources", "Src%"])
    order = (Protocol.ICMPV6, Protocol.UDP, Protocol.TCP)
    for protocol in order:
        table.add_row(
            protocol.name,
            format_count(stats.packets.get(protocol, 0)),
            format_share(stats.packet_share(protocol)),
            format_count(stats.sessions.get(protocol, 0)),
            format_share(stats.session_share(protocol)),
            format_count(stats.sources.get(protocol, 0)),
            format_share(stats.source_share(protocol)))
    return Table2Result(
        packets=stats.packets,
        packet_shares={p: stats.packet_share(p) for p in order},
        sessions=stats.sessions,
        session_shares={p: stats.session_share(p) for p in order},
        sources=stats.sources,
        source_shares={p: stats.source_share(p) for p in order},
        table=table)


# -- Table 3 --------------------------------------------------------------------


@dataclass
class Table3Result:
    """Distribution of target address types."""

    packets: dict[AddressType, int]
    packet_shares: dict[AddressType, float]
    sources: dict[AddressType, int]
    source_shares: dict[AddressType, float]
    table: Table


@traced("analysis.table3")
def table3(analysis: CorpusAnalysis, phase: Phase = Phase.FULL) \
        -> Table3Result:
    """Table 3: addr6 target-type distribution (packets and sources).

    Runs columnar: targets classify once per *unique* IID through the
    vectorized classifier, and per-source type sets reduce to one
    ``np.unique`` over (src_hi, src_lo, type) triples.
    """
    parts = [analysis.corpus.phase_table(t, phase) for t in TELESCOPES]
    dst_lo = np.concatenate([t.dst_lo for t in parts])
    src_hi = np.concatenate([t.src_hi for t in parts])
    src_lo = np.concatenate([t.src_lo for t in parts])
    total_packets = len(dst_lo)

    uniq, inverse = np.unique(dst_lo, return_inverse=True)
    codes = classify_iids(uniq)[inverse]
    per_code = np.bincount(codes, minlength=len(TYPE_ORDER))
    packet_counts: Counter = Counter({
        TYPE_ORDER[i]: int(c) for i, c in enumerate(per_code) if c})

    triples = np.empty(total_packets, dtype=[
        ("hi", np.uint64), ("lo", np.uint64), ("code", np.uint8)])
    triples["hi"] = src_hi
    triples["lo"] = src_lo
    triples["code"] = codes
    distinct = np.unique(triples)
    total_sources = len(np.unique(distinct[["hi", "lo"]]))
    per_source_code = np.bincount(distinct["code"],
                                  minlength=len(TYPE_ORDER))
    source_counts: Counter = Counter({
        TYPE_ORDER[i]: int(c) for i, c in enumerate(per_source_code) if c})
    table = Table(
        title="Table 3: distribution of target address types",
        columns=["Address Type", "Packets", "Pkt%", "Sources", "Src%"])
    for addr_type, count in packet_counts.most_common():
        table.add_row(
            addr_type.value,
            format_count(count),
            format_share(count / total_packets, 2),
            format_count(source_counts.get(addr_type, 0)),
            format_share(source_counts.get(addr_type, 0)
                         / max(total_sources, 1), 2))
    table.add_note("source shares may exceed 100% (multi-type scanners)")
    return Table3Result(
        packets=dict(packet_counts),
        packet_shares={t: c / total_packets
                       for t, c in packet_counts.items()},
        sources=dict(source_counts),
        source_shares={t: c / max(total_sources, 1)
                       for t, c in source_counts.items()},
        table=table)


# -- Table 4 ------------------------------------------------------------------------


@dataclass
class Table4Result:
    """Top-5 TCP and UDP ports on /64-aggregated sessions."""

    tcp: list[tuple[int, int, float]]
    udp: list[tuple[int, int, float]]
    table: Table


@traced("analysis.table4")
def table4(analysis: CorpusAnalysis, phase: Phase = Phase.FULL,
           n: int = 5) -> Table4Result:
    """Table 4: top target ports per session (/64 source aggregation)."""
    sessions = analysis.all_sessions(AggregationLevel.SUBNET, phase)
    tcp = top_ports(sessions, Protocol.TCP, n)
    udp = top_ports(sessions, Protocol.UDP, n)
    table = Table(
        title="Table 4: top 5 ports targeted by sessions (/64 aggregation)",
        columns=["Rank", "TCP Port", "TCP #", "TCP %",
                 "UDP Port", "UDP #", "UDP %"])

    def port_name(port: int) -> str:
        return "Traceroute" if port == TRACEROUTE_BUCKET else str(port)

    for rank in range(max(len(tcp), len(udp))):
        tcp_row = tcp[rank] if rank < len(tcp) else ("-", 0, 0.0)
        udp_row = udp[rank] if rank < len(udp) else ("-", 0, 0.0)
        table.add_row(
            f"#{rank + 1}",
            port_name(tcp_row[0]) if tcp_row[0] != "-" else "-",
            format_count(tcp_row[1]),
            format_share(tcp_row[2]),
            port_name(udp_row[0]) if udp_row[0] != "-" else "-",
            format_count(udp_row[1]),
            format_share(udp_row[2]))
    return Table4Result(tcp=tcp, udp=udp, table=table)


# -- Table 5 -----------------------------------------------------------------------------


@dataclass
class Table5Result:
    """Per-telescope comparison during the initial period (5a + 5b)."""

    sources_128: dict[str, int]
    sources_64: dict[str, int]
    asns: dict[str, int]
    destinations: dict[str, int]
    packets: dict[str, int]
    protocol_sources: dict[str, dict[Protocol, int]]
    table_a: Table
    table_b: Table
    #: fraction of the initial period each capture was up (1.0 = gapless)
    coverage: dict[str, float] = field(default_factory=dict)
    #: raw packet counts scaled to full-coverage equivalents
    packets_normalized: dict[str, float] = field(default_factory=dict)


@traced("analysis.table5")
def table5(analysis: CorpusAnalysis) -> Table5Result:
    """Table 5: telescope comparison before the split period."""
    degraded = analysis.warn_if_degraded("table5")
    sources_128: dict[str, int] = {}
    sources_64: dict[str, int] = {}
    asns: dict[str, int] = {}
    destinations: dict[str, int] = {}
    packets: dict[str, int] = {}
    protocol_sources: dict[str, dict[Protocol, int]] = {}
    for telescope in TELESCOPES:
        pkts = analysis.corpus.phase_packets(telescope, Phase.INITIAL)
        packets[telescope] = len(pkts)
        sources_128[telescope] = len({p.src for p in pkts})
        sources_64[telescope] = len({p.src >> 64 for p in pkts})
        asns[telescope] = len({p.src_asn for p in pkts if p.src_asn})
        destinations[telescope] = len({p.dst for p in pkts})
        per_protocol: dict[Protocol, set[int]] = {}
        for p in pkts:
            per_protocol.setdefault(p.protocol, set()).add(p.src)
        protocol_sources[telescope] = {
            proto: len(srcs) for proto, srcs in per_protocol.items()}

    table_a = Table(
        title="Table 5(a): telescope comparison, initial period",
        columns=["Metric", "T1", "T2", "T3", "T4"])
    for label, data in (("/128 source addr.", sources_128),
                        ("/64 source addr.", sources_64),
                        ("ASN", asns),
                        ("Destination addr.", destinations),
                        ("Packets", packets)):
        table_a.add_row(label, *(format_count(data[t]) for t in TELESCOPES))

    coverage = {t: analysis.covered_fraction(t, Phase.INITIAL)
                for t in TELESCOPES}
    packets_normalized = {
        t: packets[t] / coverage[t] if coverage[t] > 0.0 else 0.0
        for t in TELESCOPES}
    if degraded:
        # gap-aware rows so partial captures stay comparable
        table_a.add_row("Covered time",
                        *(format_share(coverage[t]) for t in TELESCOPES))
        table_a.add_row("Packets (normalized)",
                        *(format_count(int(round(packets_normalized[t])))
                          for t in TELESCOPES))

    table_b = Table(
        title="Table 5(b): distinct sources per protocol, initial period",
        columns=["Protocol", "T1 #", "T1 %", "T2 #", "T2 %",
                 "T3 #", "T3 %", "T4 #", "T4 %"])
    for protocol in (Protocol.ICMPV6, Protocol.TCP, Protocol.UDP):
        cells = []
        for telescope in TELESCOPES:
            count = protocol_sources[telescope].get(protocol, 0)
            total = max(sources_128[telescope], 1)
            cells.extend([format_count(count),
                          format_share(count / total)])
        table_b.add_row(protocol.name, *cells)
    return Table5Result(
        sources_128=sources_128, sources_64=sources_64, asns=asns,
        destinations=destinations, packets=packets,
        protocol_sources=protocol_sources,
        table_a=table_a, table_b=table_b,
        coverage=coverage, packets_normalized=packets_normalized)


# -- Table 6 ---------------------------------------------------------------------------------


@dataclass
class Table6Result:
    """Taxonomy classification of T1 split-period scanners."""

    temporal_scanners: dict[TemporalClass, int]
    temporal_sessions: dict[TemporalClass, int]
    network_scanners: dict[NetworkClass, int]
    network_sessions: dict[NetworkClass, int]
    table: Table


@traced("analysis.table6")
def table6(analysis: CorpusAnalysis) -> Table6Result:
    """Table 6: temporal and network-selection classes (T1, split)."""
    by_source = analysis.by_source("T1", AggregationLevel.ADDR, Phase.SPLIT)
    temporal = analysis.temporal_classes("T1", AggregationLevel.ADDR,
                                         Phase.SPLIT)
    network = analysis.network_classes()
    temporal_scanners: Counter = Counter(temporal.values())
    temporal_sessions: Counter = Counter()
    for source, sessions in by_source.items():
        temporal_sessions[temporal[source]] += len(sessions)
    network_scanners: Counter = Counter(network.values())
    network_sessions: Counter = Counter()
    for source, sessions in by_source.items():
        cls = network.get(source)
        if cls is not None:
            network_sessions[cls] += len(sessions)

    total_scanners = sum(temporal_scanners.values())
    total_sessions = sum(temporal_sessions.values())
    net_total_scanners = sum(network_scanners.values())
    net_total_sessions = sum(network_sessions.values())
    table = Table(
        title="Table 6: taxonomy classification (T1, split period)",
        columns=["Classification", "Scanners", "Scan%", "Sessions", "Sess%"])
    for cls in (TemporalClass.ONE_OFF, TemporalClass.INTERMITTENT,
                TemporalClass.PERIODIC):
        table.add_row(
            f"Temporal: {cls.value}",
            format_count(temporal_scanners.get(cls, 0)),
            format_share(temporal_scanners.get(cls, 0)
                         / max(total_scanners, 1), 2),
            format_count(temporal_sessions.get(cls, 0)),
            format_share(temporal_sessions.get(cls, 0)
                         / max(total_sessions, 1), 2))
    for cls in (NetworkClass.SINGLE_PREFIX, NetworkClass.SIZE_INDEPENDENT,
                NetworkClass.INCONSISTENT, NetworkClass.SIZE_DEPENDENT):
        table.add_row(
            f"Network: {cls.value}",
            format_count(network_scanners.get(cls, 0)),
            format_share(network_scanners.get(cls, 0)
                         / max(net_total_scanners, 1), 2),
            format_count(network_sessions.get(cls, 0)),
            format_share(network_sessions.get(cls, 0)
                         / max(net_total_sessions, 1), 2))
    return Table6Result(
        temporal_scanners=dict(temporal_scanners),
        temporal_sessions=dict(temporal_sessions),
        network_scanners=dict(network_scanners),
        network_sessions=dict(network_sessions),
        table=table)


# -- Table 7 ----------------------------------------------------------------------------------


@dataclass
class Table7Result:
    """Identified scan tools among T1 split-period sources."""

    per_tool: dict[str, tuple[int, int]]
    total_scanners: int
    total_sessions: int
    table: Table


@traced("analysis.table7")
def table7(analysis: CorpusAnalysis) -> Table7Result:
    """Table 7: public scan tools identified via payloads and RDNS."""
    session_set = analysis.split_sessions_t1()
    report = identify_tools(session_set.sessions,
                            resolver=analysis.corpus.resolver)
    total_scanners = len(session_set.sources())
    total_sessions = len(session_set)
    table = Table(
        title="Table 7: identified scan tools (T1, split period)",
        columns=["Scan Tool", "Scanners", "Scan%", "Sessions", "Sess%"])
    ranked = sorted(report.per_tool.items(),
                    key=lambda kv: (-kv[1][0], kv[0]))
    for tool, (scanners, sessions) in ranked:
        table.add_row(
            tool,
            format_count(scanners),
            format_share(scanners / max(total_scanners, 1), 2),
            format_count(sessions),
            format_share(sessions / max(total_sessions, 1), 2))
    return Table7Result(per_tool=report.per_tool,
                        total_scanners=total_scanners,
                        total_sessions=total_sessions, table=table)


# -- Table 8 -------------------------------------------------------------------------------------


@dataclass
class Table8Result:
    """Network types of T1 split-period scan sources."""

    scanners: dict[NetworkType, int]
    sessions: dict[NetworkType, int]
    packets: dict[NetworkType, int]
    packets_without_hitters: dict[NetworkType, int]
    table: Table


@traced("analysis.table8")
def table8(analysis: CorpusAnalysis) -> Table8Result:
    """Table 8: scanner origins by network type, with/without hitters."""
    registry = analysis.corpus.registry
    session_set = analysis.split_sessions_t1()
    packets = analysis.corpus.phase_packets("T1", Phase.SPLIT)
    hitters = {h.source for h in find_heavy_hitters({"T1": packets})}

    scanners: Counter = Counter()
    sessions: Counter = Counter()
    for source, source_sessions in session_set.by_source().items():
        network_type = registry.network_type_of(source)
        scanners[network_type] += 1
        sessions[network_type] += len(source_sessions)
    packet_counts: Counter = Counter()
    packets_wo: Counter = Counter()
    for p in packets:
        network_type = registry.network_type_of(p.src)
        packet_counts[network_type] += 1
        if p.src not in hitters:
            packets_wo[network_type] += 1

    total_scanners = sum(scanners.values())
    total_sessions = sum(sessions.values())
    total_packets = sum(packet_counts.values())
    table = Table(
        title="Table 8: network types of scan sources (T1, split period)",
        columns=["Network", "Scanners", "Scan%", "Sessions", "Sess%",
                 "Packets", "Pkt%"])
    order = (NetworkType.HOSTING, NetworkType.ISP, NetworkType.EDUCATION,
             NetworkType.BUSINESS, NetworkType.GOVERNMENT,
             NetworkType.UNKNOWN)
    for network_type in order:
        table.add_row(
            network_type.value,
            format_count(scanners.get(network_type, 0)),
            format_share(scanners.get(network_type, 0)
                         / max(total_scanners, 1), 2),
            format_count(sessions.get(network_type, 0)),
            format_share(sessions.get(network_type, 0)
                         / max(total_sessions, 1), 2),
            format_count(packet_counts.get(network_type, 0)),
            format_share(packet_counts.get(network_type, 0)
                         / max(total_packets, 1), 2))
        if network_type in (NetworkType.HOSTING, NetworkType.EDUCATION):
            table.add_row(
                f"{network_type.value} w/o Hit.",
                format_count(scanners.get(network_type, 0)),
                format_share(scanners.get(network_type, 0)
                             / max(total_scanners, 1), 2),
                format_count(sessions.get(network_type, 0)),
                format_share(sessions.get(network_type, 0)
                             / max(total_sessions, 1), 2),
                format_count(packets_wo.get(network_type, 0)),
                format_share(packets_wo.get(network_type, 0)
                             / max(total_packets, 1), 2))
    return Table8Result(
        scanners=dict(scanners), sessions=dict(sessions),
        packets=dict(packet_counts),
        packets_without_hitters=dict(packets_wo), table=table)
