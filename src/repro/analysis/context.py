"""Cached analysis context over one corpus.

Sessionization and classification are the expensive steps shared by most
tables and figures; :class:`CorpusAnalysis` computes each combination of
(telescope, aggregation level, phase) exactly once.

Sessionization runs on the columnar engine
(:func:`repro.core.columnar.sessionize_table`) by default; the original
per-packet object path is kept as a correctness oracle and can be forced
with ``use_columnar=False`` or ``REPRO_LEGACY_OBJECTS=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro import obs
from repro.core.aggregation import AggregationLevel
from repro.core.columnar import sessionize_table
from repro.core.netclass import NetworkClass
from repro.core.netclass import classify_all as classify_network_all
from repro.core.sessions import Session, SessionSet, sessionize
from repro.core.temporal import TemporalClass
from repro.core.temporal import classify_all as classify_temporal_all
from repro.analysis.degrade import warn_degraded
from repro.experiment.corpus import PacketCorpus
from repro.experiment.phases import Phase, phase_bounds


def _columnar_default() -> bool:
    return os.environ.get("REPRO_LEGACY_OBJECTS", "").lower() \
        not in ("1", "true", "yes")


@dataclass
class CorpusAnalysis:
    """Lazy, cached access to derived analysis products."""

    corpus: PacketCorpus
    use_columnar: bool = field(default_factory=_columnar_default)
    _sessions: dict = field(default_factory=dict)
    _temporal: dict = field(default_factory=dict)
    _network: dict = field(default_factory=dict)

    # -- coverage ------------------------------------------------------------

    def has_gaps(self) -> bool:
        """True when any telescope's capture has coverage gaps."""
        return self.corpus.has_gaps()

    def covered_fraction(self, telescope: str, phase: Phase = Phase.FULL) \
            -> float:
        """Fraction of a phase the telescope was actually capturing."""
        start, end = phase_bounds(self.corpus.config, phase)
        return self.corpus.covered_fraction(telescope, start, end)

    def warn_if_degraded(self, artifact: str) -> bool:
        """Emit one :class:`DegradationWarning` per gapped telescope.

        Returns True when the corpus has gaps, so artifact generators can
        switch to gap-normalized output in one call.
        """
        degraded = False
        for telescope, windows in self.corpus.coverage_gaps.items():
            if not windows:
                continue
            degraded = True
            down = sum(end - start for start, end in windows)
            warn_degraded(
                f"{artifact}: {telescope} capture has "
                f"{len(windows)} coverage gap(s) totalling {down:.0f}s; "
                f"output is normalized by covered time",
                artifact=artifact, telescope=telescope,
                reason="coverage_gap")
        return degraded

    # -- sessions ------------------------------------------------------------

    def sessions(self, telescope: str,
                 level: AggregationLevel = AggregationLevel.ADDR,
                 phase: Phase = Phase.FULL) -> SessionSet:
        key = (telescope, level, phase)
        cached = self._sessions.get(key)
        if cached is not None:
            obs.add("analysis.sessions.cache_hits_total")
            return cached
        obs.add("analysis.sessions.cache_misses_total")
        with obs.span("analysis.sessionize", telescope=telescope,
                      level=level.name, phase=phase.name,
                      engine="columnar" if self.use_columnar else "legacy"):
            if self.use_columnar:
                table = self.corpus.phase_table(telescope, phase)
                self._sessions[key] = sessionize_table(
                    table, telescope=telescope, level=level)
            else:
                packets = self.corpus.phase_packets(telescope, phase)
                self._sessions[key] = sessionize(
                    packets, telescope=telescope, level=level)
        return self._sessions[key]

    def all_sessions(self, level: AggregationLevel = AggregationLevel.ADDR,
                     phase: Phase = Phase.FULL) -> list[Session]:
        combined: list[Session] = []
        for telescope in self.corpus.telescopes():
            combined.extend(self.sessions(telescope, level, phase).sessions)
        return combined

    def by_source(self, telescope: str,
                  level: AggregationLevel = AggregationLevel.ADDR,
                  phase: Phase = Phase.FULL) -> dict[int, list[Session]]:
        return self.sessions(telescope, level, phase).by_source()

    # -- classification ---------------------------------------------------------

    def temporal_classes(self, telescope: str,
                         level: AggregationLevel = AggregationLevel.ADDR,
                         phase: Phase = Phase.FULL) \
            -> dict[int, TemporalClass]:
        key = (telescope, level, phase)
        if key not in self._temporal:
            obs.add("analysis.classify.cache_misses_total")
            with obs.span("analysis.classify_temporal", telescope=telescope,
                          level=level.name, phase=phase.name):
                self._temporal[key] = classify_temporal_all(
                    self.by_source(telescope, level, phase))
        else:
            obs.add("analysis.classify.cache_hits_total")
        return self._temporal[key]

    def network_classes(self, level: AggregationLevel = AggregationLevel.ADDR) \
            -> dict[int, NetworkClass]:
        """T1 split-period network-selection classes per source."""
        if level not in self._network:
            obs.add("analysis.classify.cache_misses_total")
            with obs.span("analysis.classify_network", level=level.name):
                self._network[level] = classify_network_all(
                    self.by_source("T1", level, Phase.SPLIT),
                    self.corpus.schedule)
        else:
            obs.add("analysis.classify.cache_hits_total")
        return self._network[level]

    # -- convenience -----------------------------------------------------------------

    def split_sessions_t1(self,
                          level: AggregationLevel = AggregationLevel.ADDR) \
            -> SessionSet:
        return self.sessions("T1", level, Phase.SPLIT)

    def initial_packets(self, telescope: str):
        """Packets of the INITIAL (baseline) phase.

        On an out-of-core v2 corpus this is a pushdown slice: only the
        chunks whose time footprint overlaps the baseline weeks are
        opened and materialized as objects — the remaining ~¾ of the
        capture stays on disk (DESIGN §9). Phase *tables* used by
        :meth:`sessions` go through ``corpus.phase_table``, which pushes
        down the same way.
        """
        return self.corpus.phase_packets(telescope, Phase.INITIAL)
