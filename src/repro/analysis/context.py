"""Cached analysis context over one corpus.

Sessionization and classification are the expensive steps shared by most
tables and figures; :class:`CorpusAnalysis` computes each combination of
(telescope, aggregation level, phase) exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregation import AggregationLevel
from repro.core.netclass import NetworkClass
from repro.core.netclass import classify_all as classify_network_all
from repro.core.sessions import Session, SessionSet, sessionize
from repro.core.temporal import TemporalClass
from repro.core.temporal import classify_all as classify_temporal_all
from repro.experiment.corpus import PacketCorpus
from repro.experiment.phases import Phase


@dataclass
class CorpusAnalysis:
    """Lazy, cached access to derived analysis products."""

    corpus: PacketCorpus
    _sessions: dict = field(default_factory=dict)
    _temporal: dict = field(default_factory=dict)
    _network: dict = field(default_factory=dict)

    # -- sessions ------------------------------------------------------------

    def sessions(self, telescope: str,
                 level: AggregationLevel = AggregationLevel.ADDR,
                 phase: Phase = Phase.FULL) -> SessionSet:
        key = (telescope, level, phase)
        if key not in self._sessions:
            packets = self.corpus.phase_packets(telescope, phase)
            self._sessions[key] = sessionize(packets, telescope=telescope,
                                             level=level)
        return self._sessions[key]

    def all_sessions(self, level: AggregationLevel = AggregationLevel.ADDR,
                     phase: Phase = Phase.FULL) -> list[Session]:
        combined: list[Session] = []
        for telescope in self.corpus.telescopes():
            combined.extend(self.sessions(telescope, level, phase).sessions)
        return combined

    def by_source(self, telescope: str,
                  level: AggregationLevel = AggregationLevel.ADDR,
                  phase: Phase = Phase.FULL) -> dict[int, list[Session]]:
        return self.sessions(telescope, level, phase).by_source()

    # -- classification ---------------------------------------------------------

    def temporal_classes(self, telescope: str,
                         level: AggregationLevel = AggregationLevel.ADDR,
                         phase: Phase = Phase.FULL) \
            -> dict[int, TemporalClass]:
        key = (telescope, level, phase)
        if key not in self._temporal:
            self._temporal[key] = classify_temporal_all(
                self.by_source(telescope, level, phase))
        return self._temporal[key]

    def network_classes(self, level: AggregationLevel = AggregationLevel.ADDR) \
            -> dict[int, NetworkClass]:
        """T1 split-period network-selection classes per source."""
        if level not in self._network:
            self._network[level] = classify_network_all(
                self.by_source("T1", level, Phase.SPLIT),
                self.corpus.schedule)
        return self._network[level]

    # -- convenience -----------------------------------------------------------------

    def split_sessions_t1(self,
                          level: AggregationLevel = AggregationLevel.ADDR) \
            -> SessionSet:
        return self.sessions("T1", level, Phase.SPLIT)

    def initial_packets(self, telescope: str):
        return self.corpus.phase_packets(telescope, Phase.INITIAL)
