"""Structured graceful degradation for partial corpora.

When a capture has coverage gaps (fault-injected blackouts, quarantined
segments) the analyses keep producing artifacts instead of raising —
rates are normalized by covered time and every place that falls back
emits a :class:`DegradationWarning` carrying *which* artifact degraded,
*where*, and *why*. Warnings are real :mod:`warnings` (so tests can
assert on them and operators see them once per site) and each one bumps
the ``analysis.degradation_warnings_total`` counter.
"""

from __future__ import annotations

import warnings

from repro import obs


class DegradationWarning(UserWarning):
    """An analysis produced a degraded (but still well-defined) artifact.

    Attributes:
        artifact: the table/figure/loader that degraded (``"fig9"``, ...).
        telescope: the affected vantage point, when telescope-specific.
        reason: short machine-readable cause (``"coverage_gap"``,
            ``"sha256"``, ``"empty_phase"``, ...).
    """

    def __init__(self, message: str, *, artifact: str = "",
                 telescope: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.artifact = artifact
        self.telescope = telescope
        self.reason = reason


def warn_degraded(message: str, *, artifact: str = "", telescope: str = "",
                  reason: str = "", stacklevel: int = 3) -> None:
    """Emit a :class:`DegradationWarning` and count it."""
    obs.add("analysis.degradation_warnings_total",
            artifact=artifact or "unknown", reason=reason or "unknown")
    obs.event("degraded", artifact=artifact or "unknown",
              telescope=telescope or None, reason=reason or "unknown",
              message=message)
    warnings.warn(
        DegradationWarning(message, artifact=artifact, telescope=telescope,
                           reason=reason),
        stacklevel=stacklevel)


def gap_overlap(gaps, start: float, end: float) -> float:
    """Seconds of [start, end) covered by the given (start, end) gaps."""
    total = 0.0
    for gap_start, gap_end in gaps:
        total += max(0.0, min(end, gap_end) - max(start, gap_start))
    return total
