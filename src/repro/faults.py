"""Deterministic fault injection for the measurement substrate.

Real longitudinal telescope deployments (the paper's ran eleven months
across four vantage points) suffer capture outages, BGP session resets,
and in-flight packet loss. This module models those faults as a seeded,
declarative :class:`FaultPlan` that a :class:`FaultInjector` wires into a
built deployment:

- **telescope blackouts** — a capture drops every packet whose arrival
  time falls inside a window; the window is recorded as a coverage gap
  so analyses can normalize by covered time (both the scalar and the
  batched append path share one drop counter);
- **BGP session flaps** — the T1 announcements are withdrawn through the
  controller's speaker at flap start and re-announced at flap end, the
  data plane treats T1 as unrouted for the window, and the routing-epoch
  machinery of ``route_batch`` gains boundaries at the flap edges;
- **delivery loss** — each routed packet is dropped in flight with a
  fixed probability; the coin is a pure hash of ``(dst, time)`` under a
  dedicated named seed, so enabling loss never perturbs any other stream
  and the decision for a packet is independent of routing order (the
  sharded builder relies on this);
- **store corruption** — named corpus segments are bit-flipped after a
  save, for exercising the loader's checksum quarantine path;
- **process faults** — a shard worker SIGKILLs or hangs itself at a
  given fraction of simulated time, for chaos-testing the shard
  supervisor's retry/timeout machinery (DESIGN §11). Arming a process
  fault schedules no RNG draws and no extra simulation events beyond
  the trigger marker, so a surviving attempt's corpus is unaffected.

Every injected fault increments an ``faults.*`` obs counter and the
schedule markers run inside ``fault.*`` tracing spans. An empty plan
installs nothing: a run with the fault layer enabled but no faults is
byte-identical to a run without the layer (differential-tested).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import FaultError

#: Valid blackout / corruption targets.
TELESCOPE_NAMES = ("T1", "T2", "T3", "T4")

#: Valid process-fault kinds.
PROCESS_FAULT_KINDS = ("kill_shard", "hang_shard")

log = obs.log.get_logger("faults")


@dataclass(frozen=True, slots=True)
class BlackoutWindow:
    """One capture outage: ``telescope`` records nothing in [start, end)."""

    telescope: str
    start: float
    end: float


@dataclass(frozen=True, slots=True)
class BgpFlap:
    """One T1 BGP session reset: withdrawn at ``start``, back at ``end``."""

    start: float
    end: float


@dataclass(frozen=True, slots=True)
class ProcessFault:
    """One worker-process fault, triggered at a fraction of sim time.

    ``kill_shard`` makes the targeted shard worker SIGKILL itself when
    its simulation clock crosses ``at_fraction * duration``; the
    supervisor sees a dead process with exitcode -9. ``hang_shard``
    makes it spin forever at that point, exercising the wall-clock
    timeout path. ``max_attempt`` bounds which execution attempts fire
    the fault: the default 1 faults only the first try (so a retry
    succeeds); a large value faults every attempt (so the shard
    exhausts its budget and quarantine/strict handling kicks in).
    """

    kind: str
    shard: int
    at_fraction: float
    max_attempt: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, deterministic schedule of substrate faults.

    All times are absolute simulation seconds. The plan is pure data:
    two plans with equal fields produce identical fault behavior for the
    same master seed.
    """

    blackouts: tuple[BlackoutWindow, ...] = ()
    flaps: tuple[BgpFlap, ...] = ()
    #: probability that a routed packet is lost in flight ([0, 1)).
    loss_rate: float = 0.0
    #: corpus segments (telescope names) to corrupt after a save.
    corrupt_segments: tuple[str, ...] = ()
    #: worker-process faults (sharded runs only; ignored in-coordinator).
    process_faults: tuple[ProcessFault, ...] = ()

    def is_empty(self) -> bool:
        return (not self.blackouts and not self.flaps
                and self.loss_rate == 0.0 and not self.corrupt_segments
                and not self.process_faults)

    def validate(self) -> None:
        for window in self.blackouts:
            if window.telescope not in TELESCOPE_NAMES:
                raise FaultError(
                    f"blackout names unknown telescope {window.telescope!r}")
            if not (0.0 <= window.start < window.end):
                raise FaultError(
                    f"invalid blackout window [{window.start}, {window.end})")
        for flap in self.flaps:
            if not (0.0 <= flap.start < flap.end):
                raise FaultError(
                    f"invalid flap window [{flap.start}, {flap.end})")
        if not (0.0 <= self.loss_rate < 1.0):
            raise FaultError(f"loss_rate must be in [0, 1), "
                             f"got {self.loss_rate}")
        for name in self.corrupt_segments:
            if name not in TELESCOPE_NAMES:
                raise FaultError(f"unknown corrupt segment {name!r}")
        for fault in self.process_faults:
            if fault.kind not in PROCESS_FAULT_KINDS:
                raise FaultError(
                    f"unknown process fault kind {fault.kind!r} "
                    f"(expected one of {PROCESS_FAULT_KINDS})")
            if fault.shard < 0:
                raise FaultError(
                    f"process fault shard must be >= 0, got {fault.shard}")
            if not (0.0 <= fault.at_fraction <= 1.0):
                raise FaultError(
                    f"process fault at_fraction must be in [0, 1], "
                    f"got {fault.at_fraction}")
            if fault.max_attempt < 1:
                raise FaultError(
                    f"process fault max_attempt must be >= 1, "
                    f"got {fault.max_attempt}")

    def blackouts_for(self, telescope: str) \
            -> tuple[tuple[float, float], ...]:
        """Sorted (start, end) blackout windows of one telescope."""
        return tuple(sorted(
            (w.start, w.end) for w in self.blackouts
            if w.telescope == telescope))

    # -- (de)serialization -------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "blackouts": [{"telescope": w.telescope, "start": w.start,
                           "end": w.end} for w in self.blackouts],
            "flaps": [{"start": f.start, "end": f.end} for f in self.flaps],
            "loss_rate": self.loss_rate,
            "corrupt_segments": list(self.corrupt_segments),
            "process_faults": [
                {"kind": p.kind, "shard": p.shard,
                 "at_fraction": p.at_fraction,
                 "max_attempt": p.max_attempt}
                for p in self.process_faults],
        }, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise FaultError("fault plan must be a JSON object")
        unknown = set(raw) - {"blackouts", "flaps", "loss_rate",
                              "corrupt_segments", "process_faults"}
        if unknown:
            raise FaultError(f"unknown fault plan keys: {sorted(unknown)}")
        try:
            plan = cls(
                blackouts=tuple(
                    BlackoutWindow(telescope=b["telescope"],
                                   start=float(b["start"]),
                                   end=float(b["end"]))
                    for b in raw.get("blackouts", ())),
                flaps=tuple(
                    BgpFlap(start=float(f["start"]), end=float(f["end"]))
                    for f in raw.get("flaps", ())),
                loss_rate=float(raw.get("loss_rate", 0.0)),
                corrupt_segments=tuple(raw.get("corrupt_segments", ())),
                process_faults=tuple(
                    ProcessFault(kind=p["kind"], shard=int(p["shard"]),
                                 at_fraction=float(p["at_fraction"]),
                                 max_attempt=int(p.get("max_attempt", 1)))
                    for p in raw.get("process_faults", ())))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault plan entry: {exc}") from exc
        plan.validate()
        return plan

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        if not path.exists():
            raise FaultError(f"no fault plan at {path}")
        return cls.from_json(path.read_text())


@dataclass
class FaultInjector:
    """Wires a :class:`FaultPlan` into a built deployment.

    The injector is part of the simulated world once installed (its flap
    and marker callbacks sit in the event queue), so it is picklable and
    checkpoints transparently with the rest of the run.
    """

    plan: FaultPlan
    seed: int = 0
    installed: bool = field(default=False, init=False)
    blackouts_started: int = field(default=0, init=False)
    flaps_fired: int = field(default=0, init=False)

    def install(self, deployment, control_plane: bool = True) -> None:
        """Arm every fault of the plan on ``deployment``.

        An empty plan is a strict no-op: no events are scheduled, no RNG
        streams are created, and the run is byte-identical to one without
        the fault layer.

        ``control_plane=False`` arms only the data-plane side of the
        plan — blackout windows, T1 outage edges for the routing epochs,
        delivery loss — and skips the flap withdraw/re-announce events.
        Shard workers replaying a recorded collector feed use this: the
        flap's BGP activity already happened in the coordinator's
        recording pass and is baked into the journal they replay, so
        running it again would double-inject the control-plane fault.
        """
        if self.installed:
            raise FaultError("fault injector already installed")
        self.plan.validate()
        self.installed = True
        if self.plan.is_empty():
            return
        with obs.span("fault.install",
                      blackouts=len(self.plan.blackouts),
                      flaps=len(self.plan.flaps),
                      loss_rate=self.plan.loss_rate):
            simulator = deployment.simulator
            for name, telescope in deployment.telescopes.items():
                windows = self.plan.blackouts_for(name)
                if not windows:
                    continue
                telescope.capture.blackout_windows = windows
                for start, end in windows:
                    simulator.schedule_at(
                        start, partial(self._blackout_marker, name,
                                       start, end),
                        label=f"fault:blackout:{name}")
            for flap in self.plan.flaps:
                deployment.add_t1_outage(flap.start, flap.end)
                if not control_plane:
                    continue
                simulator.schedule_at(
                    flap.start, partial(self._flap_down, deployment, flap),
                    label="fault:flap-down")
                simulator.schedule_at(
                    flap.end, partial(self._flap_up, deployment, flap),
                    label="fault:flap-up")
            if self.plan.loss_rate > 0.0:
                deployment.loss_rate = self.plan.loss_rate
                deployment.loss_seed = \
                    deployment.streams.seed_for("faults.loss")

    def arm_process_faults(self, simulator, *, shard: int, duration: float,
                           attempt: int = 1,
                           coordinator_pid: int | None = None) -> int:
        """Schedule this shard's process faults on its worker simulator.

        Called by the shard worker body, not by :meth:`install`: process
        faults target the worker's own process, and must re-arm (or not)
        per attempt. Faults for other shards, attempts past the fault's
        ``max_attempt``, or a worker that is actually the coordinator
        (serial fallback runs the shard body in-process, where a
        self-SIGKILL would take down the whole run) are skipped.
        Returns the number of faults armed. Arming draws no RNG and
        the trigger fires strictly at its scheduled sim time, so a
        surviving attempt's output is byte-identical to an unfaulted
        run.
        """
        if coordinator_pid is not None and os.getpid() == coordinator_pid:
            return 0
        armed = 0
        for fault in self.plan.process_faults:
            if fault.shard != shard or attempt > fault.max_attempt:
                continue
            when = fault.at_fraction * duration
            simulator.schedule_at(
                when, partial(self._trigger_process_fault, fault, shard,
                              attempt),
                label=f"fault:{fault.kind}")
            armed += 1
        return armed

    def _trigger_process_fault(self, fault: ProcessFault, shard: int,
                               attempt: int) -> None:
        obs.event("fault.process", kind=fault.kind, shard=shard,
                  attempt=attempt)
        log.warning("fault: %s firing in shard %d (attempt %d, pid %d)",
                    fault.kind, shard, attempt, os.getpid())
        if fault.kind == "kill_shard":
            # Die the way a real OOM kill does: no cleanup, no flush.
            os.kill(os.getpid(), signal.SIGKILL)
        # hang_shard: stop consuming the event queue forever. The
        # supervisor's wall-clock timeout is the only way out.
        while True:  # pragma: no cover - killed externally
            time.sleep(60.0)

    # -- scheduled fault callbacks ----------------------------------------

    def _blackout_marker(self, telescope: str, start: float,
                         end: float) -> None:
        """Sim-time marker at a blackout's start (obs accounting only).

        The drop itself is time-based in the capture, which keeps the
        scalar and deferred-batch append paths consistent — a session
        materialized after the run still loses exactly the packets whose
        arrival times fall inside the window.
        """
        self.blackouts_started += 1
        obs.add("faults.blackouts_total", telescope=telescope)
        obs.event("fault.blackout", telescope=telescope,
                  start=start, end=end)
        log.info("fault: %s blackout [%.0f, %.0f) begins",
                 telescope, start, end)

    def _flap_down(self, deployment, flap: BgpFlap) -> None:
        """Withdraw the active T1 announcements (session reset)."""
        with obs.span("fault.bgp_flap", phase="down"):
            self.flaps_fired += 1
            obs.add("faults.bgp_flaps_total")
            controller = deployment.controller
            cycle = controller.cycle_at(flap.start)
            if cycle is None:
                return  # flap started inside a scheduled withdrawal gap
            for prefix in cycle.prefixes:
                controller.speaker.withdraw_origin(prefix)
            obs.add("bgp.withdrawals_total", len(cycle.prefixes))
            obs.event("fault.flap", phase="down", start=flap.start,
                      end=flap.end, prefixes=len(cycle.prefixes))
            log.info("fault: BGP flap withdrew %d prefixes at t=%.0f",
                     len(cycle.prefixes), flap.start)

    def _flap_up(self, deployment, flap: BgpFlap) -> None:
        """Re-announce whatever cycle is scheduled to be active now."""
        with obs.span("fault.bgp_flap", phase="up"):
            controller = deployment.controller
            cycle = controller.cycle_at(flap.end)
            if cycle is None:
                return
            for prefix in cycle.prefixes:
                controller.speaker.originate(prefix)
            obs.add("bgp.announcements_total", len(cycle.prefixes))
            obs.event("fault.flap", phase="up", start=flap.start,
                      end=flap.end, prefixes=len(cycle.prefixes))

    # -- store corruption ---------------------------------------------------

    def corrupt_store(self, directory: str | Path) -> list[Path]:
        """Corrupt the planned telescopes of a saved corpus (bit flips).

        On a v1 store, flips one byte in the middle third of the
        telescope's ``packets_<T>.npz`` — enough to fail the content
        checksum without touching the zip directory, which is how silent
        on-disk corruption usually presents. On a v2 chunked store, the
        same flip is applied to every ``.time.npy`` chunk file of the
        telescope, so a lenient load quarantines all of its chunks (the
        whole-telescope outcome the v1 fault produced, now exercised at
        chunk granularity). Offsets are seed-determined. Returns the
        corrupted paths.
        """
        directory = Path(directory)
        rng = np.random.default_rng(self.seed ^ 0xFA17)
        corrupted: list[Path] = []

        def flip(path: Path) -> None:
            blob = bytearray(path.read_bytes())
            if not blob:
                raise FaultError(f"segment {path} is empty")
            lo, hi = len(blob) // 3, max(len(blob) // 3 + 1,
                                         2 * len(blob) // 3)
            offset = int(rng.integers(lo, hi))
            blob[offset] ^= 0xFF
            path.write_bytes(bytes(blob))
            obs.add("faults.segments_corrupted_total")
            obs.event("fault.corrupt", path=str(path), offset=offset)
            corrupted.append(path)

        for name in self.plan.corrupt_segments:
            npz = directory / f"packets_{name}.npz"
            chunk_files = sorted((directory / name).glob("chunk_*.time.npy"))
            if npz.exists():
                flip(npz)
            elif chunk_files:
                for path in chunk_files:
                    flip(path)
            else:
                raise FaultError(f"no segment to corrupt at {npz} "
                                 f"(and no v2 chunks under "
                                 f"{directory / name})")
        return corrupted
