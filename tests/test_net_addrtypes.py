"""Tests for repro.net.addrtypes (RFC 7707 classification)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import parse_addr
from repro.net.addrtypes import AddressType, classify_address

BASE = parse_addr("2001:db8::")


def addr(iid: int) -> int:
    return BASE | iid


class TestSubnetAnycast:
    def test_zero_iid(self):
        assert classify_address(addr(0)) is AddressType.SUBNET_ANYCAST

    def test_nonzero_subnet_zero_iid(self):
        value = parse_addr("2001:db8:0:42::")
        assert classify_address(value) is AddressType.SUBNET_ANYCAST


class TestLowByte:
    @pytest.mark.parametrize("iid", [1, 2, 0x10, 0xFF, 0x100, 0xFFFF])
    def test_small_values(self, iid):
        if iid in (0x443,):
            return
        assert classify_address(addr(iid)) is AddressType.LOW_BYTE

    def test_very_low_service_numbers_stay_low_byte(self):
        # ::53 and ::80 read as host numbers, not ports
        assert classify_address(addr(0x53)) is AddressType.LOW_BYTE
        assert classify_address(addr(0x80)) is AddressType.LOW_BYTE


class TestEmbeddedPort:
    @pytest.mark.parametrize("iid", [0x443, 0x8080, 0x3306, 0x123])
    def test_hex_spelled_ports(self, iid):
        assert classify_address(addr(iid)) is AddressType.EMBEDDED_PORT

    def test_binary_port(self):
        assert classify_address(addr(443)) is AddressType.EMBEDDED_PORT


class TestEmbeddedIPv4:
    def test_decimal_spelled(self):
        value = parse_addr("2001:db8::192:0:2:1")
        assert classify_address(value) is AddressType.EMBEDDED_IPV4

    def test_binary_embed(self):
        value = addr(0xC0000201)  # 192.0.2.1
        assert classify_address(value) is AddressType.EMBEDDED_IPV4

    def test_octet_too_large_not_ipv4(self):
        value = parse_addr("2001:db8::999:0:2:1")
        assert classify_address(value) is not AddressType.EMBEDDED_IPV4


class TestIeeeDerived:
    def test_eui64(self):
        value = parse_addr("2001:db8::0211:22ff:fe33:4455")
        assert classify_address(value) is AddressType.IEEE_DERIVED


class TestIsatap:
    def test_isatap_iid(self):
        value = parse_addr("2001:db8::5efe:c000:201")
        assert classify_address(value) is AddressType.ISATAP

    def test_isatap_private_flag(self):
        value = addr((0x02005EFE << 32) | 0xC0000201)
        assert classify_address(value) is AddressType.ISATAP


class TestPatternBytes:
    def test_wordy(self):
        assert classify_address(addr(0xCAFE)) is AddressType.PATTERN_BYTES

    def test_repeated_word(self):
        value = parse_addr("2001:db8::cafe:cafe:cafe:cafe")
        assert classify_address(value) is AddressType.PATTERN_BYTES

    def test_few_distinct_nibbles(self):
        value = parse_addr("2001:db8::aaaa:abab:aaab:baaa")
        assert classify_address(value) is AddressType.PATTERN_BYTES


class TestRandomized:
    def test_high_entropy_iid(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            iid = int(rng.integers(1 << 60, (1 << 63)))
            got = classify_address(addr(iid))
            assert got is AddressType.RANDOMIZED, hex(iid)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_total_function(self, iid):
        # every IID classifies into exactly one category without error
        assert classify_address(addr(iid)) in AddressType

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            classify_address(-1)


class TestVectorizedClassifier:
    """classify_iids must agree with the scalar classifier bit-for-bit."""

    def test_code_order_covers_all_types(self):
        from repro.net.addrtypes import TYPE_ORDER
        assert set(TYPE_ORDER) == set(AddressType)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=50))
    def test_matches_scalar(self, iids):
        from repro.net.addrtypes import TYPE_ORDER, classify_iids
        codes = classify_iids(np.array(iids, dtype=np.uint64))
        for iid, code in zip(iids, codes.tolist()):
            assert TYPE_ORDER[code] is classify_address(addr(iid)), hex(iid)

    def test_structured_specimens(self):
        from repro.net.addrtypes import TYPE_ORDER, classify_iids
        specimens = [0, 1, 0x443, 53, 0xCAFE, 0xFFFE << 24,
                     0x02005EFE00000000, 0x0192000000020001,
                     0xC0000201, 0x1111111111111111]
        codes = classify_iids(np.array(specimens, dtype=np.uint64))
        for iid, code in zip(specimens, codes.tolist()):
            assert TYPE_ORDER[code] is classify_address(iid)
