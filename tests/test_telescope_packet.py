"""Tests for repro.telescope.packet and capture."""

import pytest

from repro.net.prefix import Prefix
from repro.telescope.capture import CaptureFilter, PacketCapture
from repro.telescope.packet import (ICMPV6, TCP, UDP, Packet, Protocol,
                                    is_traceroute_port)


def packet(time=0.0, src=1, dst=2, protocol=ICMPV6, port=0,
           payload=None) -> Packet:
    return Packet(time=time, src=src, dst=dst, protocol=protocol,
                  dst_port=port, payload=payload)


class TestPacket:
    def test_protocol_numbers(self):
        assert Protocol.TCP == 6
        assert Protocol.UDP == 17
        assert Protocol.ICMPV6 == 58

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            packet(time=-1.0)

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            packet(port=70000)

    def test_has_payload(self):
        assert packet(payload=b"x").has_payload
        assert not packet().has_payload
        assert not packet(payload=b"").has_payload

    def test_traceroute_range(self):
        assert is_traceroute_port(33434)
        assert is_traceroute_port(33523)
        assert not is_traceroute_port(33433)
        assert not is_traceroute_port(33524)


class TestCaptureFilter:
    def test_excludes_destination_prefix(self):
        productive = Prefix.parse("2001:db8:0:1200::/56")
        flt = CaptureFilter(exclude_dst_prefixes=(productive,))
        inside = packet(dst=productive.network | 1)
        outside = packet(dst=Prefix.parse("2001:db8::/64").network | 1)
        assert not flt.accepts(inside)
        assert flt.accepts(outside)

    def test_excludes_source_prefix(self):
        productive = Prefix.parse("2001:db8:0:1200::/56")
        flt = CaptureFilter(exclude_src_prefixes=(productive,))
        assert not flt.accepts(packet(src=productive.network | 5))


class TestPacketCapture:
    def test_record_and_len(self):
        capture = PacketCapture(name="x")
        assert capture.record(packet())
        assert len(capture) == 1

    def test_filter_drops_and_counts(self):
        productive = Prefix.parse("2001:db8::/56")
        capture = PacketCapture(
            name="x",
            capture_filter=CaptureFilter(
                exclude_dst_prefixes=(productive,)))
        assert not capture.record(packet(dst=productive.network | 1))
        assert capture.dropped == 1
        assert len(capture) == 0

    def test_packets_sorted_by_time(self):
        capture = PacketCapture()
        capture.record(packet(time=5.0))
        capture.record(packet(time=1.0))
        times = [p.time for p in capture.packets()]
        assert times == [1.0, 5.0]

    def test_between(self):
        capture = PacketCapture()
        for t in (0.0, 1.0, 2.0, 3.0):
            capture.record(packet(time=t))
        window = capture.between(1.0, 3.0)
        assert [p.time for p in window] == [1.0, 2.0]

    def test_extend(self):
        capture = PacketCapture()
        stored = capture.extend(packet(time=float(i)) for i in range(5))
        assert stored == 5

    def test_source_and_destination_sets(self):
        capture = PacketCapture()
        capture.record(packet(src=1, dst=10))
        capture.record(packet(src=2, dst=10))
        assert capture.sources() == {1, 2}
        assert capture.destinations() == {10}

    def test_filtered(self):
        capture = PacketCapture()
        capture.record(packet(protocol=TCP, port=80))
        capture.record(packet(protocol=UDP, port=53))
        tcp = capture.filtered(lambda p: p.protocol is TCP)
        assert len(tcp) == 1
