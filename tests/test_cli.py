"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.cycles == 16

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--seed", "7", "--scale", "0.05"])
        assert args.seed == 7
        assert args.scale == 0.05

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace is None
        assert args.metrics is None
        assert args.log_level == "info"
        assert args.verbose is False

    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            ["tables", "--trace", "t.json", "--metrics", "m.json",
             "--log-level", "debug", "-v"])
        assert args.trace == "t.json"
        assert args.metrics == "m.json"
        assert args.log_level == "debug"
        assert args.verbose is True

    def test_load_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["load", "somewhere", "--log-level", "warning"])
        assert args.log_level == "warning"


class TestCommands:
    def test_schedule_output(self, capsys):
        assert main(["schedule", "--cycles", "3"]) == 0
        out = capsys.readouterr().out
        assert "cycle  0" in out
        cycle_lines = [line for line in out.splitlines()
                       if line.startswith("  cycle")]
        assert len(cycle_lines) == 4

    def test_schedule_custom_prefix(self, capsys):
        assert main(["schedule", "--prefix", "2001:db8::/32",
                     "--cycles", "1"]) == 0
        assert "2001:db8::/33" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(["run", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for telescope in ("T1", "T2", "T3", "T4"):
            assert telescope in out
        assert "stages" in out
        assert "simulate" in out

    def test_run_with_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert main(["run", "--scale", "0.02", "--seed", "3",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path), "-v"]) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "driver.run_experiment" in names
        assert "sim.run_until" in names
        assert "analysis.summary" in names
        # nested: every driver stage span sits inside the campaign span
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        root = by_name["driver.run_experiment"]
        stage = by_name["driver.simulate"]
        assert root["ts"] <= stage["ts"]
        assert stage["ts"] + stage["dur"] \
            <= root["ts"] + root["dur"] + 1e-3
        metrics = json.loads(metrics_path.read_text())
        for telescope in ("T1", "T2", "T3", "T4"):
            key = f"telescope.packets_total{{telescope={telescope}}}"
            assert metrics["counters"][key] > 0
        assert metrics["counters"]["sim.events_executed_total"] > 0

    def test_run_without_flags_leaves_recorder_uninstalled(self, capsys):
        from repro import obs

        assert main(["run", "--scale", "0.02", "--seed", "3"]) == 0
        capsys.readouterr()
        assert obs.current() is None

    def test_figures_single(self, capsys):
        assert main(["figures", "--scale", "0.02", "--seed", "3",
                     "--only", "fig9"]) == 0
        assert "Fig 9" in capsys.readouterr().out

    def test_guidance(self, capsys):
        assert main(["guidance", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Operational guidance" in out
        assert "bias report" in out

    def test_validate(self, capsys):
        assert main(["validate", "--scale", "0.03", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "temporal classifier" in out
        assert "accuracy" in out

    def test_save_and_load(self, capsys, tmp_path):
        out_dir = str(tmp_path / "corpus")
        assert main(["save", "--scale", "0.02", "--seed", "3",
                     "--out", out_dir]) == 0
        assert "corpus written" in capsys.readouterr().out
        assert main(["load", out_dir]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestErrorHandling:
    def test_invalid_prefix_clean_error(self, capsys):
        assert main(["schedule", "--prefix", "not-a-prefix"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "Traceback" not in err

    def test_missing_corpus_clean_error(self, capsys):
        assert main(["load", "/tmp/no-such-corpus-dir"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_invalid_scale_clean_error(self, capsys):
        assert main(["run", "--scale", "-1"]) == 2
        assert "scale must be > 0" in capsys.readouterr().err
