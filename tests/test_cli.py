"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.cycles == 16

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--seed", "7", "--scale", "0.05"])
        assert args.seed == 7
        assert args.scale == 0.05


class TestCommands:
    def test_schedule_output(self, capsys):
        assert main(["schedule", "--cycles", "3"]) == 0
        out = capsys.readouterr().out
        assert "cycle  0" in out
        cycle_lines = [line for line in out.splitlines()
                       if line.startswith("  cycle")]
        assert len(cycle_lines) == 4

    def test_schedule_custom_prefix(self, capsys):
        assert main(["schedule", "--prefix", "2001:db8::/32",
                     "--cycles", "1"]) == 0
        assert "2001:db8::/33" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(["run", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for telescope in ("T1", "T2", "T3", "T4"):
            assert telescope in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--scale", "0.02", "--seed", "3",
                     "--only", "fig9"]) == 0
        assert "Fig 9" in capsys.readouterr().out

    def test_guidance(self, capsys):
        assert main(["guidance", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Operational guidance" in out
        assert "bias report" in out

    def test_validate(self, capsys):
        assert main(["validate", "--scale", "0.03", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "temporal classifier" in out
        assert "accuracy" in out

    def test_save_and_load(self, capsys, tmp_path):
        out_dir = str(tmp_path / "corpus")
        assert main(["save", "--scale", "0.02", "--seed", "3",
                     "--out", out_dir]) == 0
        assert "corpus written" in capsys.readouterr().out
        assert main(["load", out_dir]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestErrorHandling:
    def test_invalid_prefix_clean_error(self, capsys):
        assert main(["schedule", "--prefix", "not-a-prefix"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "Traceback" not in err

    def test_missing_corpus_clean_error(self, capsys):
        assert main(["load", "/tmp/no-such-corpus-dir"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_invalid_scale_clean_error(self, capsys):
        assert main(["run", "--scale", "-1"]) == 2
        assert "scale must be > 0" in capsys.readouterr().err
