"""Tests for repro.core.reactivity."""

import pytest

from repro.bgp.controller import build_split_schedule
from repro.core.reactivity import (CycleActivity, cycle_activity,
                                   growth_factor, live_monitors,
                                   most_specific_for,
                                   new_source_prefixes_per_day,
                                   packets_per_prefix,
                                   sessions_per_prefix_cumulative,
                                   split_half_comparison)
from repro.core.sessions import sessionize
from repro.errors import AnalysisError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY, WEEK
from repro.telescope.packet import ICMPV6, Packet

T1 = Prefix.parse("3fff:1000::/32")
SCHEDULE = build_split_schedule(T1, baseline_weeks=2, num_cycles=3)


def packet(time, dst, src=1):
    return Packet(time=float(time), src=src, dst=dst, protocol=ICMPV6)


class TestMostSpecific:
    def test_picks_longest(self):
        cycle = SCHEDULE[2]
        deepest = max(cycle.prefixes, key=lambda p: p.length)
        assert most_specific_for(deepest.low_byte_address, cycle) == deepest

    def test_outside_none(self):
        assert most_specific_for(1, SCHEDULE[1]) is None


class TestPacketsPerPrefix:
    def test_attribution(self):
        cycle = SCHEDULE[1]
        low, high = cycle.prefixes
        packets = [packet(cycle.announce_time + 1, low.low_byte_address),
                   packet(cycle.announce_time + 2, high.low_byte_address),
                   packet(cycle.announce_time + 3, high.low_byte_address)]
        counts = packets_per_prefix(packets, [cycle])
        assert counts[low] == 1
        assert counts[high] == 2


class TestSessionsPerPrefixCumulative:
    def test_series_monotone(self):
        packets = []
        for cycle in SCHEDULE[1:]:
            for p in cycle.prefixes:
                packets.append(packet(cycle.announce_time + 60,
                                      p.low_byte_address))
        sessions = sessionize(packets).sessions
        series = sessions_per_prefix_cumulative(sessions, list(SCHEDULE))
        for values in series.values():
            assert values == sorted(values)
            assert len(values) == len(SCHEDULE)


class TestSplitHalfComparison:
    def test_increase(self):
        stable, split = T1.split()
        start = SCHEDULE[1].announce_time
        packets = (
            [packet(start + i, stable.low_byte_address) for i in range(10)]
            + [packet(start + 100 + i, split.network | (1 << 90) | 1)
               for i in range(30)])
        comparison = split_half_comparison(packets, T1, list(SCHEDULE))
        assert comparison.stable_packets == 10
        assert comparison.split_packets == 30
        assert comparison.increase == pytest.approx(2.0)

    def test_no_stable_packets_rejected(self):
        comparison = split_half_comparison([], T1, list(SCHEDULE))
        with pytest.raises(AnalysisError):
            comparison.increase

    def test_baseline_packets_excluded(self):
        stable, split = T1.split()
        packets = [packet(0.0, stable.low_byte_address)]
        comparison = split_half_comparison(packets, T1, list(SCHEDULE))
        assert comparison.stable_packets == 0


class TestCycleActivity:
    def test_counts(self):
        cycle = SCHEDULE[1]
        packets = [packet(cycle.announce_time + 1,
                          cycle.prefixes[0].low_byte_address, src=s)
                   for s in (1, 2)]
        sessions = sessionize(packets).sessions
        activity = cycle_activity(sessions, list(SCHEDULE))
        by_index = {a.cycle_index: a for a in activity}
        assert by_index[1].sources == 2
        assert by_index[1].sessions == 2
        assert by_index[2].sessions == 0

    def test_growth_factor(self):
        activity = [CycleActivity(0, 100, 100),
                    CycleActivity(1, 10, 10),
                    CycleActivity(2, 20, 20),
                    CycleActivity(3, 30, 30),
                    CycleActivity(4, 40, 40)]
        factor = growth_factor(activity, "sources")
        assert factor == pytest.approx(3.0)

    def test_growth_needs_cycles(self):
        with pytest.raises(AnalysisError):
            growth_factor([CycleActivity(0, 1, 1)])


class TestLiveMonitors:
    def test_fast_repeat_source_detected(self):
        packets = []
        for cycle in SCHEDULE[1:]:
            packets.append(packet(cycle.announce_time + 600,
                                  cycle.prefixes[0].low_byte_address,
                                  src=111))
        monitors = live_monitors(packets, list(SCHEDULE))
        assert monitors == {111}

    def test_slow_source_excluded(self):
        packets = []
        for cycle in SCHEDULE[1:]:
            packets.append(packet(cycle.announce_time + 2 * DAY,
                                  cycle.prefixes[0].low_byte_address,
                                  src=222))
        assert live_monitors(packets, list(SCHEDULE)) == set()

    def test_single_appearance_excluded(self):
        cycle = SCHEDULE[1]
        packets = [packet(cycle.announce_time + 60,
                          cycle.prefixes[0].low_byte_address, src=333)]
        assert live_monitors(packets, list(SCHEDULE)) == set()


class TestNewSourcePrefixes:
    def test_first_seen_only(self):
        src_a = 0xAAAA << 80
        src_b = 0xBBBB << 80
        packets = [packet(0.0, 2, src=src_a),
                   packet(1 * DAY, 2, src=src_a | 5),  # same /48
                   packet(2 * DAY, 2, src=src_b)]
        series = new_source_prefixes_per_day(packets, 0.0, 4 * DAY)
        assert series[0] == 1
        assert series[1] == 0
        assert series[2] == 1

    def test_window_validation(self):
        with pytest.raises(AnalysisError):
            new_source_prefixes_per_day([], 5.0, 5.0)
