"""Tests for repro.bgp.speaker (propagation, policy, withdrawal)."""

import numpy as np
import pytest

from repro.bgp.policy import IrrDatabase, Route6Object
from repro.bgp.speaker import BGPNetwork
from repro.bgp.topology import ASRelationship, ASTopology
from repro.errors import RoutingError
from repro.net.prefix import Prefix
from repro.sim.events import Simulator

P = Prefix.parse("2001:db8::/32")


def line_topology() -> ASTopology:
    """stub(1) <- provider(2) <- tier1(3) -> provider(4) -> stub(5)."""
    t = ASTopology()
    for asn, tier in ((1, 3), (2, 2), (3, 1), (4, 2), (5, 3)):
        t.add_as(asn, tier=tier)
    t.add_link(2, 1, ASRelationship.CUSTOMER)
    t.add_link(3, 2, ASRelationship.CUSTOMER)
    t.add_link(3, 4, ASRelationship.CUSTOMER)
    t.add_link(4, 5, ASRelationship.CUSTOMER)
    return t


@pytest.fixture
def network():
    sim = Simulator()
    return BGPNetwork(line_topology(), sim, np.random.default_rng(0),
                      min_link_delay=1.0, max_link_delay=2.0)


class TestPropagation:
    def test_announcement_reaches_everyone(self, network):
        network.speaker(1).originate(P)
        network.simulator.run_until(60.0)
        for asn in (2, 3, 4, 5):
            assert network.speaker(asn).has_route(P.low_byte_address), asn
        assert network.visibility(P) == 1.0

    def test_as_path_grows_along_the_way(self, network):
        network.speaker(1).originate(P)
        network.simulator.run_until(60.0)
        route = network.speaker(5).loc_rib.best(P)
        assert route.as_path == (4, 3, 2, 1)

    def test_withdrawal_clears_all_ribs(self, network):
        network.speaker(1).originate(P)
        network.simulator.run_until(60.0)
        network.speaker(1).withdraw_origin(P)
        network.simulator.run_until(120.0)
        for asn in (2, 3, 4, 5):
            assert not network.speaker(asn).has_route(P.low_byte_address)
        assert network.visibility(P) == 0.0

    def test_reannouncement_after_withdrawal(self, network):
        speaker = network.speaker(1)
        speaker.originate(P)
        network.simulator.run_until(60.0)
        speaker.withdraw_origin(P)
        network.simulator.run_until(120.0)
        speaker.originate(P)
        network.simulator.run_until(180.0)
        assert network.visibility(P) == 1.0

    def test_originate_idempotent(self, network):
        speaker = network.speaker(1)
        speaker.originate(P)
        speaker.originate(P)
        assert speaker.originated == {P}

    def test_withdraw_unknown_is_noop(self, network):
        network.speaker(1).withdraw_origin(P)
        assert network.speaker(1).originated == set()


class TestGaoRexford:
    def test_peer_routes_not_transited_to_peers(self):
        """A route learned from a peer must only go to customers."""
        t = ASTopology()
        for asn, tier in ((1, 1), (2, 1), (3, 1)):
            t.add_as(asn, tier=tier)
        t.add_as(10, tier=3)
        # 1 -peer- 2 -peer- 3 ; 10 is customer of 1
        t.add_link(1, 2, ASRelationship.PEER)
        t.add_link(2, 3, ASRelationship.PEER)
        t.add_link(1, 10, ASRelationship.CUSTOMER)
        sim = Simulator()
        network = BGPNetwork(t, sim, np.random.default_rng(0),
                             min_link_delay=1.0, max_link_delay=1.5)
        network.speaker(1).originate(P)
        sim.run_until(60.0)
        # 2 learns from peer 1; must not re-export to its peer 3
        assert network.speaker(2).loc_rib.best(P) is not None
        assert network.speaker(3).loc_rib.best(P) is None

    def test_customer_route_preferred_over_provider(self):
        t = ASTopology()
        t.add_as(1, tier=1)   # provider of 2
        t.add_as(2, tier=2)   # middle
        t.add_as(3, tier=3)   # customer of 2, origin
        t.add_link(1, 2, ASRelationship.CUSTOMER)
        t.add_link(2, 3, ASRelationship.CUSTOMER)
        t.add_link(1, 3, ASRelationship.CUSTOMER)  # 3 multihomes to 1
        sim = Simulator()
        network = BGPNetwork(t, sim, np.random.default_rng(0),
                             min_link_delay=1.0, max_link_delay=1.5)
        network.speaker(3).originate(P)
        sim.run_until(120.0)
        # 2 hears from its customer 3 directly and from provider 1;
        # the customer route must win
        best = network.speaker(2).loc_rib.best(P)
        assert best.neighbor == 3


class TestIrrValidation:
    def test_invalid_peer_route_filtered(self):
        t = ASTopology()
        t.add_as(1, tier=1)
        t.add_as(2, tier=1)
        t.add_link(1, 2, ASRelationship.PEER)
        irr = IrrDatabase()
        # an object exists for the prefix but authorizes a different origin
        irr.register(Route6Object(prefix=P, origin=999))
        sim = Simulator()
        network = BGPNetwork(t, sim, np.random.default_rng(0), irr=irr)
        network.speaker(2).validate_irr = True
        network.speaker(1).originate(P)
        sim.run_until(60.0)
        assert network.speaker(2).loc_rib.best(P) is None

    def test_not_found_routes_pass(self):
        """Prefixes without any route object are NOT filtered (§3.2)."""
        t = ASTopology()
        t.add_as(1, tier=1)
        t.add_as(2, tier=1)
        t.add_link(1, 2, ASRelationship.PEER)
        irr = IrrDatabase()
        sim = Simulator()
        network = BGPNetwork(t, sim, np.random.default_rng(0), irr=irr)
        network.speaker(2).validate_irr = True
        network.speaker(1).originate(P)
        sim.run_until(60.0)
        assert network.speaker(2).loc_rib.best(P) is not None


class TestErrors:
    def test_unknown_speaker(self, network):
        with pytest.raises(RoutingError):
            network.speaker(999)

    def test_bad_delay_range(self):
        with pytest.raises(RoutingError):
            BGPNetwork(line_topology(), Simulator(),
                       np.random.default_rng(0), min_link_delay=5.0,
                       max_link_delay=1.0)

    def test_deliver_without_link(self, network):
        from repro.bgp.messages import Withdrawal
        with pytest.raises(RoutingError):
            network.deliver(1, 5, Withdrawal(prefix=P))
