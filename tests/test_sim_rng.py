"""Tests for repro.sim.rng."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(1).get("x").random(10)
        b = RngStreams(1).get("x").random(10)
        assert list(a) == list(b)

    def test_different_names_independent(self):
        streams = RngStreams(1)
        a = streams.get("a").random(10)
        b = streams.get("b").random(10)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(10)
        b = RngStreams(2).get("x").random(10)
        assert list(a) != list(b)

    def test_get_is_cached(self):
        streams = RngStreams(7)
        assert streams.get("s") is streams.get("s")

    def test_fresh_is_not_cached(self):
        streams = RngStreams(7)
        assert streams.fresh("s") is not streams.fresh("s")

    def test_fresh_replays_from_start(self):
        streams = RngStreams(7)
        first = streams.fresh("s").random(5)
        second = streams.fresh("s").random(5)
        assert list(first) == list(second)

    def test_seed_for_is_stable(self):
        assert RngStreams(3).seed_for("n") == RngStreams(3).seed_for("n")

    def test_adding_streams_does_not_perturb_existing(self):
        lone = RngStreams(5)
        value_alone = lone.get("target").random()
        crowded = RngStreams(5)
        crowded.get("other1").random()
        crowded.get("other2").random()
        assert crowded.get("target").random() == value_alone
