"""Tests for repro.telescope.telescope, reactive, productive."""

import numpy as np
import pytest

from repro.dns.umbrella import UmbrellaList
from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.telescope.capture import PacketCapture
from repro.telescope.packet import ICMPV6, TCP, UDP, Packet
from repro.telescope.productive import ProductiveSubnet
from repro.telescope.reactive import ReactiveResponder
from repro.telescope.telescope import Telescope, TelescopeKind

P48 = Prefix.parse("3fff:4000:4::/48")


def packet(dst, protocol=ICMPV6, port=0) -> Packet:
    return Packet(time=0.0, src=1, dst=dst, protocol=protocol,
                  dst_port=port)


class TestTelescope:
    def test_requires_prefix(self):
        with pytest.raises(ExperimentError):
            Telescope(name="x", kind=TelescopeKind.PASSIVE, prefixes=[],
                      capture=PacketCapture())

    def test_active_requires_responder(self):
        with pytest.raises(ExperimentError):
            Telescope(name="x", kind=TelescopeKind.ACTIVE, prefixes=[P48],
                      capture=PacketCapture())

    def test_deliver_records(self):
        telescope = Telescope(name="x", kind=TelescopeKind.PASSIVE,
                              prefixes=[P48], capture=PacketCapture())
        responded = telescope.deliver(packet(P48.network | 1))
        assert not responded
        assert telescope.packet_count == 1

    def test_misrouted_rejected(self):
        telescope = Telescope(name="x", kind=TelescopeKind.PASSIVE,
                              prefixes=[P48], capture=PacketCapture())
        with pytest.raises(ExperimentError):
            telescope.deliver(packet(1))

    def test_covering_prefix(self):
        narrower = Prefix.parse("3fff:4000:4:1::/64")
        telescope = Telescope(name="x", kind=TelescopeKind.PASSIVE,
                              prefixes=[P48, narrower],
                              capture=PacketCapture())
        assert telescope.covering_prefix(narrower.network | 1) == narrower
        assert telescope.covering_prefix(1) is None


class TestReactiveResponder:
    def test_tcp_answered(self):
        responder = ReactiveResponder()
        telescope = Telescope(name="T4", kind=TelescopeKind.ACTIVE,
                              prefixes=[P48], capture=PacketCapture(),
                              responder=responder)
        assert telescope.deliver(packet(P48.network | 1, TCP, 80))
        assert responder.responses_sent == 1
        assert responder.open_ports(P48.network | 1) == {80}

    def test_icmpv6_answered_udp_not(self):
        responder = ReactiveResponder()
        assert responder.responds(packet(P48.network | 1, ICMPV6))
        assert not responder.responds(packet(P48.network | 1, UDP, 53))

    def test_never_appears_aliased(self):
        assert not ReactiveResponder().appears_aliased


class TestProductiveSubnet:
    def test_build(self):
        umbrella = UmbrellaList()
        prod = ProductiveSubnet.build(Prefix.parse("3fff:2000::/48"),
                                      np.random.default_rng(0),
                                      umbrella=umbrella)
        assert prod.subnet.length == 56
        assert prod.telescope_prefix.covers(prod.subnet)
        # the attractor lives inside the /48 but outside the productive /56
        assert prod.telescope_prefix.contains_address(prod.attractor_addr)
        assert not prod.contains(prod.attractor_addr)
        assert prod.attractor_name in umbrella
        assert len(prod.host_addrs) == 24
        assert all(prod.contains(h) for h in prod.host_addrs)

    def test_zone_has_attractor(self):
        prod = ProductiveSubnet.build(Prefix.parse("3fff:2000::/48"),
                                      np.random.default_rng(0))
        addrs = prod.zone.aaaa_addresses()
        assert prod.attractor_addr in addrs

    def test_too_specific_prefix_rejected(self):
        with pytest.raises(ExperimentError):
            ProductiveSubnet.build(Prefix.parse("3fff:2000::/64"),
                                   np.random.default_rng(0))
