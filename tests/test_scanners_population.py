"""Tests for repro.scanners.population, atlas, heavyhitter."""

import pytest

from repro.bgp.controller import build_split_schedule
from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.scanners.base import TemporalKind
from repro.scanners.population import (PopulationConfig, PopulationInputs,
                                       build_population, const_packets,
                                       uniform_packets)
from repro.scanners.registry import ASRegistry
from repro.sim.clock import WEEK
from repro.sim.rng import RngStreams

T1 = Prefix.parse("3fff:1000::/32")


@pytest.fixture(scope="module")
def inputs():
    schedule = build_split_schedule(T1, baseline_weeks=4, num_cycles=4)
    return PopulationInputs(
        schedule=schedule,
        announced=lambda: schedule[0].prefixes,
        t1_prefix=T1,
        t2_prefix=Prefix.parse("3fff:2000::/48"),
        t3_prefix=Prefix.parse("3fff:4000:3::/48"),
        t4_prefix=Prefix.parse("3fff:4000:4::/48"),
        attractor_addr=Prefix.parse("3fff:2000::/48").network | 0x80,
        duration=12 * WEEK)


@pytest.fixture(scope="module")
def population(inputs):
    config = PopulationConfig(scale=0.05)
    return build_population(config, inputs, ASRegistry(), RngStreams(3))


class TestHelpers:
    def test_uniform_packets_range(self):
        sampler = uniform_packets(2, 5)
        import numpy as np
        rng = np.random.default_rng(0)
        draws = {sampler(rng) for _ in range(100)}
        assert draws == {2, 3, 4, 5}

    def test_uniform_packets_invalid(self):
        with pytest.raises(ExperimentError):
            uniform_packets(0, 5)
        with pytest.raises(ExperimentError):
            uniform_packets(5, 2)

    def test_const_packets(self):
        assert const_packets(7)(None) == 7


class TestPopulationConfig:
    def test_scaled_minimum(self):
        config = PopulationConfig(scale=0.001)
        assert config.scaled(10) == 1
        assert config.scaled(10, minimum=3) == 3

    def test_invalid_scale_rejected(self, inputs):
        with pytest.raises(ExperimentError):
            build_population(PopulationConfig(scale=0.0), inputs,
                             ASRegistry(), RngStreams(0))


class TestPopulationComposition:
    def test_unique_scanner_ids(self, population):
        ids = [s.scanner_id for s in population]
        assert len(ids) == len(set(ids))

    def test_all_temporal_kinds_present(self, population):
        kinds = {s.temporal.kind for s in population}
        assert TemporalKind.ONE_OFF in kinds
        assert TemporalKind.PERIODIC in kinds
        assert TemporalKind.INTERMITTENT in kinds
        assert TemporalKind.REACTIVE in kinds

    def test_heavy_hitters_included(self, population):
        names = {s.name for s in population}
        assert "hh-t1-bulletproof" in names
        assert "hh-t2-6sense" in names

    def test_shared_address_pair(self, population):
        pair = [s for s in population
                if s.name.startswith("sweeper-yarrp")]
        assert len(pair) == 2
        assert pair[0].source_address() == pair[1].source_address()

    def test_atlas_majority_of_oneoffs(self, population):
        one_offs = [s for s in population
                    if s.temporal.kind is TemporalKind.ONE_OFF]
        atlas = [s for s in one_offs if s.name.startswith("atlas")]
        # at tiny scales the per-component minimums compress the ratio;
        # the full-scale share (~55%) is asserted in the benchmark suite
        assert len(atlas) > len(one_offs) * 0.15

    def test_ground_truth_labels_present(self, population):
        labelled = [s for s in population if s.truth_network_class]
        assert len(labelled) > len(population) * 0.9

    def test_scanners_validate(self, population):
        for scanner in population:
            scanner.validate()

    def test_scale_changes_size(self, inputs):
        small = build_population(PopulationConfig(scale=0.05), inputs,
                                 ASRegistry(), RngStreams(3))
        large = build_population(PopulationConfig(scale=0.2), inputs,
                                 ASRegistry(), RngStreams(3))
        assert len(large) > len(small) * 2
