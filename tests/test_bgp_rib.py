"""Tests for repro.bgp.rib and messages."""

import pytest

from repro.bgp.messages import Announcement, UpdateKind, Withdrawal
from repro.bgp.rib import LOCAL_PREF, AdjRibIn, LocRib, Route
from repro.net.addr import parse_addr
from repro.net.prefix import Prefix

P = Prefix.parse("2001:db8::/32")


def route(pref: int, path: tuple[int, ...], neighbor: int = 1) -> Route:
    return Route(prefix=P, as_path=path, neighbor=neighbor, local_pref=pref)


class TestMessages:
    def test_announcement_origin(self):
        a = Announcement(prefix=P, as_path=(1, 2, 3))
        assert a.origin == 3
        assert a.kind is UpdateKind.ANNOUNCE

    def test_loop_detection(self):
        a = Announcement(prefix=P, as_path=(1, 2, 3))
        assert a.contains_loop(2)
        assert not a.contains_loop(4)

    def test_withdrawal_kind(self):
        assert Withdrawal(prefix=P).kind is UpdateKind.WITHDRAW


class TestRouteSelection:
    def test_local_pref_wins(self):
        customer = route(LOCAL_PREF["customer"], (1, 9, 9, 9))
        provider = route(LOCAL_PREF["provider"], (2, 9))
        assert customer.preference_key() < provider.preference_key()

    def test_shorter_path_wins_at_equal_pref(self):
        short = route(200, (1, 9))
        long = route(200, (2, 8, 9))
        assert short.preference_key() < long.preference_key()

    def test_lowest_neighbor_tie_break(self):
        a = route(200, (1, 9), neighbor=1)
        b = route(200, (2, 9), neighbor=2)
        assert a.preference_key() < b.preference_key()

    def test_origin(self):
        assert route(100, (5, 6, 7)).origin == 7


class TestAdjRibIn:
    def test_put_get_remove(self):
        rib = AdjRibIn()
        r = route(100, (1, 2))
        rib.put(r)
        assert rib.get(P) is r
        assert len(rib) == 1
        assert rib.remove(P) is r
        assert rib.get(P) is None
        assert rib.remove(P) is None


class TestLocRib:
    def test_install_resolve(self):
        rib = LocRib()
        rib.install(route(100, (1,)))
        hit = rib.resolve(parse_addr("2001:db8::1"))
        assert hit is not None and hit.prefix == P

    def test_longest_prefix_resolution(self):
        rib = LocRib()
        inner = Prefix.parse("2001:db8::/48")
        rib.install(Route(prefix=P, as_path=(1,), neighbor=1,
                          local_pref=100))
        rib.install(Route(prefix=inner, as_path=(2,), neighbor=2,
                          local_pref=100))
        hit = rib.resolve(parse_addr("2001:db8::1"))
        assert hit.prefix == inner

    def test_uninstall(self):
        rib = LocRib()
        rib.install(route(100, (1,)))
        assert rib.uninstall(P) is not None
        assert rib.resolve(parse_addr("2001:db8::1")) is None
        assert rib.uninstall(P) is None

    def test_routes_listing(self):
        rib = LocRib()
        rib.install(route(100, (1,)))
        assert [r.prefix for r in rib.routes()] == [P]
        assert rib.prefixes() == [P]
