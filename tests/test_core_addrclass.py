"""Tests for repro.core.addrclass."""

import numpy as np
import pytest

from repro.core.addrclass import (AddressClass, classify_session,
                                  classify_sessions, is_ordered_traversal,
                                  structured_share, type_histogram)
from repro.core.sessions import Session
from repro.errors import ClassificationError
from repro.net.addrgen import random_targets
from repro.net.prefix import Prefix
from repro.telescope.packet import ICMPV6, Packet

P = Prefix.parse("3fff:1000::/32")


def make_session(targets: list[int]) -> Session:
    packets = [Packet(time=float(i), src=1, dst=t, protocol=ICMPV6)
               for i, t in enumerate(targets)]
    return Session(source=1, telescope="T1", packets=packets)


class TestStructuredShare:
    def test_all_low_byte(self):
        targets = [P.subnet(64, i).network | 1 for i in range(10)]
        assert structured_share(targets) == 1.0

    def test_all_random(self):
        rng = np.random.default_rng(0)
        targets = random_targets(P, rng, 100)
        assert structured_share(targets) < 0.1

    def test_empty_rejected(self):
        with pytest.raises(ClassificationError):
            structured_share([])

    def test_type_histogram_counts(self):
        targets = [P.network | 1, P.network | 1, P.network]
        histogram = type_histogram(targets)
        assert sum(histogram.values()) == 3


class TestOrderedTraversal:
    def test_sequential_subnets(self):
        targets = [P.subnet(64, i).network | (1 << 30) for i in range(20)]
        assert is_ordered_traversal(targets)

    def test_shuffled_not_ordered(self):
        rng = np.random.default_rng(0)
        targets = [P.subnet(64, int(i)).network | (1 << 30)
                   for i in rng.permutation(50)]
        assert not is_ordered_traversal(targets)

    def test_too_short(self):
        assert not is_ordered_traversal([1, 2, 3])


class TestClassifySession:
    def test_low_byte_session_structured(self):
        targets = [P.subnet(64, i).network | 1 for i in range(50)]
        assert classify_session(make_session(targets)) \
            is AddressClass.STRUCTURED

    def test_random_session_detected(self):
        rng = np.random.default_rng(1)
        targets = random_targets(P, rng, 200)
        # shuffle defeats the traversal check; NIST must catch randomness
        assert classify_session(make_session(targets)) \
            is AddressClass.RANDOM

    def test_small_random_session_unknown(self):
        """Below 100 packets the NIST filter cannot attest randomness."""
        rng = np.random.default_rng(1)
        shuffled = random_targets(P, rng, 30)
        rng.shuffle(shuffled)  # type: ignore[arg-type]
        verdict = classify_session(make_session(list(shuffled)))
        assert verdict in (AddressClass.UNKNOWN, AddressClass.STRUCTURED)

    def test_histogram(self):
        structured = make_session(
            [P.subnet(64, i).network | 1 for i in range(10)])
        histogram = classify_sessions([structured])
        assert histogram[AddressClass.STRUCTURED] == 1


class TestSingleSubnetSessions:
    def test_random_single_subnet_not_structured(self):
        """Random IIDs inside one fixed /64 must not count as an ordered
        traversal (reviewed bug: equal subnets were 'monotone')."""
        import numpy as np
        rng = np.random.default_rng(3)
        subnet = P.subnet(64, 7)
        targets = [subnet.random_address(rng) for _ in range(150)]
        assert not is_ordered_traversal(targets)
        assert classify_session(make_session(targets)) \
            is AddressClass.RANDOM
