"""Shared fixtures.

Two experiment corpora are built once per test session: ``tiny_result``
(seconds, for smoke-level integration) and ``small_result`` (a few seconds
more, for shape assertions). Pure unit tests never touch these.
"""

from __future__ import annotations

import pytest

from repro.analysis.context import CorpusAnalysis
from repro.experiment import ExperimentConfig, run_experiment


@pytest.fixture(scope="session")
def tiny_result():
    return run_experiment(ExperimentConfig.tiny())


@pytest.fixture(scope="session")
def tiny_corpus(tiny_result):
    return tiny_result.corpus


@pytest.fixture(scope="session")
def tiny_analysis(tiny_corpus):
    return CorpusAnalysis(tiny_corpus)


@pytest.fixture(scope="session")
def small_result():
    return run_experiment(ExperimentConfig.small())


@pytest.fixture(scope="session")
def small_corpus(small_result):
    return small_result.corpus


@pytest.fixture(scope="session")
def small_analysis(small_corpus):
    return CorpusAnalysis(small_corpus)
