"""Tests for repro.core.temporal."""

import numpy as np
import pytest

from repro.core.sessions import Session
from repro.core.temporal import (TemporalClass, classify_all,
                                 classify_temporal, detect_period)
from repro.errors import ClassificationError
from repro.sim.clock import DAY, HOUR, WEEK
from repro.telescope.packet import ICMPV6, Packet


def session(start: float) -> Session:
    return Session(source=1, telescope="T1",
                   packets=[Packet(time=start, src=1, dst=2,
                                   protocol=ICMPV6)])


class TestDetectPeriod:
    def test_too_few_events(self):
        assert not detect_period([0.0, DAY]).detected

    def test_perfectly_regular(self):
        times = [i * DAY for i in range(10)]
        estimate = detect_period(times)
        assert estimate.detected
        assert estimate.period == pytest.approx(DAY, rel=0.2)

    def test_regular_with_jitter(self):
        rng = np.random.default_rng(0)
        times = [i * DAY + rng.uniform(-HOUR, HOUR) for i in range(15)]
        assert detect_period(sorted(times)).detected

    def test_random_gaps_not_periodic(self):
        rng = np.random.default_rng(1)
        times = np.cumsum(rng.exponential(3 * DAY, size=20))
        assert not detect_period(list(times)).detected

    def test_autocorrelation_path(self):
        """Bursty but periodic pattern needs the ACF detector."""
        times = []
        for cycle in range(8):
            base = cycle * WEEK
            times.extend([base, base + HOUR, base + 2 * HOUR])
        estimate = detect_period(times, bin_width=HOUR)
        assert estimate.detected
        assert estimate.period == pytest.approx(WEEK, rel=0.1)


class TestClassifyTemporal:
    def test_one_session_is_one_off(self):
        assert classify_temporal([session(0.0)]) is TemporalClass.ONE_OFF

    def test_two_sessions_are_intermittent(self):
        result = classify_temporal([session(0.0), session(DAY)])
        assert result is TemporalClass.INTERMITTENT

    def test_regular_sessions_are_periodic(self):
        sessions = [session(i * 2 * DAY) for i in range(10)]
        assert classify_temporal(sessions) is TemporalClass.PERIODIC

    def test_irregular_sessions_are_intermittent(self):
        rng = np.random.default_rng(2)
        starts = np.cumsum(rng.exponential(5 * DAY, size=12))
        sessions = [session(float(t)) for t in starts]
        assert classify_temporal(sessions) is TemporalClass.INTERMITTENT

    def test_empty_rejected(self):
        with pytest.raises(ClassificationError):
            classify_temporal([])


class TestClassifyAll:
    def test_mixed_population(self):
        rng = np.random.default_rng(7)
        irregular = np.cumsum(rng.exponential(4 * DAY, size=10))
        by_source = {
            1: [session(0.0)],
            2: [session(i * DAY) for i in range(8)],
            3: [session(float(t)) for t in irregular],
        }
        classes = classify_all(by_source)
        assert classes[1] is TemporalClass.ONE_OFF
        assert classes[2] is TemporalClass.PERIODIC
        assert classes[3] is TemporalClass.INTERMITTENT
