"""Tests for repro.obs.metrics."""

import json
import math
import threading

import pytest

import re

from repro.obs.metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                               MetricsRegistry, escape_help_text,
                               escape_label_value)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_set_max_keeps_high_water(self):
        gauge = Gauge("g")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        ratios = [DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
                  for i in range(len(DEFAULT_BUCKETS) - 1)]
        for ratio in ratios:
            assert ratio == pytest.approx(math.sqrt(10), rel=1e-6)

    def test_observe_routes_to_bucket(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)
        counts = hist.bucket_counts()
        assert counts["1.0"] == 1     # 0.5 <= 1.0
        assert counts["10.0"] == 1    # 5.0
        assert counts["100.0"] == 1   # 50.0
        assert counts["inf"] == 1     # 500.0 overflows

    def test_boundary_value_goes_to_lower_bucket(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.bucket_counts()["1.0"] == 1

    def test_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("x", telescope="T1")
        b = registry.counter("x", telescope="T1")
        c = registry.counter("x", telescope="T2")
        assert a is b
        assert a is not c

    def test_label_order_is_normalized(self):
        registry = MetricsRegistry()
        a = registry.counter("x", a=1, b=2)
        b = registry.counter("x", b=2, a=1)
        assert a is b

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("pkts", telescope="T1").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"pkts{telescope=T1}": 3}
        assert snap["gauges"] == {"depth": 7}
        assert snap["histograms"]["lat"]["count"] == 1
        # snapshot must round-trip through JSON
        assert json.loads(json.dumps(snap)) == snap

    def test_json_export(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc()
        data = json.loads(registry.to_json())
        assert data["counters"]["a.b.c"] == 1

    def test_reset_zeroes_but_keeps_bound_references(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        # the pre-reset reference still feeds the registry
        assert registry.snapshot()["counters"]["x"] == 1

    def test_thread_safety_under_concurrent_increments(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 5000

        def worker():
            for _ in range(per_thread):
                registry.counter("shared", kind="race").inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counter("shared", kind="race").value \
            == threads * per_thread


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("telescope.packets_total", telescope="T1").inc(42)
        registry.gauge("sim.queue_depth").set(7)
        text = registry.to_prometheus()
        assert "# TYPE telescope_packets_total counter" in text
        assert 'telescope_packets_total{telescope="T1"} 42' in text
        assert "# TYPE sim_queue_depth gauge" in text
        assert "sim_queue_depth 7" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="10.0"} 3' in text   # cumulative
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        # no stray TYPE lines for the generated sub-series
        assert "# TYPE lat_bucket" not in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c/d").inc()
        assert "a_b_c_d 1" in registry.to_prometheus()


class TestPrometheusConformance:
    """Exposition format 0.0.4 conformance of ``to_prometheus``."""

    #: ``name{labels} value`` — the sample-line grammar, labels optional.
    SAMPLE = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*'                       # metric name
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"'     # first label
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})?'
        r' [0-9eE.+\-]+(inf|nan)?$', re.IGNORECASE)

    def _full_registry(self):
        registry = MetricsRegistry()
        registry.counter("pkts.total", telescope="T1", kind="icmp").inc(3)
        registry.counter("pkts.total", telescope="T2", kind="tcp").inc(5)
        registry.gauge("sim.queue_depth").set(7.5)
        hist = registry.histogram("session.bytes", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        return registry

    def test_every_family_has_help_and_type(self):
        text = self._full_registry().to_prometheus()
        for family, kind in (("pkts_total", "counter"),
                             ("sim_queue_depth", "gauge"),
                             ("session_bytes", "histogram")):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} {kind}" in text
            # exactly one HELP/TYPE pair per family, not per series
            assert text.count(f"# TYPE {family} ") == 1

    def test_describe_customizes_help_text(self):
        registry = MetricsRegistry()
        registry.describe("pkts.total", "Packets seen,\nall telescopes")
        registry.counter("pkts.total").inc()
        text = registry.to_prometheus()
        # newline in help text is escaped, not emitted raw
        assert "# HELP pkts_total Packets seen,\\nall telescopes" in text

    def test_histogram_emits_sum_count_and_inf(self):
        text = self._full_registry().to_prometheus()
        assert 'session_bytes_bucket{le="1.0"} 1' in text
        assert 'session_bytes_bucket{le="10.0"} 2' in text
        assert 'session_bytes_bucket{le="+Inf"} 3' in text
        assert "session_bytes_sum 505.5" in text
        assert "session_bytes_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert escape_help_text("a\\b\nc") == "a\\\\b\\nc"

    def test_every_line_matches_the_grammar(self):
        text = self._full_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert self.SAMPLE.match(line), f"malformed sample: {line!r}"


class TestMergeSnapshot:
    """Folding one registry's snapshot into another (sharded builds)."""

    def test_counters_add_and_gain_extra_labels(self):
        worker = MetricsRegistry()
        worker.counter("telescope.packets_total", telescope="T1").inc(10)
        worker.counter("plain_total").inc(3)
        coord = MetricsRegistry()
        coord.counter("telescope.packets_total", telescope="T1").inc(1)
        coord.merge_snapshot(worker.snapshot(), shard=2)
        counters = coord.snapshot()["counters"]
        assert counters[
            "telescope.packets_total{shard=2,telescope=T1}"] == 10
        assert counters["plain_total{shard=2}"] == 3
        # the coordinator's own series is untouched
        assert counters["telescope.packets_total{telescope=T1}"] == 1

    def test_gauges_keep_max_and_histograms_merge(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(5)
        worker.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        worker.histogram("lat", bounds=(1.0, 10.0)).observe(50.0)
        coord = MetricsRegistry()
        coord.merge_snapshot(worker.snapshot(), shard=0)
        coord.merge_snapshot(worker.snapshot(), shard=0)  # idempotent labels
        snapshot = coord.snapshot()
        assert snapshot["gauges"]["depth{shard=0}"] == 5
        hist = snapshot["histograms"]["lat{shard=0}"]
        assert hist["count"] == 4
        assert hist["buckets"]["1.0"] == 2
        assert hist["buckets"]["inf"] == 2
