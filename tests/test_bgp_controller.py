"""Tests for repro.bgp.controller (Fig. 2 schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.controller import (SplitController, build_split_schedule,
                                  choose_split_target)
from repro.bgp.speaker import BGPNetwork
from repro.bgp.topology import ASRelationship, ASTopology
from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.sim.clock import DAY, WEEK
from repro.sim.events import Simulator

P32 = Prefix.parse("3fff:1000::/32")


class TestChooseSplitTarget:
    def test_avoids_low_byte_holder(self):
        low, high = P32.split()
        target = choose_split_target({low, high}, P32.low_byte_address)
        assert target == high

    def test_falls_back_when_unavoidable(self):
        target = choose_split_target({P32}, P32.low_byte_address)
        assert target == P32

    def test_most_specific_first(self):
        low, high = P32.split()
        h_low, h_high = high.split()
        target = choose_split_target({low, h_low, h_high},
                                     P32.low_byte_address)
        assert target == h_high

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            choose_split_target(set(), 1)


class TestSchedule:
    def test_paper_defaults(self):
        schedule = build_split_schedule(P32)
        assert len(schedule) == 17
        assert [len(c.prefixes) for c in schedule] == list(range(1, 18))
        final = schedule[-1]
        lengths = sorted(p.length for p in final.prefixes)
        assert lengths == list(range(33, 48)) + [48, 48]

    def test_cycle_zero_is_baseline(self):
        schedule = build_split_schedule(P32, baseline_weeks=12)
        assert schedule[0].prefixes == (P32,)
        assert schedule[0].announce_time == 0.0
        assert schedule[0].withdraw_time == 12 * WEEK - DAY
        assert schedule[1].announce_time == 12 * WEEK

    def test_one_day_gaps(self):
        schedule = build_split_schedule(P32)
        for cycle, following in zip(schedule[1:], schedule[2:]):
            assert following.announce_time - cycle.withdraw_time \
                == pytest.approx(DAY)

    def test_prefixes_tile_the_origin(self):
        """Every cycle's announced set exactly covers the /32."""
        for cycle in build_split_schedule(P32):
            total = sum(p.num_addresses for p in cycle.prefixes)
            assert total == P32.num_addresses
            for a in cycle.prefixes:
                for b in cycle.prefixes:
                    assert a == b or not a.overlaps(b)

    def test_stable_companion_holds_low_byte(self):
        schedule = build_split_schedule(P32)
        for cycle in schedule[1:]:
            holders = [p for p in cycle.prefixes
                       if p.contains_address(P32.low_byte_address)]
            assert len(holders) == 1
            assert holders[0].length == 33

    def test_new_prefixes_are_fresh(self):
        schedule = build_split_schedule(P32)
        seen: set = set()
        for cycle in schedule:
            for prefix in cycle.new_prefixes:
                assert prefix not in seen
                seen.add(prefix)

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            build_split_schedule(P32, baseline_weeks=0)
        with pytest.raises(ExperimentError):
            build_split_schedule(P32, cycle_weeks=1, gap_days=8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=16),
           st.integers(min_value=1, max_value=4))
    def test_counts_for_any_cycle_number(self, cycles, cycle_weeks):
        schedule = build_split_schedule(P32, num_cycles=cycles,
                                        cycle_weeks=cycle_weeks)
        assert len(schedule) == cycles + 1
        assert len(schedule[-1].prefixes) == cycles + 1


class TestSplitController:
    def _world(self):
        t = ASTopology()
        t.add_as(1, tier=1)
        t.add_as(2, tier=3)
        t.add_link(1, 2, ASRelationship.CUSTOMER)
        sim = Simulator()
        network = BGPNetwork(t, sim, np.random.default_rng(0))
        return sim, network

    def test_cycle_at(self):
        sim, network = self._world()
        schedule = build_split_schedule(P32, baseline_weeks=2, num_cycles=2)
        controller = SplitController(speaker=network.speaker(2),
                                     simulator=sim, schedule=schedule)
        controller.start()
        assert controller.cycle_at(0.0).index == 0
        assert controller.cycle_at(2 * WEEK - DAY / 2) is None  # gap day
        assert controller.cycle_at(2 * WEEK).index == 1
        assert controller.announced_prefixes_at(3 * WEEK) \
            == schedule[1].prefixes

    def test_drives_speaker(self):
        sim, network = self._world()
        schedule = build_split_schedule(P32, baseline_weeks=2, num_cycles=1)
        controller = SplitController(speaker=network.speaker(2),
                                     simulator=sim, schedule=schedule)
        controller.start()
        sim.run_until(1 * DAY)
        assert network.speaker(2).originated == {P32}
        sim.run_until(2 * WEEK + DAY)
        assert network.speaker(2).originated == set(schedule[1].prefixes)

    def test_empty_schedule_rejected(self):
        sim, network = self._world()
        controller = SplitController(speaker=network.speaker(2),
                                     simulator=sim, schedule=[])
        with pytest.raises(ExperimentError):
            controller.start()
