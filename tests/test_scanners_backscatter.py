"""Tests for repro.scanners.backscatter (the §8 DDoS negative result)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.scanners.backscatter import (DDoSAttack, GLOBAL_UNICAST,
                                        expected_backscatter_captures,
                                        ipv4_equivalent_captures)
from repro.scanners.base import ScannerContext
from repro.sim.events import Simulator
from repro.telescope.capture import PacketCapture
from repro.telescope.telescope import Telescope, TelescopeKind

TELESCOPE_PREFIX = Prefix.parse("3fff:1000::/32")
VICTIM = Prefix.parse("2001:db8::/32").network | 0x80


@pytest.fixture
def world():
    telescope = Telescope(name="T", kind=TelescopeKind.PASSIVE,
                          prefixes=[TELESCOPE_PREFIX],
                          capture=PacketCapture())
    ctx = ScannerContext(
        simulator=Simulator(),
        route=lambda dst, now: telescope
        if TELESCOPE_PREFIX.contains_address(dst) else None)
    return ctx, telescope


class TestDDoSAttack:
    def test_backscatter_misses_the_telescope(self, world):
        """The §8 claim: IPv6 telescopes capture no DDoS backscatter."""
        ctx, telescope = world
        attack = DDoSAttack(victim=VICTIM, packets=50_000,
                            rng=np.random.default_rng(0))
        captured = attack.run(ctx)
        assert captured == 0
        assert telescope.packet_count == 0
        assert attack.backscatter_sent == 50_000

    def test_spoofed_sources_inside_spoof_space(self):
        attack = DDoSAttack(victim=VICTIM, packets=1,
                            rng=np.random.default_rng(1))
        for _ in range(100):
            assert GLOBAL_UNICAST.contains_address(attack.spoofed_source())

    def test_narrow_spoof_space_gets_captured(self, world):
        """Sanity check: spoofing from inside the telescope does hit it."""
        ctx, telescope = world
        attack = DDoSAttack(victim=VICTIM, packets=100,
                            rng=np.random.default_rng(2),
                            spoof_space=TELESCOPE_PREFIX)
        captured = attack.run(ctx)
        assert captured == 100
        assert telescope.packet_count == 100

    def test_validation(self):
        with pytest.raises(ExperimentError):
            DDoSAttack(victim=VICTIM, packets=0,
                       rng=np.random.default_rng(0))
        with pytest.raises(ExperimentError):
            DDoSAttack(victim=VICTIM, packets=1,
                       rng=np.random.default_rng(0), duration=0)


class TestAnalyticExpectation:
    def test_ipv6_expectation_negligible(self):
        expected = expected_backscatter_captures(
            [Prefix.parse("3fff:4000::/29")], packets=10 ** 9)
        # even a billion-packet attack and a /29 telescope: ~15 packets
        # expected from a 2^125 space -> a /32 sees ~2^-29 of the flood
        assert expected < 20

    def test_ipv4_equivalent_is_large(self):
        # the same flood against an IPv4 /8 darknet
        assert ipv4_equivalent_captures(8, 10 ** 9) == pytest.approx(
            10 ** 9 / 256)

    def test_prefix_outside_spoof_space_ignored(self):
        # the documentation prefix (outside 2000::/3) contributes nothing
        expected = expected_backscatter_captures(
            [Prefix.parse("fc00::/7")], packets=10 ** 9)
        assert expected == 0.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            expected_backscatter_captures([], packets=-1)
        with pytest.raises(ExperimentError):
            ipv4_equivalent_captures(40, 100)
