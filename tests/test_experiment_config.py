"""Tests for repro.experiment.config and phases."""

import pytest

from repro.errors import ExperimentError
from repro.experiment.config import ExperimentConfig
from repro.experiment.phases import Phase, phase_bounds, week_index
from repro.sim.clock import WEEK


class TestExperimentConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.duration == 44 * WEEK
        assert config.split_start == 12 * WEEK

    def test_population_derives_scale(self):
        config = ExperimentConfig(scale=0.5)
        assert config.population.scale == 0.5

    def test_invalid_scale(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale=0)

    def test_invalid_timeline(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(baseline_weeks=0)

    def test_presets(self):
        assert ExperimentConfig.tiny().duration \
            < ExperimentConfig.small().duration \
            < ExperimentConfig.bench().duration


class TestPhases:
    def test_bounds(self):
        config = ExperimentConfig()
        assert phase_bounds(config, Phase.INITIAL) == (0.0, 12 * WEEK)
        assert phase_bounds(config, Phase.SPLIT) == (12 * WEEK, 44 * WEEK)
        assert phase_bounds(config, Phase.FULL) == (0.0, 44 * WEEK)

    def test_week_index(self):
        assert week_index(0.0) == 0
        assert week_index(WEEK) == 1
        with pytest.raises(ExperimentError):
            week_index(-1.0)
