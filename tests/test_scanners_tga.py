"""Tests for repro.scanners.tga (dynamic TGA feedback loop)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.net.prefix import Prefix
from repro.scanners.base import ScannerContext
from repro.scanners.registry import ASRegistry, NetworkType
from repro.scanners.tga import CandidateNode, DynamicTGAScanner
from repro.sim.clock import DAY, WEEK
from repro.sim.events import Simulator
from repro.telescope.capture import PacketCapture
from repro.telescope.reactive import ReactiveResponder
from repro.telescope.telescope import Telescope, TelescopeKind

SPACE = Prefix.parse("3fff:4000::/29")
RESPONSIVE = Prefix.parse("3fff:4000:4::/48")
SILENT = Prefix.parse("3fff:4000:3::/48")


@pytest.fixture
def world():
    """A covering space with one reactive /48 and one silent /48."""
    reactive = Telescope(name="T4", kind=TelescopeKind.ACTIVE,
                         prefixes=[RESPONSIVE], capture=PacketCapture(),
                         responder=ReactiveResponder())
    silent = Telescope(name="T3", kind=TelescopeKind.PASSIVE,
                       prefixes=[SILENT], capture=PacketCapture())

    def route(dst, now):
        if RESPONSIVE.contains_address(dst):
            return reactive
        if SILENT.contains_address(dst):
            return silent
        return None

    ctx = ScannerContext(simulator=Simulator(), route=route,
                         window_start=0.0, window_end=8 * WEEK)
    return ctx, reactive, silent


def make_tga(**kwargs) -> DynamicTGAScanner:
    registry = ASRegistry()
    defaults = dict(
        scanner_id=1, name="tga-test",
        as_record=registry.allocate(NetworkType.EDUCATION),
        rng=np.random.default_rng(5), space=SPACE, period=DAY,
        # one seed each in the responsive and the silent /48, as a prior
        # campaign would have collected
        seeds=(RESPONSIVE.network | 0x1234, SILENT.low_byte_address),
        probes_per_round=96, probes_per_node=6)
    defaults.update(kwargs)
    return DynamicTGAScanner(**defaults)


class TestConstruction:
    def test_seeded_with_first_split_and_seed_prefixes(self):
        tga = make_tga()
        prefixes = {n.prefix for n in tga.candidates}
        assert set(SPACE.split()) <= prefixes
        assert RESPONSIVE in prefixes
        assert SILENT in prefixes

    def test_seed_outside_space_rejected(self):
        with pytest.raises(ExperimentError):
            make_tga(seeds=(1,))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            make_tga(period=0)
        with pytest.raises(ExperimentError):
            make_tga(probes_per_round=0)
        with pytest.raises(ExperimentError):
            make_tga(max_prefix_len=20)

    def test_candidate_node_scoring(self):
        node = CandidateNode(SPACE)
        node.reward()
        assert node.score > 0
        node.penalize()
        node.penalize()
        assert node.score < 1.0


class TestFeedbackLoop:
    def test_converges_onto_responsive_space(self, world):
        """After enough rounds the TGA focuses on the reactive /48."""
        ctx, reactive, silent = world
        tga = make_tga()
        tga.start(ctx)
        ctx.simulator.run_until(8 * WEEK)
        focus = tga.focus_prefixes(top=1)[0]
        assert RESPONSIVE.overlaps(focus)
        # the reactive telescope received far more probes than the
        # silent one in the same covering space
        assert reactive.packet_count > 5 * max(silent.packet_count, 1)

    def test_descends_below_initial_split(self, world):
        ctx, _, _ = world
        tga = make_tga()
        tga.start(ctx)
        ctx.simulator.run_until(8 * WEEK)
        deepest = max(n.prefix.length for n in tga.candidates)
        assert deepest > SPACE.length + 1

    def test_hit_rate_improves(self, world):
        """Feedback raises the hit rate well above blind scanning.

        Blind scanning of the /29 hits the single responsive /48 with
        probability 2^-19; the TGA should do orders of magnitude better.
        """
        ctx, _, _ = world
        tga = make_tga()
        tga.start(ctx)
        ctx.simulator.run_until(8 * WEEK)
        assert tga.hit_rate() > 0.01

    def test_candidate_tree_bounded(self, world):
        ctx, _, _ = world
        tga = make_tga()
        tga.start(ctx)
        ctx.simulator.run_until(8 * WEEK)
        assert len(tga.candidates) <= 64

    def test_unresponsive_space_stays_shallow(self):
        """Without any responder the TGA never rewards a candidate."""
        ctx = ScannerContext(simulator=Simulator(),
                             route=lambda dst, now: None,
                             window_start=0.0, window_end=4 * WEEK)
        tga = make_tga()
        tga.start(ctx)
        ctx.simulator.run_until(4 * WEEK)
        assert all(n.hits == 0 for n in tga.candidates)
        assert tga.hit_rate() == 0.0

    def test_probes_carry_scanner_metadata(self, world):
        ctx, reactive, _ = world
        tga = make_tga(scanner_id=99)
        tga.start(ctx)
        ctx.simulator.run_until(8 * WEEK)
        assert reactive.packet_count > 0
        packet = reactive.capture.packets()[0]
        assert packet.scanner_id == 99
        assert packet.src_asn == tga.as_record.asn
