"""Tests for repro.scanners.strategies."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.net.addrtypes import AddressType, classify_address
from repro.net.prefix import Prefix
from repro.scanners.strategies import (FixedTargetsStrategy, LowByteStrategy,
                                       MixStrategy, PortDistribution,
                                       ProtocolProfile, RandomStrategy,
                                       StructuredSweepStrategy,
                                       TypeMixStrategy, TCP_PORTS)
from repro.telescope.packet import Protocol, is_traceroute_port

P = Prefix.parse("3fff:1000::/32")


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestLowByteStrategy:
    def test_targets_are_low_byte(self, rng):
        targets = LowByteStrategy().generate(P, 20, rng)
        assert len(targets) == 20
        assert all(classify_address(t) is AddressType.LOW_BYTE
                   for t in targets)

    def test_anycast_share(self, rng):
        strategy = LowByteStrategy(anycast_share=1.0)
        targets = strategy.generate(P, 10, rng)
        assert all(classify_address(t) is AddressType.SUBNET_ANYCAST
                   for t in targets)

    def test_subnets_ordered(self, rng):
        targets = LowByteStrategy().generate(P, 10, rng)
        subnets = [t >> 64 for t in targets]
        assert subnets == sorted(subnets)

    def test_host_cycle(self, rng):
        strategy = LowByteStrategy(hosts=(1, 2))
        targets = strategy.generate(P, 4, rng)
        assert [t & 0xFF for t in targets] == [1, 2, 1, 2]


class TestRandomStrategy:
    def test_inside_prefix(self, rng):
        targets = RandomStrategy().generate(P, 50, rng)
        assert all(P.contains_address(t) for t in targets)

    def test_mostly_randomized_type(self, rng):
        targets = RandomStrategy().generate(P, 100, rng)
        histogram = Counter(classify_address(t) for t in targets)
        assert histogram[AddressType.RANDOMIZED] > 90

    def test_structured_subnets_variant(self, rng):
        strategy = RandomStrategy(structured_subnets=True)
        targets = strategy.generate(P, 20, rng)
        subnets = [t >> 64 for t in targets]
        assert subnets == sorted(subnets)
        iids = {t & ((1 << 64) - 1) for t in targets}
        assert len(iids) == 20


class TestFixedTargets:
    def test_cycles_through_pool(self, rng):
        strategy = FixedTargetsStrategy(targets=(1, 2))
        assert strategy.generate(P, 4, rng) == [1, 2, 1, 2]

    def test_prefers_in_prefix_targets(self, rng):
        inside = P.network | 5
        strategy = FixedTargetsStrategy(targets=(inside, 99))
        assert strategy.generate(P, 2, rng) == [inside, inside]


class TestTypeMixStrategy:
    def test_distribution_shape(self, rng):
        strategy = TypeMixStrategy()
        targets = strategy.generate(P, 400, rng)
        histogram = Counter(classify_address(t) for t in targets)
        assert histogram[AddressType.LOW_BYTE] > 100
        assert histogram[AddressType.EMBEDDED_IPV4] > 5
        assert AddressType.RANDOMIZED in histogram

    def test_unknown_kind_rejected(self, rng):
        strategy = TypeMixStrategy(weights={"bogus": 1.0})
        with pytest.raises(ExperimentError):
            strategy.generate(P, 1, rng)


class TestMixStrategy:
    def test_draws_from_parts(self, rng):
        mix = MixStrategy(parts=((1.0, LowByteStrategy()),))
        targets = mix.generate(P, 5, rng)
        assert len(targets) == 5

    def test_empty_rejected(self, rng):
        with pytest.raises(ExperimentError):
            MixStrategy(parts=()).generate(P, 1, rng)


class TestPortDistribution:
    def test_weights_respected(self, rng):
        dist = PortDistribution(ports=(80, 443), weights=(0.9, 0.1))
        draws = Counter(dist.sample(rng) for _ in range(1000))
        assert draws[80] > draws[443] * 3

    def test_broad_share(self, rng):
        dist = PortDistribution(ports=(80,), weights=(1.0,),
                                broad_share=1.0, broad_range=(1, 10))
        draws = {dist.sample(rng) for _ in range(100)}
        assert draws <= set(range(1, 11))

    def test_misaligned_rejected(self):
        with pytest.raises(ExperimentError):
            PortDistribution(ports=(80,), weights=(0.5, 0.5))

    def test_zero_weight_rejected(self):
        with pytest.raises(ExperimentError):
            PortDistribution(ports=(80,), weights=(0.0,))


class TestProtocolProfile:
    def test_icmpv6_only(self, rng):
        profile = ProtocolProfile(icmpv6=1.0)
        for _ in range(20):
            protocol, port = profile.sample(rng)
            assert protocol is Protocol.ICMPV6
            assert port == 0

    def test_tcp_ports_from_distribution(self, rng):
        profile = ProtocolProfile(icmpv6=0.0, tcp=1.0, tcp_ports=TCP_PORTS)
        ports = Counter(profile.sample(rng)[1] for _ in range(500))
        assert ports.most_common(1)[0][0] == 80

    def test_udp_traceroute_share(self, rng):
        profile = ProtocolProfile(icmpv6=0.0, udp=1.0,
                                  udp_traceroute_share=1.0)
        for _ in range(20):
            protocol, port = profile.sample(rng)
            assert protocol is Protocol.UDP
            assert is_traceroute_port(port)

    def test_no_weight_rejected(self, rng):
        with pytest.raises(ExperimentError):
            ProtocolProfile(icmpv6=0.0).sample(rng)

    def test_mixture_covers_all(self, rng):
        profile = ProtocolProfile(icmpv6=0.4, tcp=0.3, udp=0.3)
        protocols = {profile.sample(rng)[0] for _ in range(200)}
        assert protocols == {Protocol.ICMPV6, Protocol.TCP, Protocol.UDP}
