"""Tests for repro.experiment.triggers (§8 outlook item i)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiment.triggers import (BgpAnnouncementTrigger,
                                       DnsExposureTrigger,
                                       TriggerExperiment, compare_triggers)
from repro.net.prefix import Prefix
from repro.sim.clock import WEEK

PREFIX = Prefix.parse("3fff:aaaa::/48")


class TestTriggers:
    def test_dns_exposed_addresses_inside_prefix(self):
        trigger = DnsExposureTrigger(num_addresses=5)
        addrs = trigger.exposed_addresses(PREFIX,
                                          np.random.default_rng(0))
        assert len(addrs) == 5
        assert len(set(addrs)) == 5
        assert all(PREFIX.contains_address(a) for a in addrs)

    def test_bgp_exposed_are_low_byte(self):
        trigger = BgpAnnouncementTrigger(num_addresses=4)
        addrs = trigger.exposed_addresses(PREFIX,
                                          np.random.default_rng(0))
        assert all(a & 0xFFFF == 1 for a in addrs)

    def test_cohort_scaling(self):
        assert DnsExposureTrigger(attraction=1.0).cohort_size(10) == 10
        assert BgpAnnouncementTrigger(attraction=1.4).cohort_size(10) == 14


class TestTriggerExperiment:
    def test_exposure_attracts(self):
        experiment = TriggerExperiment(trigger=DnsExposureTrigger())
        result = experiment.run()
        assert result.effective
        assert result.attraction_factor > 3.0
        assert result.reacting_sources > 0
        assert "attraction" in result.render()

    def test_before_window_is_unbiased(self):
        """Exposed and control addresses look alike pre-exposure."""
        result = TriggerExperiment(trigger=DnsExposureTrigger()).run()
        before_total = (result.exposed_packets_before
                        + result.control_packets_before)
        if before_total:
            share = result.exposed_packets_before / before_total
            assert 0.3 < share < 0.7

    def test_control_keeps_background_only(self):
        result = TriggerExperiment(trigger=DnsExposureTrigger()).run()
        # control addresses keep receiving background probes after the
        # exposure too
        assert result.control_packets_after > 0

    def test_exposure_outside_run_rejected(self):
        trigger = DnsExposureTrigger(expose_at=10 * WEEK)
        experiment = TriggerExperiment(trigger=trigger, duration=6 * WEEK)
        with pytest.raises(ExperimentError):
            experiment.run()

    def test_deterministic(self):
        a = TriggerExperiment(trigger=DnsExposureTrigger(), seed=3).run()
        b = TriggerExperiment(trigger=DnsExposureTrigger(), seed=3).run()
        assert a == b


class TestCompareTriggers:
    def test_ranked_by_attraction(self):
        results = compare_triggers([
            DnsExposureTrigger(attraction=0.5),
            BgpAnnouncementTrigger(attraction=2.0),
        ])
        assert len(results) == 2
        assert results[0].attraction_factor \
            >= results[1].attraction_factor
        assert results[0].trigger_name == "bgp-announcement"
