"""Tests for repro.obs.ledger — the run ledger and ``repro runs`` CLI."""

import json

import pytest

from repro.cli import main
from repro.experiment import ExperimentConfig, run_experiment
from repro.obs import events as obsevents
from repro.obs import ledger


def _manifest(run_id, stage_seconds, *, counters=None, corpus_digest=None,
              scale=0.04, seed=42):
    return ledger.build_manifest(
        run_id=run_id,
        config={"seed": seed, "scale": scale},
        stage_seconds=stage_seconds,
        wall_seconds=sum(stage_seconds.values()),
        corpus_summary={"total_packets": 1000, "telescopes": 4},
        corpus_digest=corpus_digest,
        metrics={"counters": counters or {}})


class TestManifest:
    def test_config_digest_is_canonical(self):
        assert ledger.config_digest({"a": 1, "b": 2}) \
            == ledger.config_digest({"b": 2, "a": 1})
        assert ledger.config_digest({"a": 1}) \
            != ledger.config_digest({"a": 2})

    def test_config_to_dict_handles_dataclass(self):
        config = ExperimentConfig.tiny(seed=7)
        as_dict = ledger.config_to_dict(config)
        assert as_dict["seed"] == 7
        assert as_dict["scale"] == 0.04
        # round-trips through JSON
        assert json.loads(json.dumps(as_dict)) == as_dict

    def test_build_manifest_shape(self):
        manifest = _manifest("r1", {"simulate": 1.23456})
        assert manifest["schema"] == ledger.LEDGER_SCHEMA
        assert manifest["run_id"] == "r1"
        assert manifest["seed"] == 42
        assert manifest["stage_seconds"]["simulate"] == 1.2346
        assert manifest["config_digest"] == ledger.config_digest(
            manifest["config"])
        assert json.loads(json.dumps(manifest)) == manifest

    def test_write_load_round_trip(self, tmp_path):
        manifest = _manifest("r1", {"simulate": 1.0})
        path = ledger.write_manifest(tmp_path, manifest)
        assert path == tmp_path / "r1" / ledger.MANIFEST_NAME
        assert ledger.load_manifest(tmp_path, "r1") == manifest
        with pytest.raises(FileNotFoundError):
            ledger.load_manifest(tmp_path, "absent")


class TestListRuns:
    def test_lists_sorted_and_skips_garbage(self, tmp_path):
        ledger.write_manifest(tmp_path, _manifest("b-run", {"s": 1.0}))
        ledger.write_manifest(tmp_path, _manifest("a-run", {"s": 1.0}))
        (tmp_path / "empty-dir").mkdir()
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / ledger.MANIFEST_NAME).write_text("{not json",
                                                   encoding="utf-8")
        (tmp_path / "stray-file").write_text("x", encoding="utf-8")
        runs = ledger.list_runs(tmp_path)
        assert [m["run_id"] for m in runs] == ["a-run", "b-run"]

    def test_missing_ledger_dir_is_empty(self, tmp_path):
        assert ledger.list_runs(tmp_path / "nowhere") == []

    def test_render_table(self, tmp_path):
        assert ledger.render_runs_table([]) == "(no runs in ledger)"
        table = ledger.render_runs_table([_manifest("r1", {"s": 1.0})])
        assert "r1" in table
        assert "1000" in table  # packets column


class TestRunComparison:
    def test_regression_flagged_beyond_threshold(self):
        old = _manifest("old", {"simulate": 1.0, "flush": 1.0})
        new = _manifest("new", {"simulate": 1.5, "flush": 1.0})
        comparison = ledger.RunComparison(old, new, threshold=0.10)
        assert comparison.regressions == ["simulate"]
        assert "REGRESSION" in comparison.render()

    def test_small_absolute_delta_not_flagged(self):
        # 100% slower but only 20ms absolute — scheduler noise, not code
        old = _manifest("old", {"tiny_stage": 0.02})
        new = _manifest("new", {"tiny_stage": 0.04})
        assert ledger.RunComparison(old, new).regressions == []

    def test_improvement_and_one_sided_stages(self):
        old = _manifest("old", {"simulate": 2.0, "legacy_only": 1.0})
        new = _manifest("new", {"simulate": 1.0, "new_only": 1.0})
        comparison = ledger.RunComparison(old, new)
        assert comparison.regressions == []
        rendered = comparison.render()
        assert "improved" in rendered
        assert rendered.count("only one run") == 2
        assert "no stage regressions" in rendered

    def test_digest_notes(self):
        same = ledger.RunComparison(
            _manifest("a", {"s": 1.0}, corpus_digest="d1"),
            _manifest("b", {"s": 1.0}, corpus_digest="d1"))
        assert any("corpus digests match" in n for n in same.notes)
        differ = ledger.RunComparison(
            _manifest("a", {"s": 1.0}, corpus_digest="d1", seed=1),
            _manifest("b", {"s": 1.0}, corpus_digest="d2", seed=2))
        assert any("DIFFER" in n for n in differ.notes)
        assert any("configs differ" in n for n in differ.notes)

    def test_changed_counters_listed(self):
        comparison = ledger.RunComparison(
            _manifest("a", {"s": 1.0}, counters={"pkts": 10, "same": 5}),
            _manifest("b", {"s": 1.0}, counters={"pkts": 12, "same": 5}))
        assert comparison.metric_rows == [("pkts", 10.0, 12.0)]


class TestRunExperimentLedger:
    def test_run_writes_manifest_next_to_event_log(self, tmp_path):
        run_id = "test-ledger-run"
        events_path = tmp_path / run_id / "events.jsonl"
        with obsevents.EventLog(events_path, run_id=run_id):
            result = run_experiment(ExperimentConfig.tiny(), run_id=run_id,
                                    ledger_dir=tmp_path)
        manifest = ledger.load_manifest(tmp_path, run_id)
        assert manifest["run_id"] == run_id
        assert manifest["seed"] == 42
        assert manifest["shards"] is None
        assert manifest["corpus"]["total_packets"] \
            == result.corpus.total_packets()
        assert manifest["corpus_digest"]
        assert manifest["wall_seconds"] > 0
        assert {"build_population", "simulate", "flush_batches",
                "package_corpus"} <= set(manifest["stage_seconds"])
        assert manifest["fault_plan"] is None
        assert manifest["events_file"] == str(events_path)
        # the manifest lives next to the run's event log
        assert events_path.parent == (
            tmp_path / run_id / ledger.MANIFEST_NAME).parent
        kinds = [e["kind"]
                 for e in obsevents.read_events(events_path)]
        assert kinds[0] == "run.start"
        assert kinds[-1] == "run.end"
        assert "stage.start" in kinds and "stage.end" in kinds

    def test_no_ledger_dir_writes_nothing(self, tmp_path):
        run_experiment(ExperimentConfig.tiny(), ledger_dir=None)
        assert list(tmp_path.iterdir()) == []


class TestRunsCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        ledger.write_manifest(tmp_path, _manifest(
            "run-old", {"simulate": 1.0}, corpus_digest="d1"))
        ledger.write_manifest(tmp_path, _manifest(
            "run-new", {"simulate": 2.0}, corpus_digest="d1"))
        ledger.write_manifest(tmp_path, _manifest(
            "run-same", {"simulate": 1.02}, corpus_digest="d1"))
        return tmp_path

    def test_list(self, populated, capsys):
        assert main(["runs", "list", "--ledger", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "run-old" in out and "run-new" in out

    def test_show(self, populated, capsys):
        assert main(["runs", "show", "run-old",
                     "--ledger", str(populated)]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["run_id"] == "run-old"

    def test_compare_exit_codes(self, populated, capsys):
        assert main(["runs", "compare", "run-old", "run-same",
                     "--ledger", str(populated)]) == 0
        assert "no stage regressions" in capsys.readouterr().out
        assert main(["runs", "compare", "run-old", "run-new",
                     "--ledger", str(populated)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_threshold_flag(self, populated):
        # 2x slowdown passes under an absurdly lax threshold
        assert main(["runs", "compare", "run-old", "run-new",
                     "--ledger", str(populated),
                     "--threshold", "1.5"]) == 0

    def test_unknown_run_id_is_clean_error(self, populated, capsys):
        # 2 is the CLI's ReproError exit code (not a traceback)
        assert main(["runs", "show", "ghost",
                     "--ledger", str(populated)]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_runs_does_not_pollute_the_ledger(self, populated):
        before = sorted(p.name for p in populated.iterdir())
        main(["runs", "list", "--ledger", str(populated)])
        assert sorted(p.name for p in populated.iterdir()) == before
