"""Tests for the repro.dns substrate."""

import pytest

from repro.dns.resolver import Resolver
from repro.dns.umbrella import UmbrellaList
from repro.dns.zone import RecordType, ResourceRecord, Zone, reverse_name
from repro.errors import ReproError
from repro.net.addr import parse_addr


class TestZone:
    def test_add_aaaa_and_lookup(self):
        zone = Zone(origin="example.net.")
        record = zone.add_aaaa("www.example.net.", "2001:db8::1")
        assert record.data == parse_addr("2001:db8::1")
        hits = zone.lookup("www.example.net.", RecordType.AAAA)
        assert len(hits) == 1

    def test_lookup_case_insensitive(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("WWW.Example.NET.", "2001:db8::1")
        assert zone.lookup("www.example.net.", RecordType.AAAA)

    def test_duplicate_records_deduplicated(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("www.example.net.", "2001:db8::1")
        zone.add_aaaa("www.example.net.", "2001:db8::1")
        assert len(zone) == 1

    def test_record_validation(self):
        with pytest.raises(ReproError):
            ResourceRecord(name="", rtype=RecordType.AAAA, data=1)
        with pytest.raises(ReproError):
            ResourceRecord(name="x.", rtype=RecordType.AAAA, data="no")
        with pytest.raises(ReproError):
            ResourceRecord(name="x.", rtype=RecordType.PTR, data=1)

    def test_aaaa_addresses(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("a.example.net.", "2001:db8::1")
        zone.add_aaaa("b.example.net.", "2001:db8::2")
        assert zone.aaaa_addresses() == {parse_addr("2001:db8::1"),
                                         parse_addr("2001:db8::2")}

    def test_names(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("a.example.net.", 1)
        zone.add_ptr(1, "a.example.net.")
        assert "a.example.net." in zone.names(RecordType.AAAA)
        assert len(zone.names()) == 2


class TestReverseName:
    def test_format(self):
        name = reverse_name("2001:db8::1")
        assert name.endswith(".ip6.arpa.")
        assert name.startswith("1.0.0.0.")
        assert name.count(".") == 34


class TestResolver:
    def test_forward_resolution(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("www.example.net.", "2001:db8::1")
        resolver = Resolver([zone])
        assert resolver.resolve("www.example.net.") \
            == [parse_addr("2001:db8::1")]

    def test_reverse_resolution(self):
        zone = Zone(origin="rdns.")
        zone.add_ptr("2001:db8::1", "scanner.example.org")
        resolver = Resolver([zone])
        assert resolver.reverse("2001:db8::1") == "scanner.example.org"
        assert resolver.reverse("2001:db8::2") is None

    def test_has_name(self):
        zone = Zone(origin="example.net.")
        zone.add_aaaa("www.example.net.", "2001:db8::1")
        resolver = Resolver([zone])
        assert resolver.has_name("2001:db8::1")
        assert not resolver.has_name("2001:db8::2")

    def test_multiple_zones(self):
        a = Zone(origin="a.")
        b = Zone(origin="b.")
        a.add_aaaa("x.a.", 1)
        b.add_aaaa("x.a.", 2)
        resolver = Resolver([a])
        resolver.add_zone(b)
        assert sorted(resolver.resolve("x.a.")) == [1, 2]


class TestUmbrellaList:
    def test_append_rank(self):
        u = UmbrellaList()
        assert u.add("a.example") == 1
        assert u.add("b.example") == 2

    def test_insert_rank(self):
        u = UmbrellaList()
        u.add("a.example")
        assert u.add("b.example", rank=1) == 1
        assert u.rank_of("a.example") == 2

    def test_duplicate_keeps_rank(self):
        u = UmbrellaList()
        u.add("a.example")
        assert u.add("a.example") == 1
        assert len(u) == 1

    def test_contains_and_top(self):
        u = UmbrellaList()
        u.add("a.example")
        u.add("b.example")
        assert "A.EXAMPLE" in u
        assert u.top(1) == ["a.example"]

    def test_invalid(self):
        with pytest.raises(ReproError):
            UmbrellaList().add("")
        with pytest.raises(ReproError):
            UmbrellaList().add("x", rank=0)

    def test_unlisted_rank_none(self):
        assert UmbrellaList().rank_of("nope") is None
