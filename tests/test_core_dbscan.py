"""Tests for repro.core.dbscan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbscan import NOISE, cluster_sizes, dbscan, num_clusters
from repro.errors import AnalysisError


class TestBasicClustering:
    def test_two_clusters_and_noise(self):
        points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 50.0]
        labels = dbscan(points, eps=0.5, min_samples=2)
        assert num_clusters(labels) == 2
        assert labels[-1] == NOISE
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_single_cluster(self):
        labels = dbscan([1.0, 1.1, 1.2, 1.3], eps=0.5, min_samples=2)
        assert num_clusters(labels) == 1
        assert NOISE not in labels

    def test_all_noise(self):
        labels = dbscan([0.0, 10.0, 20.0], eps=1.0, min_samples=2)
        assert labels == [NOISE, NOISE, NOISE]

    def test_empty(self):
        assert dbscan([], eps=1.0, min_samples=2) == []

    def test_min_samples_one_clusters_everything(self):
        labels = dbscan([0.0, 100.0], eps=1.0, min_samples=1)
        assert NOISE not in labels
        assert num_clusters(labels) == 2

    def test_2d_points(self):
        points = [[0, 0], [0, 1], [10, 10], [10, 11]]
        labels = dbscan(points, eps=1.5, min_samples=2)
        assert num_clusters(labels) == 2

    def test_chain_expansion(self):
        """Density-reachable chains join one cluster."""
        points = [float(i) for i in range(10)]
        labels = dbscan(points, eps=1.0, min_samples=2)
        assert num_clusters(labels) == 1

    def test_custom_metric(self):
        def metric(a, b):
            return abs(len(a) - len(b))
        words = ["a", "bb", "ccc", "dddddddddd"]
        labels = dbscan(words, eps=1.0, min_samples=2, metric=metric)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == NOISE

    def test_invalid_parameters(self):
        with pytest.raises(AnalysisError):
            dbscan([1.0], eps=0.0, min_samples=2)
        with pytest.raises(AnalysisError):
            dbscan([1.0], eps=1.0, min_samples=0)

    def test_cluster_sizes(self):
        labels = [0, 0, 1, NOISE]
        sizes = cluster_sizes(labels)
        assert sizes == {0: 2, 1: 1, NOISE: 1}


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=40),
           st.floats(min_value=0.1, max_value=10),
           st.integers(min_value=1, max_value=5))
    def test_every_point_labelled(self, points, eps, min_samples):
        labels = dbscan(points, eps=eps, min_samples=min_samples)
        assert len(labels) == len(points)
        assert all(isinstance(label, int) for label in labels)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=30))
    def test_identical_points_share_cluster(self, points):
        doubled = points + points
        labels = dbscan(doubled, eps=0.5, min_samples=2)
        n = len(points)
        for i in range(n):
            assert labels[i] == labels[i + n]


class TestBorderUpgrade:
    def test_expansion_reaches_early_noise(self):
        """A point first labelled NOISE must become a border point when a
        later cluster expands into its neighborhood (reviewed bug)."""
        labels = dbscan([3.0, 0.0, 1.0, 2.0], eps=1.0, min_samples=3)
        assert labels == [0, 0, 0, 0]


class TestPairwisePath:
    """The precomputed-distance-matrix path must match the re-scan path."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32), st.integers(2, 6))
    def test_matches_scan_path(self, seed, dims):
        import repro.core.dbscan as mod
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(60, dims)) * 3.0
        fast = dbscan(points, eps=1.5, min_samples=3)
        original = mod.PAIRWISE_LIMIT
        mod.PAIRWISE_LIMIT = 0
        try:
            slow = dbscan(points, eps=1.5, min_samples=3)
        finally:
            mod.PAIRWISE_LIMIT = original
        assert fast == slow
