"""Tests for repro.telescope.deployment."""

import pytest

from repro.net.addr import parse_addr
from repro.sim.clock import DAY, WEEK
from repro.sim.rng import RngStreams
from repro.telescope.deployment import (COVERING_PREFIX, T1_PREFIX,
                                        T2_PREFIX, T3_PREFIX, T4_PREFIX,
                                        build_deployment)


@pytest.fixture(scope="module")
def deployment():
    dep = build_deployment(RngStreams(11), baseline_weeks=2, num_cycles=2,
                           num_stubs=10, num_tier2=6)
    dep.simulator.run_until(DAY)
    return dep


class TestPrefixLayout:
    def test_t3_t4_inside_covering(self):
        assert COVERING_PREFIX.covers(T3_PREFIX)
        assert COVERING_PREFIX.covers(T4_PREFIX)
        assert not T3_PREFIX.overlaps(T4_PREFIX)

    def test_t1_t2_disjoint(self):
        assert not T1_PREFIX.overlaps(T2_PREFIX)
        assert not T1_PREFIX.overlaps(COVERING_PREFIX)


class TestVisibility:
    def test_announced_prefixes_visible(self, deployment):
        assert deployment.looking_glass.is_visible(T1_PREFIX)
        assert deployment.looking_glass.is_visible(T2_PREFIX)
        assert deployment.looking_glass.is_visible(COVERING_PREFIX)

    def test_silent_subnets_not_separately_visible(self, deployment):
        assert not deployment.looking_glass.is_visible(T3_PREFIX)
        assert not deployment.looking_glass.is_visible(T4_PREFIX)


class TestRouting:
    def test_telescope_routing(self, deployment):
        assert deployment.route(T1_PREFIX.low_byte_address).name == "T1"
        assert deployment.route(T2_PREFIX.low_byte_address).name == "T2"
        assert deployment.route(T3_PREFIX.low_byte_address).name == "T3"
        assert deployment.route(T4_PREFIX.low_byte_address).name == "T4"

    def test_other_covering_space_unrouted(self, deployment):
        other = COVERING_PREFIX.network | (1 << 70)
        assert deployment.route(other) is None

    def test_unannounced_space_unrouted(self, deployment):
        assert deployment.route(parse_addr("3fff:9999::1")) is None

    def test_t1_unrouted_in_gap_day(self, deployment):
        gap_time = 2 * WEEK - DAY / 2
        assert deployment.route(T1_PREFIX.low_byte_address,
                                now=gap_time) is None

    def test_attractor_routes_to_t2(self, deployment):
        target = deployment.productive.attractor_addr
        assert deployment.route(target).name == "T2"

    def test_productive_subnet_excluded_by_filter(self, deployment):
        t2 = deployment.t2
        excluded = deployment.productive.subnet.network | 7
        from repro.telescope.packet import ICMPV6, Packet
        before = len(t2.capture)
        t2.deliver(Packet(time=DAY, src=1, dst=excluded, protocol=ICMPV6))
        assert len(t2.capture) == before
        assert t2.capture.dropped >= 1


class TestSchedule:
    def test_cycles_match_config(self, deployment):
        assert len(deployment.cycles()) == 3
        assert deployment.split_start() == 2 * WEEK

    def test_hitlist_seeded(self, deployment):
        published = {e.prefix for e in deployment.hitlist.published()}
        assert T2_PREFIX in published
        assert COVERING_PREFIX in published
