"""Tests for repro.core.heavy."""

import pytest

from repro.core.heavy import (find_heavy_hitters, heavy_hitter_impact)
from repro.core.sessions import sessionize
from repro.errors import AnalysisError
from repro.telescope.packet import ICMPV6, Packet


def packets_from(source: int, count: int, start: float = 0.0):
    return [Packet(time=start + i * 0.1, src=source, dst=2,
                   protocol=ICMPV6) for i in range(count)]


class TestFindHeavyHitters:
    def test_detects_dominant_source(self):
        packets = packets_from(1, 90) + packets_from(2, 10)
        hitters = find_heavy_hitters({"T1": packets})
        assert len(hitters) == 1
        assert hitters[0].source == 1
        assert hitters[0].share == pytest.approx(0.9)

    def test_threshold_strict(self):
        packets = packets_from(1, 10) + packets_from(2, 90)
        hitters = find_heavy_hitters({"T1": packets}, threshold=0.5)
        assert [h.source for h in hitters] == [2]

    def test_per_telescope(self):
        data = {"T1": packets_from(1, 100),
                "T2": packets_from(2, 100)}
        hitters = find_heavy_hitters(data)
        assert {(h.source, h.telescope) for h in hitters} \
            == {(1, "T1"), (2, "T2")}

    def test_empty_telescope_skipped(self):
        assert find_heavy_hitters({"T1": []}) == []

    def test_invalid_threshold(self):
        with pytest.raises(AnalysisError):
            find_heavy_hitters({"T1": []}, threshold=1.5)


class TestImpact:
    def test_packet_vs_session_share(self):
        hh = packets_from(1, 900)
        normal = []
        for source in range(2, 12):
            normal.extend(packets_from(source, 10, start=source * 10))
        packets = {"T1": hh + normal}
        sessions = {"T1": sessionize(hh + normal, telescope="T1")}
        impact = heavy_hitter_impact(packets, sessions)
        assert impact.num_hitters == 1
        assert impact.packet_share == pytest.approx(0.9)
        assert impact.session_share == pytest.approx(1 / 11)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            heavy_hitter_impact({"T1": []}, {})
