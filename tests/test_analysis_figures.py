"""Integration tests for the figure generators."""

import numpy as np
import pytest

from repro.analysis import figures
from repro.core.temporal import TemporalClass
from repro.errors import AnalysisError


class TestFig3:
    def test_series_and_knee(self, small_analysis):
        result = figures.fig3(small_analysis)
        assert sum(result.daily_new) > 0
        assert 0 <= result.knee_day() < len(result.daily_new)
        assert "Fig 3" in result.render()


class TestFig4:
    def test_series_monotone(self, small_analysis):
        result = figures.fig4(small_analysis)
        for name, values in result.series.items():
            assert values == sorted(values), name
            assert values[-1] > 0, name

    def test_source_aggregation_divergence(self, small_analysis):
        """/128 sources grow at least as fast as /64 (Fig 4 divergence)."""
        result = figures.fig4(small_analysis)
        assert result.series["sources_128"][-1] \
            >= result.series["sources_64"][-1]
        assert result.series["sessions_128"][-1] \
            >= result.series["sessions_64"][-1]


class TestFig5:
    def test_heavy_hitters_found(self, small_analysis):
        result = figures.fig5(small_analysis)
        assert result.hitters
        first = result.hitters[0]
        assert result.active_days(first.source, first.telescope) > 0


class TestFig7:
    def test_hourly_and_classification(self, small_analysis):
        result = figures.fig7(small_analysis)
        assert sum(result.hourly["T1"]) > 0
        assert sum(result.hourly["T2"]) > 0
        assert result.classification["T1"]


class TestFig8:
    def test_exclusive_share_high(self, small_analysis):
        result = figures.fig8(small_analysis)
        assert result.exclusive_source_share() > 0.5
        assert result.asns.set_sizes["T1"] > 0


class TestFig9:
    def test_weekly_buckets(self, small_analysis):
        result = figures.fig9(small_analysis)
        weeks = small_analysis.corpus.config.baseline_weeks
        for series in result.weekly.values():
            assert len(series) == weeks


class TestFig10:
    def test_cumulative_series(self, small_analysis):
        result = figures.fig10(small_analysis)
        assert result.cumulative
        for series in result.cumulative.values():
            assert series == sorted(series)


class TestFig11:
    def test_cycle_alignment(self, small_analysis):
        result = figures.fig11(small_analysis)
        assert len(result.t1) == len(result.others) \
            == len(small_analysis.corpus.schedule)

    def test_t1_grows_during_split(self, small_analysis):
        result = figures.fig11(small_analysis)
        split = [a for a in result.t1 if a.cycle_index > 0]
        assert split[-1].sources > split[0].sources


class TestFig12And13:
    def test_structured_session_found(self, small_analysis):
        result = figures.fig12(small_analysis)
        assert result.structured is not None
        assert result.structured.nibbles.shape[1] == 32

    def test_structured_iid_entropy_low(self, small_analysis):
        result = figures.fig12(small_analysis)
        matrix = result.structured
        iid_entropy = np.mean([matrix.column_entropy(c)
                               for c in range(24, 32)])
        assert iid_entropy < 2.0

    def test_fig13_sorted(self, small_analysis):
        matrix = figures.fig13(small_analysis)
        rows = [tuple(r) for r in matrix.nibbles]
        assert rows == sorted(rows)


class TestFig14:
    def test_ranked_series_descending(self, small_analysis):
        result = figures.fig14(small_analysis)
        for series in result.ranked.values():
            assert series == sorted(series, reverse=True)


class TestFig15:
    def test_histogram_nonempty(self, small_analysis):
        result = figures.fig15(small_analysis)
        assert sum(result.histogram.values()) > 0
        assert any(cls is TemporalClass.PERIODIC
                   for cls, _ in result.histogram)


class TestFig16:
    def test_everywhere_sources(self, small_analysis):
        result = figures.fig16(small_analysis)
        assert len(result.everywhere_sources) >= 1
        for source in result.everywhere_sources:
            assert set(result.daily_activity[source]) \
                <= {"T1", "T2", "T3", "T4"}

    def test_weekly_share_bounded(self, small_analysis):
        result = figures.fig16(small_analysis)
        assert all(0.0 <= v <= 1.0
                   for v in result.weekly_same_day_share)


class TestFig17:
    def test_pass_shares_bounded(self, small_analysis):
        result = figures.fig17(small_analysis)
        assert result.sessions_tested > 0
        for share in result.pass_shares.values():
            assert 0.0 <= share <= 1.0

    def test_subnet_less_random_than_iid(self, small_analysis):
        """Appendix B: scanners structure subnets, randomize IIDs."""
        result = figures.fig17(small_analysis)
        iid = [v for (cls, section, test), v in result.pass_shares.items()
               if section == "iid" and test == "frequency"]
        subnet = [v for (cls, section, test), v
                  in result.pass_shares.items()
                  if section == "subnet" and test == "frequency"]
        if iid and subnet:
            assert np.mean(iid) >= np.mean(subnet)
