"""Tests for repro.scanners.registry and tools."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.scanners.registry import (ASRegistry, NetworkType,
                                     source_prefix_for_asn)
from repro.scanners.tools import (RIPE_ATLAS, TOOL_SIGNATURES, YARRP6,
                                  identify_payload)


class TestSourcePrefix:
    def test_deterministic(self):
        assert source_prefix_for_asn(1234) == source_prefix_for_asn(1234)

    def test_distinct_per_asn(self):
        assert source_prefix_for_asn(1) != source_prefix_for_asn(2)

    def test_length_48(self):
        assert source_prefix_for_asn(77).length == 48

    def test_invalid_asn(self):
        with pytest.raises(ExperimentError):
            source_prefix_for_asn(0)


class TestASRegistry:
    def test_allocate(self):
        registry = ASRegistry()
        record = registry.allocate(NetworkType.HOSTING, country="DE")
        assert record.network_type is NetworkType.HOSTING
        assert record.country == "DE"
        assert registry.get(record.asn) is record

    def test_allocate_many_respects_mix(self):
        registry = ASRegistry()
        rng = np.random.default_rng(0)
        records = registry.allocate_many(
            500, rng, type_mix={NetworkType.HOSTING: 0.8,
                                NetworkType.ISP: 0.2})
        hosting = sum(1 for r in records
                      if r.network_type is NetworkType.HOSTING)
        assert 320 < hosting < 480

    def test_lookup_source(self):
        registry = ASRegistry()
        record = registry.allocate(NetworkType.ISP)
        addr = record.source_prefix.network | 42
        assert registry.lookup_source(addr) is record
        assert registry.network_type_of(addr) is NetworkType.ISP

    def test_lookup_unknown_space(self):
        registry = ASRegistry()
        registry.allocate(NetworkType.ISP)
        assert registry.lookup_source(1) is None
        assert registry.network_type_of(1) is NetworkType.UNKNOWN

    def test_unknown_asn_raises(self):
        with pytest.raises(ExperimentError):
            ASRegistry().get(5)

    def test_negative_count_rejected(self):
        with pytest.raises(ExperimentError):
            ASRegistry().allocate_many(-1, np.random.default_rng(0))

    def test_countries_collected(self):
        registry = ASRegistry()
        registry.allocate_many(50, np.random.default_rng(0))
        assert len(registry.countries()) > 1


class TestToolSignatures:
    def test_payload_carries_magic(self):
        rng = np.random.default_rng(0)
        payload = YARRP6.payload(rng, seq=7)
        assert payload.startswith(YARRP6.magic)
        assert YARRP6.matches(payload)

    def test_identify_payload(self):
        rng = np.random.default_rng(0)
        for signature in TOOL_SIGNATURES:
            payload = signature.payload(rng)
            assert identify_payload(payload) is signature

    def test_unknown_payload(self):
        assert identify_payload(b"\x00\x01\x02\x03") is None

    def test_magics_unambiguous(self):
        for a in TOOL_SIGNATURES:
            for b in TOOL_SIGNATURES:
                if a is not b:
                    assert not a.magic.startswith(b.magic)

    def test_rdns_template(self):
        assert RIPE_ATLAS.rdns_for(3) == "probe-3.atlas.ripe.net"
        assert YARRP6.rdns_for(3) == ""
