"""Differential tests: columnar engine vs the legacy object path.

The vectorized sessionization/aggregation/phase slicing must agree with
the per-packet object pipeline *exactly* — same session boundaries, same
source keys, same ordering, same per-phase packet counts — on randomized
seeded corpora and on the edge cases the loop formulation handles
implicitly (single-packet sources, gap exactly equal to the timeout,
empty telescopes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationLevel, source_key
from repro.core.columnar import (NO_PAYLOAD, PacketSlice, PacketTable,
                                 sessionize_table)
from repro.core.sessions import sessionize
from repro.errors import AnalysisError
from repro.experiment.phases import Phase
from repro.sim.clock import HOUR
from repro.telescope.packet import ICMPV6, TCP, UDP, Packet

LEVELS = (AggregationLevel.ADDR, AggregationLevel.SUBNET,
          AggregationLevel.PREFIX)


def random_packets(seed: int, n: int, subnets: int = 16,
                   hosts: int = 8) -> list[Packet]:
    """A clumpy random packet stream exercising all aggregation levels."""
    rng = np.random.default_rng(seed)
    protocols = (TCP, UDP, ICMPV6)
    packets = []
    for i in range(n):
        subnet = int(rng.integers(0, subnets))
        # spread subnets across distinct /48s and /64s
        hi = (subnet // 4 << 16) | (subnet % 4)
        src = (hi << 64) | int(rng.integers(0, hosts))
        packets.append(Packet(
            time=float(rng.uniform(0, 30 * HOUR)),
            src=src,
            dst=int(rng.integers(0, 1 << 40)),
            protocol=protocols[int(rng.integers(0, 3))],
            dst_port=int(rng.integers(0, 4096)),
            payload=bytes([int(rng.integers(0, 256))]) if i % 5 == 0
            else None,
            src_asn=int(rng.integers(1, 100)),
            scanner_id=int(rng.integers(-1, 10))))
    return packets


def assert_identical(legacy, vectorized):
    """Session-by-session equality: boundaries, keys, packets, order."""
    assert len(legacy) == len(vectorized)
    assert legacy.telescope == vectorized.telescope
    assert legacy.level == vectorized.level
    for a, b in zip(legacy.sessions, vectorized.sessions):
        assert a.source == b.source
        assert a.start == b.start
        assert a.end == b.end
        assert len(a) == len(b)
        assert list(a.packets) == list(b.packets)


class TestDifferentialSessionize:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("level", LEVELS)
    def test_randomized_corpora(self, seed, level):
        packets = random_packets(seed, 2000)
        table = PacketTable.from_packets(packets)
        assert_identical(
            sessionize(packets, telescope="T1", level=level),
            sessionize_table(table, telescope="T1", level=level))

    @pytest.mark.parametrize("level", LEVELS)
    def test_source_key_sets_match(self, level):
        packets = random_packets(7, 1500)
        table = PacketTable.from_packets(packets)
        legacy = {source_key(p.src, level) for p in packets}
        assert table.distinct_sources(level) == legacy
        assert sessionize_table(table, level=level).sources() == legacy

    def test_single_packet_sources(self):
        packets = [Packet(time=float(i * 2 * HOUR), src=(i << 64) | i,
                          dst=1, protocol=ICMPV6)
                   for i in range(20)]
        table = PacketTable.from_packets(packets)
        for level in LEVELS:
            assert_identical(sessionize(packets, level=level),
                             sessionize_table(table, level=level))

    def test_gap_exactly_timeout_splits(self):
        src = (9 << 64) | 1
        packets = [Packet(time=0.0, src=src, dst=1, protocol=ICMPV6),
                   Packet(time=float(HOUR), src=src, dst=1,
                          protocol=ICMPV6)]
        table = PacketTable.from_packets(packets)
        result = sessionize_table(table)
        assert len(result) == 2
        assert_identical(sessionize(packets), result)

    def test_gap_just_below_timeout_keeps(self):
        src = (9 << 64) | 1
        packets = [Packet(time=0.0, src=src, dst=1, protocol=ICMPV6),
                   Packet(time=float(HOUR) - 1e-9, src=src, dst=1,
                          protocol=ICMPV6)]
        result = sessionize_table(PacketTable.from_packets(packets))
        assert len(result) == 1

    def test_empty_table(self):
        result = sessionize_table(PacketTable.empty(), telescope="T3")
        assert len(result) == 0
        assert result.sources() == set()

    def test_invalid_timeout(self):
        with pytest.raises(AnalysisError):
            sessionize_table(PacketTable.empty(), timeout=0)

    def test_unsorted_input(self):
        src = (3 << 64) | 3
        packets = [Packet(time=t, src=src, dst=1, protocol=ICMPV6)
                   for t in (5.0, 1.0, 3.0)]
        table = PacketTable.from_packets(packets)
        assert_identical(sessionize(packets), sessionize_table(table))

    def test_equal_times_tie_order_matches(self):
        src = (4 << 64) | 4
        packets = [Packet(time=1.0, src=src, dst=d, protocol=ICMPV6)
                   for d in (10, 11, 12)]
        table = PacketTable.from_packets(packets)
        legacy = sessionize(packets)
        vec = sessionize_table(table)
        assert [p.dst for p in vec.sessions[0].packets] \
            == [p.dst for p in legacy.sessions[0].packets]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3)), min_size=1, max_size=80))
    def test_property_identical(self, rows):
        packets = [Packet(time=t, src=(hi << 64) | lo, dst=1,
                          protocol=ICMPV6) for t, hi, lo in rows]
        table = PacketTable.from_packets(packets)
        for level in LEVELS:
            assert_identical(sessionize(packets, level=level),
                             sessionize_table(table, level=level))


class TestPhaseSlicing:
    def test_phase_counts_match_object_filter(self, tiny_corpus):
        for telescope in tiny_corpus.telescopes():
            for phase in Phase:
                table = tiny_corpus.phase_table(telescope, phase)
                packets = tiny_corpus.phase_packets(telescope, phase)
                assert len(table) == len(packets)

    def test_phase_full_returns_underlying_list(self, tiny_corpus):
        packets = tiny_corpus.packets("T1")
        assert tiny_corpus.phase_packets("T1", Phase.FULL) is packets

    def test_phase_tables_partition_full(self, tiny_corpus):
        for telescope in tiny_corpus.telescopes():
            full = len(tiny_corpus.phase_table(telescope, Phase.FULL))
            initial = len(tiny_corpus.phase_table(telescope, Phase.INITIAL))
            split = len(tiny_corpus.phase_table(telescope, Phase.SPLIT))
            assert initial + split == full

    def test_analysis_paths_agree(self, tiny_corpus):
        from repro.analysis.context import CorpusAnalysis
        columnar = CorpusAnalysis(tiny_corpus, use_columnar=True)
        legacy = CorpusAnalysis(tiny_corpus, use_columnar=False)
        for telescope in tiny_corpus.telescopes():
            for level in (AggregationLevel.ADDR, AggregationLevel.SUBNET):
                for phase in Phase:
                    assert_identical(
                        legacy.sessions(telescope, level, phase),
                        columnar.sessions(telescope, level, phase))


class TestPacketTable:
    def test_roundtrip_objects(self):
        packets = random_packets(11, 300)
        table = PacketTable.from_packets(packets)
        assert table.to_packets() == packets

    def test_row_reconstruction_without_objects(self):
        packets = random_packets(12, 300)
        table = PacketTable.from_packets(packets)
        offsets, blob = table.payload_blob()
        rebuilt = PacketTable.from_blob_arrays(
            time=table.time, src_hi=table.src_hi, src_lo=table.src_lo,
            dst_hi=table.dst_hi, dst_lo=table.dst_lo,
            protocol=table.protocol, dst_port=table.dst_port,
            src_asn=table.src_asn, scanner_id=table.scanner_id,
            payload_offsets=offsets, payload_blob=blob)
        assert rebuilt.to_packets() == packets

    def test_payload_interning(self):
        packets = [Packet(time=float(i), src=1, dst=1, protocol=ICMPV6,
                          payload=b"same-bytes") for i in range(10)]
        table = PacketTable.from_packets(packets)
        assert len(table.payloads) == 1
        assert np.all(table.payload_id == 0)

    def test_no_payload_id(self):
        table = PacketTable.from_packets(
            [Packet(time=0.0, src=1, dst=1, protocol=ICMPV6)])
        assert table.payload_id[0] == NO_PAYLOAD

    def test_time_sorted_noop_when_sorted(self):
        packets = [Packet(time=float(i), src=1, dst=1, protocol=ICMPV6)
                   for i in range(5)]
        table = PacketTable.from_packets(packets)
        assert table.time_sorted() is table

    def test_slice_time_bounds(self):
        packets = [Packet(time=float(i), src=1, dst=1, protocol=ICMPV6)
                   for i in range(10)]
        table = PacketTable.from_packets(packets)
        sliced = table.slice_time(2.0, 7.0)
        assert [p.time for p in sliced.to_packets()] \
            == [2.0, 3.0, 4.0, 5.0, 6.0]

    def test_slice_time_requires_sorted(self):
        packets = [Packet(time=t, src=1, dst=1, protocol=ICMPV6)
                   for t in (3.0, 1.0)]
        with pytest.raises(AnalysisError):
            PacketTable.from_packets(packets).slice_time(0.0, 5.0)


class TestPacketSlice:
    def test_sequence_protocol(self):
        packets = random_packets(13, 50)
        table = PacketTable.from_packets(packets)
        view = PacketSlice(table, np.arange(10))
        assert len(view) == 10
        assert bool(view)
        assert view[0] is packets[0]
        assert view[-1] is packets[9]
        assert view[2:4] == packets[2:4]
        assert list(view) == packets[:10]
        assert view == packets[:10]

    def test_sessions_reuse_corpus_objects(self):
        packets = random_packets(14, 200)
        table = PacketTable.from_packets(packets)
        for session in sessionize_table(table).sessions:
            for p in session.packets:
                assert any(p is q for q in packets)
